//! Proof-of-Work difficulty targets.

use hashcore_crypto::Digest256;
use std::fmt;

/// A PoW difficulty target expressed as a 256-bit threshold.
///
/// A digest meets the target when, interpreted as a big-endian 256-bit
/// integer, it is strictly less than the threshold. The convenience
/// constructor [`Target::from_leading_zero_bits`] gives the familiar
/// "n leading zero bits" difficulty, and [`Target::scale`] supports the
/// fractional retargeting the chain substrate performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Target {
    /// Big-endian 256-bit threshold.
    threshold: [u8; 32],
}

impl Target {
    /// The easiest possible target (every digest qualifies except all-ones).
    pub const MAX: Target = Target {
        threshold: [0xff; 32],
    };

    /// Creates a target from a raw big-endian threshold.
    pub fn from_threshold(threshold: [u8; 32]) -> Self {
        Self { threshold }
    }

    /// Creates the target requiring `bits` leading zero bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 255`.
    pub fn from_leading_zero_bits(bits: u32) -> Self {
        assert!(bits <= 255, "leading zero bits out of range");
        if bits == 0 {
            return Target::MAX;
        }
        // threshold = 2^(256 - bits): digest < threshold  ⇔  digest has at
        // least `bits` leading zeros.
        let p = (256 - bits) as usize; // the single set bit, counted from the LSB
        let mut threshold = [0u8; 32];
        threshold[31 - p / 8] = 1 << (p % 8);
        Self { threshold }
    }

    /// The raw big-endian threshold.
    pub fn threshold(&self) -> &[u8; 32] {
        &self.threshold
    }

    /// Returns `true` if `digest` meets (is strictly below) the target.
    pub fn is_met_by(&self, digest: &Digest256) -> bool {
        digest.as_slice() < self.threshold.as_slice()
    }

    /// Approximate number of hash attempts needed to meet the target.
    pub fn expected_attempts(&self) -> f64 {
        // 2^256 / threshold, computed in floating point from the leading
        // 64 bits of the threshold.
        let mut top = 0f64;
        for (i, b) in self.threshold.iter().enumerate().take(16) {
            top += *b as f64 * 2f64.powi(8 * (31 - i as i32));
        }
        if top == 0.0 {
            f64::INFINITY
        } else {
            2f64.powi(256) / top
        }
    }

    /// Returns a new target scaled by `factor` (>1 makes the target easier,
    /// <1 harder), as used by difficulty retargeting.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scale(&self, factor: f64) -> Target {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        // Multiply the 256-bit threshold by the factor using 64-bit limbs.
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&self.threshold[i * 8..i * 8 + 8]);
            *limb = u64::from_be_bytes(bytes);
        }
        // Convert to f64 (approximate), scale, convert back with clamping.
        let value = limbs
            .iter()
            .enumerate()
            .map(|(i, &l)| l as f64 * 2f64.powi(64 * (3 - i as i32)))
            .sum::<f64>();
        let scaled = (value * factor).min(2f64.powi(255));
        let mut out = [0u8; 32];
        let mut remaining = scaled;
        for (i, byte) in out.iter_mut().enumerate() {
            let weight = 2f64.powi(8 * (31 - i as i32));
            let digit = (remaining / weight).floor().clamp(0.0, 255.0);
            *byte = digit as u8;
            remaining -= digit * weight;
        }
        if out == [0u8; 32] {
            out[31] = 1;
        }
        Target { threshold: out }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", hashcore_crypto::hex::encode(&self.threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_zero_targets() {
        let t8 = Target::from_leading_zero_bits(8);
        let mut digest = [0u8; 32];
        digest[0] = 0x01;
        assert!(!t8.is_met_by(&digest));
        digest[0] = 0x00;
        digest[1] = 0xff;
        assert!(t8.is_met_by(&digest));
    }

    #[test]
    fn zero_bits_accepts_almost_everything() {
        let t = Target::from_leading_zero_bits(0);
        assert!(t.is_met_by(&[0x7f; 32]));
        assert!(!t.is_met_by(&[0xff; 32]));
        assert!(Target::MAX.is_met_by(&[0xfe; 32]));
    }

    #[test]
    fn expected_attempts_doubles_per_bit() {
        let a = Target::from_leading_zero_bits(8).expected_attempts();
        let b = Target::from_leading_zero_bits(9).expected_attempts();
        assert!((b / a - 2.0).abs() < 0.01, "{a} {b}");
        assert!((a - 256.0).abs() < 1.0);
    }

    #[test]
    fn scaling_changes_difficulty_in_the_right_direction() {
        let t = Target::from_leading_zero_bits(16);
        let easier = t.scale(4.0);
        let harder = t.scale(0.25);
        assert!(easier.threshold() > t.threshold());
        assert!(harder.threshold() < t.threshold());
        assert!((harder.expected_attempts() / t.expected_attempts() - 4.0).abs() < 0.1);
    }

    #[test]
    fn scale_never_reaches_zero() {
        let t = Target::from_leading_zero_bits(250);
        let harder = t.scale(1e-30);
        assert_ne!(*harder.threshold(), [0u8; 32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_bits_panics() {
        Target::from_leading_zero_bits(256);
    }

    #[test]
    fn display_is_hex() {
        let text = Target::from_leading_zero_bits(8).to_string();
        assert!(text.starts_with("0x0100"), "{text}");
        assert_eq!(text.len(), 2 + 64);
    }
}
