//! The HashCore PoW function over SHA-256 gates and the widget pipeline.

use crate::target::Target;
use hashcore_crypto::{sha256, sha256_x4_parts, Digest256, Sha256, SHA256_LANES};
use hashcore_gen::{GeneratorConfig, PipelineScratch, WidgetGenerator};
use hashcore_profile::{HashSeed, PerformanceProfile};
use hashcore_vm::ExecError;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// Number of nonces one [`HashCore::hash_nonce_batch_with_scratch`] call
/// evaluates: the lane width of the multi-lane hash gate.
pub const NONCE_LANES: usize = SHA256_LANES;

/// Configuration of a [`HashCore`] instance.
#[derive(Debug, Clone)]
pub struct HashCoreConfig {
    /// The reference performance profile widgets are generated against
    /// (the paper uses SPEC CPU 2017 Leela; `hashcore-workloads` derives the
    /// equivalent profile from its Go-engine kernel).
    pub profile: PerformanceProfile,
    /// Widget-generator tuning.
    pub generator: GeneratorConfig,
    /// Number of widgets generated and executed sequentially per hash.
    ///
    /// The paper notes (Section IV) that "it is certainly possible that
    /// multiple widgets could be generated for a given input string and
    /// executed sequentially"; values above 1 implement that extension.
    /// Widget `i > 0` is generated from the derived seed
    /// `G(s ‖ i)`, and the second hash gate absorbs every widget's output,
    /// so the Theorem-1 reduction applies unchanged (the whole widget stage
    /// is still a single polynomial-time function of `s`).
    pub widgets_per_hash: usize,
}

impl HashCoreConfig {
    /// A configuration using the given reference profile and default
    /// generator settings.
    pub fn new(profile: PerformanceProfile) -> Self {
        Self {
            profile,
            generator: GeneratorConfig::default(),
            widgets_per_hash: 1,
        }
    }

    /// Sets the number of sequential widgets per hash.
    ///
    /// # Panics
    ///
    /// Panics if `widgets_per_hash` is zero.
    pub fn with_widgets_per_hash(mut self, widgets_per_hash: usize) -> Self {
        assert!(
            widgets_per_hash > 0,
            "at least one widget per hash is required"
        );
        self.widgets_per_hash = widgets_per_hash;
        self
    }
}

/// Error returned by the PoW function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HashCoreError {
    /// The generated widget failed to execute. With a correct generator this
    /// indicates either corruption of the configured profile or a step-limit
    /// breach, and the input cannot be hashed.
    WidgetExecution(ExecError),
}

impl fmt::Display for HashCoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HashCoreError::WidgetExecution(e) => write!(f, "widget execution failed: {e}"),
        }
    }
}

impl std::error::Error for HashCoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HashCoreError::WidgetExecution(e) => Some(e),
        }
    }
}

impl From<ExecError> for HashCoreError {
    fn from(value: ExecError) -> Self {
        HashCoreError::WidgetExecution(value)
    }
}

/// Statistics about the widget stage of one hash evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidgetReport {
    /// Dynamic instructions the widget retired.
    pub dynamic_instructions: u64,
    /// Number of register snapshots emitted.
    pub snapshots: u64,
    /// Size of the widget output in bytes (the paper reports 20–38 kB).
    pub output_bytes: usize,
    /// Number of basic blocks in the generated program.
    pub program_blocks: usize,
}

/// The verifier-cost observation of one PoW evaluation: what re-executing
/// the hash costs a validator, in the paper's Section V accounting —
/// dynamic instructions retired by the widget stage plus the widget output
/// bytes the second hash gate must absorb. Cost-aware difficulty
/// (`hashcore-chain`) normalises these observations against a nominal
/// budget and hardens the target when recent blocks trend
/// expensive-to-verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyCost {
    /// Dynamic instructions the widget stage retired.
    pub instructions: u64,
    /// Widget output bytes absorbed by the second hash gate.
    pub output_bytes: u64,
}

impl VerifyCost {
    /// The nominal (profile-budget) cost of one hash evaluation: 48 Ki
    /// instructions plus 16 KiB of widget output, 2^16 units in total.
    /// Cost-aware difficulty normalises observations against this, so an
    /// evaluation on budget has [`VerifyCost::ratio`] 1.
    pub const NOMINAL: VerifyCost = VerifyCost {
        instructions: 49_152,
        output_bytes: 16_384,
    };

    /// The cost observation of one widget-stage report.
    pub fn from_widget(report: &WidgetReport) -> Self {
        Self {
            instructions: report.dynamic_instructions,
            output_bytes: report.output_bytes as u64,
        }
    }

    /// Scalar cost units: instructions plus output bytes — the two
    /// verifier expenses the paper's cost model accounts per hash.
    pub fn units(&self) -> u64 {
        self.instructions.saturating_add(self.output_bytes)
    }

    /// This observation's cost relative to `nominal` (1.0 = on budget).
    pub fn ratio(&self, nominal: VerifyCost) -> f64 {
        self.units() as f64 / (nominal.units().max(1)) as f64
    }
}

/// The result of one HashCore evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashCoreOutput {
    /// The final digest `H(x) = G(s ‖ W(s))`.
    pub digest: Digest256,
    /// The hash seed `s = G(x)` (also the widget-generation seed).
    pub seed: HashSeed,
    /// Widget-stage statistics.
    pub widget: WidgetReport,
}

/// Reusable per-evaluation state for the PoW hot path.
///
/// One hash evaluation noises the profile, generates a widget, pre-decodes
/// it and executes it; this scratch owns reusable storage for **every** one
/// of those stages — the generation scratch (program builder and
/// bookkeeping), the generated widget itself (program blocks, target
/// profile), the prepared program's slot array, and the execution buffers
/// (machine state, output, trace) — so the whole generate→prepare→execute
/// chain stops allocating once the buffers reach steady-state size. Each
/// mining or verification worker owns exactly one scratch; scratches are
/// never shared between threads.
#[derive(Debug, Clone, Default)]
pub struct HashScratch {
    pipeline: PipelineScratch,
    /// Set once every buffer has been pre-sized to the generator's
    /// worst-case bounds (first `hash_with_scratch` call), after which the
    /// pipeline performs no heap allocation at all.
    warmed: bool,
}

impl HashScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The result of a successful mining search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiningResult {
    /// The nonce that met the target.
    pub nonce: u64,
    /// The winning digest.
    pub digest: Digest256,
    /// Number of nonces evaluated (including the winner).
    pub attempts: u64,
}

/// A resumable nonce search over a fixed header and target.
///
/// [`HashCore::mine`] scans a range in one call; a simulated miner instead
/// interleaves with other nodes, evaluating a bounded slice of nonces per
/// scheduler tick. A session owns the per-worker state — one [`HashScratch`]
/// and one [`MiningInput`] — and remembers where the scan stopped, so
/// repeated [`MiningSession::step`] calls cover exactly the nonces a single
/// [`HashCore::mine`] call would, with the same zero-allocation steady
/// state.
#[derive(Debug, Clone)]
pub struct MiningSession {
    scratch: HashScratch,
    input: MiningInput,
    target: Target,
    start: u64,
    scanned: u64,
}

impl MiningSession {
    /// Starts a search over nonces `start..` of `header` against `target`.
    pub fn new(header: &[u8], target: Target, start: u64) -> Self {
        Self {
            scratch: HashScratch::new(),
            input: MiningInput::new(header),
            target,
            start,
            scanned: 0,
        }
    }

    /// Number of nonces evaluated so far across all steps.
    pub fn attempts(&self) -> u64 {
        self.scanned
    }

    /// Evaluates up to `budget` further nonces.
    ///
    /// Returns `Ok(Some(..))` as soon as a nonce meets the target — with
    /// `attempts` counting every nonce this session has evaluated, exactly
    /// as the equivalent single [`HashCore::mine`] call would report — and
    /// `Ok(None)` when the budget is exhausted without a hit (call `step`
    /// again to resume). Stepping past a hit resumes the scan at the next
    /// nonce.
    ///
    /// Full batches of [`NONCE_LANES`] nonces run through the lane-parallel
    /// gate ([`HashCore::hash_nonce_batch_with_scratch`]); the remainder
    /// runs scalar. Hit nonce, digest and attempt count are identical to
    /// the per-nonce scan either way.
    ///
    /// # Errors
    ///
    /// Propagates widget-execution failures.
    pub fn step(
        &mut self,
        pow: &HashCore,
        budget: u64,
    ) -> Result<Option<MiningResult>, HashCoreError> {
        let mut remaining = budget;
        while remaining >= NONCE_LANES as u64 {
            let nonces: [u64; NONCE_LANES] = std::array::from_fn(|lane| {
                self.start
                    .wrapping_add(self.scanned)
                    .wrapping_add(lane as u64)
            });
            let results = pow.hash_nonce_batch_with_scratch(
                self.input.header_bytes(),
                nonces,
                &mut self.scratch,
            );
            for (nonce, result) in nonces.into_iter().zip(results) {
                let digest = result?.digest;
                self.scanned += 1;
                remaining -= 1;
                if self.target.is_met_by(&digest) {
                    return Ok(Some(MiningResult {
                        nonce,
                        digest,
                        attempts: self.scanned,
                    }));
                }
            }
        }
        for _ in 0..remaining {
            let nonce = self.start.wrapping_add(self.scanned);
            let digest = pow
                .hash_with_scratch(self.input.with_nonce(nonce), &mut self.scratch)?
                .digest;
            self.scanned += 1;
            if self.target.is_met_by(&digest) {
                return Ok(Some(MiningResult {
                    nonce,
                    digest,
                    attempts: self.scanned,
                }));
            }
        }
        Ok(None)
    }
}

/// A reusable mining-input buffer holding `header ‖ nonce`, with the 8-byte
/// little-endian nonce overwritten in place per attempt — the mining and
/// verification loops build their input once instead of allocating a fresh
/// `Vec` per nonce (what [`HashCore::mining_input`] would do).
#[derive(Debug, Clone, Default)]
pub struct MiningInput {
    buffer: Vec<u8>,
}

impl MiningInput {
    /// Creates a buffer for `header` with a zero nonce.
    pub fn new(header: &[u8]) -> Self {
        let mut input = Self::default();
        input.set_header(header);
        input
    }

    /// Replaces the header, reusing the buffer's allocation (the nonce
    /// resets to zero). Batch verifiers call this once per block instead of
    /// building a fresh input.
    pub fn set_header(&mut self, header: &[u8]) {
        self.buffer.clear();
        self.buffer.extend_from_slice(header);
        self.buffer.extend_from_slice(&0u64.to_le_bytes());
    }

    /// Writes `nonce` into the buffer tail and returns the full input,
    /// byte-identical to [`HashCore::mining_input`]`(header, nonce)`.
    ///
    /// A default-constructed buffer with no header set behaves as if the
    /// header were empty.
    pub fn with_nonce(&mut self, nonce: u64) -> &[u8] {
        if self.buffer.len() < 8 {
            self.set_header(b"");
        }
        let tail = self.buffer.len() - 8;
        self.buffer[tail..].copy_from_slice(&nonce.to_le_bytes());
        &self.buffer
    }

    /// The header portion of the buffer — everything except the 8-byte nonce
    /// tail. The batch scan passes this to
    /// [`HashCore::hash_nonce_batch_with_scratch`], which appends each
    /// lane's nonce itself instead of overwriting the tail in place.
    ///
    /// A default-constructed buffer with no header set behaves as if the
    /// header were empty, matching [`MiningInput::with_nonce`].
    pub fn header_bytes(&self) -> &[u8] {
        match self.buffer.len().checked_sub(8) {
            Some(tail) => &self.buffer[..tail],
            None => b"",
        }
    }
}

/// Reusable state for the verification path: the mining-input buffer plus a
/// full [`HashScratch`].
///
/// A full node re-verifying many `(header, nonce)` pairs — block validation
/// re-evaluates one PoW per block — owns one of these per worker and calls
/// [`HashCore::verify_with_scratch`], so steady-state verification is as
/// allocation-free as steady-state mining.
#[derive(Debug, Clone, Default)]
pub struct VerifyScratch {
    input: MiningInput,
    hash: HashScratch,
}

impl VerifyScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The HashCore Proof-of-Work function.
///
/// See the crate-level documentation for the construction. The struct is
/// cheap to clone; each [`HashCore::hash`] call is a full PoW evaluation
/// (hash gate → widget generation → widget execution → hash gate).
#[derive(Debug, Clone)]
pub struct HashCore {
    generator: WidgetGenerator,
    widgets_per_hash: usize,
}

impl HashCore {
    /// Creates a HashCore instance targeting `profile` with default settings.
    pub fn new(profile: PerformanceProfile) -> Self {
        Self::with_config(HashCoreConfig::new(profile))
    }

    /// Creates a HashCore instance from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero widgets per hash.
    pub fn with_config(config: HashCoreConfig) -> Self {
        assert!(
            config.widgets_per_hash > 0,
            "at least one widget per hash is required"
        );
        Self {
            generator: WidgetGenerator::with_config(config.profile, config.generator),
            widgets_per_hash: config.widgets_per_hash,
        }
    }

    /// The widget generator used by this instance.
    pub fn generator(&self) -> &WidgetGenerator {
        &self.generator
    }

    /// Number of widgets generated and executed per hash evaluation.
    pub fn widgets_per_hash(&self) -> usize {
        self.widgets_per_hash
    }

    /// Evaluates `H(input)`, returning the digest and widget statistics.
    ///
    /// # Errors
    ///
    /// Returns [`HashCoreError::WidgetExecution`] if a generated widget
    /// fails to execute within its step limit.
    pub fn hash(&self, input: &[u8]) -> Result<HashCoreOutput, HashCoreError> {
        self.hash_with_scratch(input, &mut HashScratch::new())
    }

    /// Evaluates `H(input)` using reusable scratch state.
    ///
    /// Identical to [`HashCore::hash`] — same digest, byte for byte — but
    /// the widget is pre-decoded into and executed from `scratch`, so a
    /// caller evaluating many inputs (every miner) allocates nothing per
    /// hash once the scratch buffers reach steady-state size.
    ///
    /// # Errors
    ///
    /// Returns [`HashCoreError::WidgetExecution`] if a generated widget
    /// fails to execute within its step limit.
    pub fn hash_with_scratch(
        &self,
        input: &[u8],
        scratch: &mut HashScratch,
    ) -> Result<HashCoreOutput, HashCoreError> {
        // First hash gate: s = G(x).
        self.hash_from_seed_with_scratch(HashSeed::new(sha256(input)), scratch)
    }

    /// Evaluates the widget stage and second hash gate from an
    /// already-computed first-gate output `s = G(x)`.
    ///
    /// This is the tail of [`HashCore::hash_with_scratch`]: callers that
    /// compute the first gate themselves — the batch scan runs it four
    /// lanes at a time through [`sha256_x4_parts`] — enter the pipeline
    /// here. `hash_from_seed_with_scratch(HashSeed::new(sha256(x)), ..)` is
    /// byte-identical to `hash_with_scratch(x, ..)`.
    ///
    /// # Errors
    ///
    /// Returns [`HashCoreError::WidgetExecution`] if a generated widget
    /// fails to execute within its step limit.
    pub fn hash_from_seed_with_scratch(
        &self,
        seed: HashSeed,
        scratch: &mut HashScratch,
    ) -> Result<HashCoreOutput, HashCoreError> {
        // One-time pre-sizing to the generator's worst-case bounds: the
        // seed noise is capped, so the largest program, memory image and
        // output any seed can produce are known up front (the generation
        // scratch primes itself the same way on its first use). After this,
        // no nonce — however its widget is shaped — grows a buffer.
        if !scratch.warmed {
            scratch.warmed = true;
            let bounds = self.generator.bounds();
            let pipeline = &mut scratch.pipeline;
            pipeline.widget.program.reserve_blocks(bounds.max_blocks);
            pipeline.prepared.prime(
                bounds.max_blocks * (bounds.max_block_len + 1),
                bounds.max_blocks,
            );
            pipeline
                .exec
                .prime(bounds.max_memory_bytes, bounds.max_output_bytes);
        }

        // Widget generation and execution: w_i = W(seed_i), where seed_0 = s
        // and seed_i = G(s ‖ i) for the sequential-widget extension. The
        // second hash gate absorbs the seed and every widget output.
        let mut gate = Sha256::new();
        gate.update(seed.as_bytes());
        let mut report = WidgetReport {
            dynamic_instructions: 0,
            snapshots: 0,
            output_bytes: 0,
            program_blocks: 0,
        };
        for index in 0..self.widgets_per_hash {
            let widget_seed = if index == 0 {
                seed
            } else {
                let mut derivation = Sha256::new();
                derivation.update(seed.as_bytes());
                derivation.update(&(index as u64).to_le_bytes());
                HashSeed::new(derivation.finalize())
            };
            let stats = scratch
                .pipeline
                .run(&self.generator, &widget_seed, false)
                .map_err(HashCoreError::from)?;
            gate.update(scratch.pipeline.exec.output());
            report.dynamic_instructions += stats.dynamic_instructions;
            report.snapshots += stats.snapshot_count;
            report.output_bytes += scratch.pipeline.exec.output().len();
            report.program_blocks += scratch.pipeline.widget.program.blocks().len();
        }

        // Second hash gate: H(x) = G(s ‖ w_0 ‖ … ‖ w_{k-1}).
        let digest = gate.finalize();

        Ok(HashCoreOutput {
            digest,
            seed,
            widget: report,
        })
    }

    /// Convenience: evaluates the PoW and returns only the digest.
    ///
    /// # Errors
    ///
    /// See [`HashCore::hash`].
    pub fn hash_digest(&self, input: &[u8]) -> Result<Digest256, HashCoreError> {
        Ok(self.hash(input)?.digest)
    }

    /// Evaluates `H(header ‖ nonce)` for [`NONCE_LANES`] nonces sharing one
    /// header, running the first hash gate four lanes at a time.
    ///
    /// Lane `i`'s result is byte-identical to
    /// [`HashCore::hash_with_scratch`] over
    /// [`HashCore::mining_input`]`(header, nonces[i])`: the seeds
    /// `s_i = G(header ‖ nonce_i)` come out of one [`sha256_x4_parts`] pass
    /// (the gate hashes `header ‖ nonce` without materialising four input
    /// buffers), and the widget stage plus second gate then run per lane
    /// out of the single shared `scratch` — widget outputs differ in shape
    /// per seed, so those stages stay sequential while the fixed-shape gate
    /// is where the lanes pay off. Nothing here allocates once the scratch
    /// is warm.
    ///
    /// # Errors
    ///
    /// Each lane carries its own `Result`, so a caller scanning lanes in
    /// nonce order observes exactly what the equivalent sequential scan
    /// would: a hit in lane `i` is visible even if lane `j > i` fails.
    /// Once a lane fails, later lanes are not evaluated and report a clone
    /// of the same error (the sequential scan would never have reached
    /// them).
    pub fn hash_nonce_batch_with_scratch(
        &self,
        header: &[u8],
        nonces: [u64; NONCE_LANES],
        scratch: &mut HashScratch,
    ) -> [Result<HashCoreOutput, HashCoreError>; NONCE_LANES] {
        // First hash gate, all lanes at once: s_i = G(header ‖ nonce_i).
        let nonce_bytes = nonces.map(u64::to_le_bytes);
        let lane_parts: [[&[u8]; 2]; NONCE_LANES] = [
            [header, &nonce_bytes[0]],
            [header, &nonce_bytes[1]],
            [header, &nonce_bytes[2]],
            [header, &nonce_bytes[3]],
        ];
        let seeds = sha256_x4_parts([
            &lane_parts[0],
            &lane_parts[1],
            &lane_parts[2],
            &lane_parts[3],
        ]);

        let mut first_error: Option<HashCoreError> = None;
        std::array::from_fn(|lane| {
            if let Some(error) = &first_error {
                return Err(error.clone());
            }
            self.hash_from_seed_with_scratch(HashSeed::new(seeds[lane]), scratch)
                .inspect_err(|error| first_error = Some(error.clone()))
        })
    }

    /// Builds the canonical mining input for a header and nonce.
    pub fn mining_input(header: &[u8], nonce: u64) -> Vec<u8> {
        let mut input = Vec::with_capacity(header.len() + 8);
        input.extend_from_slice(header);
        input.extend_from_slice(&nonce.to_le_bytes());
        input
    }

    /// Searches nonces `start..start + max_attempts` for a digest meeting
    /// `target`.
    ///
    /// This is a single-shot [`MiningSession`]: callers that need to
    /// interleave the search with other work (the network simulation's
    /// nodes) hold a session and spend the budget in slices.
    ///
    /// # Errors
    ///
    /// Propagates widget-execution failures; returns `Ok(None)` if no nonce
    /// in the range qualifies.
    pub fn mine(
        &self,
        header: &[u8],
        target: Target,
        start: u64,
        max_attempts: u64,
    ) -> Result<Option<MiningResult>, HashCoreError> {
        MiningSession::new(header, target, start).step(self, max_attempts)
    }

    /// Searches nonces `start..start + max_attempts` for a digest meeting
    /// `target`, sharding the nonce space across `threads` OS threads.
    ///
    /// Workers scan interleaved offsets (worker `w` evaluates offsets `w`,
    /// `w + threads`, …) with their own [`HashScratch`], and an atomic
    /// cutoff stops every worker as soon as no lower qualifying nonce can
    /// remain unscanned. The result is **deterministic and identical to
    /// [`HashCore::mine`]**: the lowest qualifying nonce in the range wins
    /// regardless of thread scheduling, and `attempts` reports the same
    /// count the sequential search would.
    ///
    /// # Errors
    ///
    /// Propagates widget-execution failures exactly as the sequential
    /// search would (an error at offset `e` is reported only if no nonce
    /// below `e` qualifies); returns `Ok(None)` if no nonce in the range
    /// qualifies.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero, or if a mining worker thread panics.
    pub fn mine_parallel(
        &self,
        header: &[u8],
        target: Target,
        start: u64,
        max_attempts: u64,
        threads: usize,
    ) -> Result<Option<MiningResult>, HashCoreError> {
        assert!(threads > 0, "mine_parallel requires at least one thread");
        // A worker per nonce is the most the range can use; surplus threads
        // would spawn only to exit immediately.
        let threads = threads.min(usize::try_from(max_attempts).unwrap_or(usize::MAX));
        if threads <= 1 || max_attempts <= 1 {
            return self.mine(header, target, start, max_attempts);
        }

        // Lowest offset whose evaluation was decisive (qualifying digest or
        // execution error). Workers never scan past it, and every offset
        // below the final cutoff is guaranteed to have been evaluated.
        let cutoff = AtomicU64::new(u64::MAX);
        type Outcome = (u64, Result<(u64, Digest256), HashCoreError>);

        let outcomes: Vec<Option<Outcome>> = thread::scope(|scope| {
            let cutoff = &cutoff;
            let handles: Vec<_> = (0..threads as u64)
                .map(|worker| {
                    scope.spawn(move || {
                        let stride = threads as u64;
                        let mut scratch = HashScratch::new();
                        let mut input = MiningInput::new(header);
                        let mut offset = worker;
                        loop {
                            let limit = max_attempts.min(cutoff.load(Ordering::Acquire));
                            if offset >= limit {
                                return None;
                            }
                            // Batch the worker's next NONCE_LANES strided
                            // offsets through the lane-parallel gate when
                            // they all fit below the limit; fall back to a
                            // scalar step for the tail (or on the
                            // astronomically unlikely offset overflow).
                            let last = offset.checked_add(stride * (NONCE_LANES as u64 - 1));
                            if last.is_some_and(|last| last < limit) {
                                let offsets: [u64; NONCE_LANES] =
                                    std::array::from_fn(|lane| offset + stride * lane as u64);
                                let nonces = offsets.map(|o| start.wrapping_add(o));
                                let results = self.hash_nonce_batch_with_scratch(
                                    input.header_bytes(),
                                    nonces,
                                    &mut scratch,
                                );
                                for (lane, result) in results.into_iter().enumerate() {
                                    match result {
                                        Ok(out) if target.is_met_by(&out.digest) => {
                                            cutoff.fetch_min(offsets[lane], Ordering::AcqRel);
                                            return Some((
                                                offsets[lane],
                                                Ok((nonces[lane], out.digest)),
                                            ));
                                        }
                                        Ok(_) => {}
                                        Err(error) => {
                                            cutoff.fetch_min(offsets[lane], Ordering::AcqRel);
                                            return Some((offsets[lane], Err(error)));
                                        }
                                    }
                                }
                                offset += stride * NONCE_LANES as u64;
                                continue;
                            }
                            let nonce = start.wrapping_add(offset);
                            match self.hash_with_scratch(input.with_nonce(nonce), &mut scratch) {
                                Ok(out) if target.is_met_by(&out.digest) => {
                                    cutoff.fetch_min(offset, Ordering::AcqRel);
                                    return Some((offset, Ok((nonce, out.digest))));
                                }
                                Ok(_) => {}
                                Err(error) => {
                                    cutoff.fetch_min(offset, Ordering::AcqRel);
                                    return Some((offset, Err(error)));
                                }
                            }
                            offset += stride;
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("mining worker panicked"))
                .collect()
        });

        // The decisive outcome with the lowest offset is exactly what the
        // sequential scan would have hit first.
        let winner = outcomes
            .into_iter()
            .flatten()
            .min_by_key(|(offset, _)| *offset);
        match winner {
            None => Ok(None),
            Some((offset, Ok((nonce, digest)))) => Ok(Some(MiningResult {
                nonce,
                digest,
                attempts: offset + 1,
            })),
            Some((_, Err(error))) => Err(error),
        }
    }

    /// Verifies that `(header, nonce)` meets `target`, returning the digest
    /// on success.
    ///
    /// Verification is simply re-evaluation of the PoW function — exactly
    /// what makes a PoW function usable by every full node.
    ///
    /// # Errors
    ///
    /// Propagates widget-execution failures.
    pub fn verify(
        &self,
        header: &[u8],
        nonce: u64,
        target: Target,
    ) -> Result<Option<Digest256>, HashCoreError> {
        self.verify_with_scratch(header, nonce, target, &mut VerifyScratch::new())
    }

    /// Verifies `(header, nonce)` against `target` using reusable scratch
    /// state.
    ///
    /// Identical to [`HashCore::verify`] — same digest, byte for byte — but
    /// the mining input is assembled in the scratch's reusable buffer (no
    /// fresh `Vec` per call, unlike [`HashCore::mining_input`]) and the
    /// whole hash pipeline runs out of the scratch's [`HashScratch`]. Batch
    /// verifiers re-checking a chain segment call this once per block with
    /// one long-lived scratch per worker.
    ///
    /// # Errors
    ///
    /// Propagates widget-execution failures.
    pub fn verify_with_scratch(
        &self,
        header: &[u8],
        nonce: u64,
        target: Target,
        scratch: &mut VerifyScratch,
    ) -> Result<Option<Digest256>, HashCoreError> {
        let VerifyScratch { input, hash } = scratch;
        input.set_header(header);
        let digest = self
            .hash_with_scratch(input.with_nonce(nonce), hash)?
            .digest;
        Ok(target.is_met_by(&digest).then_some(digest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_vm::Executor;

    fn fast_pow() -> HashCore {
        let mut profile = PerformanceProfile::leela_like();
        profile.target_dynamic_instructions = 4_000;
        HashCore::new(profile)
    }

    #[test]
    fn hashing_is_deterministic_and_input_sensitive() {
        let pow = fast_pow();
        let a = pow.hash(b"input-a").unwrap();
        let b = pow.hash(b"input-a").unwrap();
        let c = pow.hash(b"input-b").unwrap();
        assert_eq!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn seed_is_first_gate_output() {
        let pow = fast_pow();
        let out = pow.hash(b"header").unwrap();
        assert_eq!(*out.seed.as_bytes(), sha256(b"header"));
    }

    #[test]
    fn digest_matches_manual_composition() {
        // H(x) must literally equal G(s || W(s)).
        let pow = fast_pow();
        let input = b"manual-composition-check";
        let out = pow.hash(input).unwrap();

        let seed = HashSeed::new(sha256(input));
        let widget = pow.generator().generate(&seed);
        let exec = Executor::new(widget.exec_config())
            .execute(&widget.program)
            .unwrap();
        let mut gate = Sha256::new();
        gate.update(seed.as_bytes());
        gate.update(&exec.output);
        assert_eq!(out.digest, gate.finalize());
        assert_eq!(out.widget.output_bytes, exec.output.len());
    }

    #[test]
    fn widget_report_is_populated() {
        let out = fast_pow().hash(b"report").unwrap();
        assert!(out.widget.dynamic_instructions > 1_000);
        assert!(out.widget.snapshots >= 1);
        assert_eq!(out.widget.output_bytes % hashcore_vm::SNAPSHOT_BYTES, 0);
        assert!(out.widget.program_blocks > 3);
    }

    #[test]
    fn mining_finds_and_verifies_a_nonce_on_an_easy_target() {
        let pow = fast_pow();
        let target = Target::from_leading_zero_bits(2); // 1 in 4 digests
        let result = pow
            .mine(b"block-42", target, 0, 64)
            .unwrap()
            .expect("an easy target should be met within 64 nonces");
        assert!(target.is_met_by(&result.digest));
        let verified = pow.verify(b"block-42", result.nonce, target).unwrap();
        assert_eq!(verified, Some(result.digest));
        // A wrong nonce (almost surely) fails, and a harder target rejects.
        assert_eq!(
            pow.verify(
                b"block-42",
                result.nonce,
                Target::from_leading_zero_bits(255)
            )
            .unwrap(),
            None
        );
    }

    #[test]
    fn mining_respects_attempt_budget() {
        let pow = fast_pow();
        // An absurdly hard target cannot be met in 3 attempts.
        let result = pow
            .mine(b"hard", Target::from_leading_zero_bits(128), 0, 3)
            .unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn sequential_widgets_extension_behaves_like_a_longer_widget_stage() {
        let mut profile = PerformanceProfile::leela_like();
        profile.target_dynamic_instructions = 3_000;
        let single = HashCore::with_config(HashCoreConfig::new(profile.clone()));
        let double = HashCore::with_config(HashCoreConfig::new(profile).with_widgets_per_hash(2));
        assert_eq!(double.widgets_per_hash(), 2);

        let a = single.hash(b"multi-widget").unwrap();
        let b = double.hash(b"multi-widget").unwrap();
        // Same first gate, different overall digest, roughly doubled work.
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.digest, b.digest);
        assert!(b.widget.dynamic_instructions > a.widget.dynamic_instructions);
        assert!(b.widget.output_bytes > a.widget.output_bytes);
        // Still deterministic.
        assert_eq!(double.hash(b"multi-widget").unwrap().digest, b.digest);
    }

    #[test]
    #[should_panic(expected = "at least one widget")]
    fn zero_widgets_per_hash_is_rejected() {
        let _ = HashCoreConfig::new(PerformanceProfile::leela_like()).with_widgets_per_hash(0);
    }

    #[test]
    fn scratch_path_is_bit_identical_to_fresh_hashing() {
        let pow = fast_pow();
        let mut scratch = HashScratch::new();
        // One scratch serves a stream of different inputs (the mining
        // usage); every digest and report must match the fresh path.
        for input in [b"a".as_ref(), b"b".as_ref(), b"".as_ref(), b"a".as_ref()] {
            let fresh = pow.hash(input).unwrap();
            let reused = pow.hash_with_scratch(input, &mut scratch).unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn verify_scratch_path_matches_verify_across_headers() {
        let pow = fast_pow();
        let target = Target::from_leading_zero_bits(1);
        let mut scratch = VerifyScratch::new();
        // One scratch serves verifications of different headers and nonces
        // (the chain-validation usage), including header-length changes.
        for (header, nonce) in [
            (b"header-a".as_ref(), 0u64),
            (b"a-much-longer-header-b".as_ref(), 7),
            (b"h".as_ref(), u64::MAX),
            (b"header-a".as_ref(), 0),
        ] {
            let fresh = pow.verify(header, nonce, target).unwrap();
            let reused = pow
                .verify_with_scratch(header, nonce, target, &mut scratch)
                .unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn nonce_batch_matches_scalar_hashing() {
        let pow = fast_pow();
        let mut scratch = HashScratch::new();
        for (header, base) in [
            (b"batch-header".as_ref(), 0u64),
            (b"".as_ref(), 17),
            (
                b"a-longer-header-spanning-a-block-boundary-soon!".as_ref(),
                9,
            ),
            (b"wrap".as_ref(), u64::MAX - 1),
        ] {
            let nonces: [u64; NONCE_LANES] =
                std::array::from_fn(|lane| base.wrapping_add(lane as u64));
            let batch = pow.hash_nonce_batch_with_scratch(header, nonces, &mut scratch);
            for (nonce, result) in nonces.into_iter().zip(batch) {
                let scalar = pow.hash(&HashCore::mining_input(header, nonce)).unwrap();
                assert_eq!(result.unwrap(), scalar, "header {header:?} nonce {nonce}");
            }
        }
    }

    #[test]
    fn header_bytes_is_the_buffer_minus_the_nonce_tail() {
        let mut input = MiningInput::new(b"some header");
        assert_eq!(input.header_bytes(), b"some header");
        input.with_nonce(u64::MAX);
        assert_eq!(input.header_bytes(), b"some header");
        input.set_header(b"");
        assert_eq!(input.header_bytes(), b"");
        assert_eq!(MiningInput::default().header_bytes(), b"");
    }

    #[test]
    fn mining_input_buffer_matches_the_allocating_form() {
        let mut input = MiningInput::new(b"abc");
        assert_eq!(input.with_nonce(5), HashCore::mining_input(b"abc", 5));
        input.set_header(b"longer header");
        assert_eq!(
            input.with_nonce(u64::MAX),
            HashCore::mining_input(b"longer header", u64::MAX)
        );
        input.set_header(b"");
        assert_eq!(input.with_nonce(1), HashCore::mining_input(b"", 1));
        // A default-constructed buffer behaves as if the header were empty
        // instead of panicking on the missing nonce tail.
        assert_eq!(
            MiningInput::default().with_nonce(3),
            HashCore::mining_input(b"", 3)
        );
    }

    #[test]
    fn stepped_mining_session_matches_single_shot_mining() {
        let pow = fast_pow();
        let target = Target::from_leading_zero_bits(3);
        let single = pow.mine(b"session-block", target, 10, 96).unwrap();
        assert!(single.is_some(), "an easy target is met within 96 nonces");
        // The same search spent in uneven slices finds the same nonce and
        // reports the same attempt count.
        for slice in [1u64, 7, 30] {
            let mut session = MiningSession::new(b"session-block", target, 10);
            let mut found = None;
            let mut budget = 96u64;
            while budget > 0 && found.is_none() {
                let step = slice.min(budget);
                found = session.step(&pow, step).unwrap();
                budget -= step;
            }
            assert_eq!(found, single, "slice {slice}");
            assert_eq!(session.attempts(), single.as_ref().unwrap().attempts);
        }
    }

    #[test]
    fn mining_session_resumes_past_a_hit() {
        let pow = fast_pow();
        let target = Target::from_leading_zero_bits(2);
        let mut session = MiningSession::new(b"resume-block", target, 0);
        let first = session.step(&pow, 256).unwrap().expect("easy target");
        let second = session.step(&pow, 256).unwrap().expect("easy target");
        assert!(second.nonce > first.nonce);
        assert!(second.attempts > first.attempts);
        // The second hit is what a fresh search starting past the first
        // winner would find.
        let fresh = pow
            .mine(b"resume-block", target, first.nonce + 1, 256)
            .unwrap()
            .expect("easy target");
        assert_eq!(second.nonce, fresh.nonce);
        assert_eq!(second.digest, fresh.digest);
    }

    #[test]
    fn parallel_mining_matches_sequential_mining() {
        let pow = fast_pow();
        let target = Target::from_leading_zero_bits(3);
        let sequential = pow.mine(b"parallel-block", target, 0, 96).unwrap();
        assert!(
            sequential.is_some(),
            "an easy target is met within 96 nonces"
        );
        for threads in [1usize, 2, 3, 4] {
            let parallel = pow
                .mine_parallel(b"parallel-block", target, 0, 96, threads)
                .unwrap();
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    fn parallel_mining_respects_attempt_budget() {
        let pow = fast_pow();
        let result = pow
            .mine_parallel(b"hard", Target::from_leading_zero_bits(128), 0, 6, 3)
            .unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn parallel_mining_with_nonzero_start_finds_the_lowest_nonce() {
        let pow = fast_pow();
        let target = Target::from_leading_zero_bits(2);
        let sequential = pow.mine(b"offset-block", target, 1_000, 64).unwrap();
        let parallel = pow
            .mine_parallel(b"offset-block", target, 1_000, 64, 4)
            .unwrap();
        assert_eq!(parallel, sequential);
        assert!(parallel.unwrap().nonce >= 1_000);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_mining_threads_rejected() {
        let _ = fast_pow().mine_parallel(b"x", Target::from_leading_zero_bits(1), 0, 4, 0);
    }

    #[test]
    fn avalanche_between_adjacent_nonces() {
        let pow = fast_pow();
        let a = pow.hash_digest(&HashCore::mining_input(b"hdr", 1)).unwrap();
        let b = pow.hash_digest(&HashCore::mining_input(b"hdr", 2)).unwrap();
        let differing: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(differing > 64, "only {differing} bits differ");
    }
}
