//! An executable rendering of Theorem 1 (collision resistance of HashCore).
//!
//! The paper proves that `H(x) = G(s ‖ W(s))` with `s = G(x)` is a
//! collision-resistant hash function (CRHF) whenever the hash gate `G` is,
//! *regardless of anything about the widget function* `W`, via a reduction:
//! any adversary `A` that finds a collision on `H` can be turned into an
//! algorithm `B` that finds a collision on `G` with at least the same
//! advantage.
//!
//! This module makes every object in that proof a concrete value:
//!
//! * [`HashGate`] — the abstract gate `G` (instantiated by [`Sha256Gate`] in
//!   production and by the deliberately weak [`TruncatedGate`] in tests and
//!   experiment E6, where collisions *can* be found by birthday search),
//! * [`WidgetFunction`] — the abstract `W` (any function of the seed; the
//!   real widget pipeline, a closure, anything),
//! * [`GenericHashCore`] — the construction `H`,
//! * [`CollisionClaim`] / [`reduce_collision`] — the reduction `B` from the
//!   appendix, with its two cases (`s₀ = s₁` and `s₀ ≠ s₁`),
//! * [`birthday_attack`] — a PPT adversary usable against weak gates, which
//!   the tests combine with the reduction to demonstrate the theorem
//!   end-to-end: every `H`-collision found is mapped to a verified
//!   `G`-collision.

use hashcore_crypto::sha256;

/// The abstract hash gate `G : {0,1}* → {0,1}ⁿ`.
pub trait HashGate {
    /// Hashes `data` to an `n`-byte digest.
    fn digest(&self, data: &[u8]) -> Vec<u8>;

    /// The gate's output length `n` in bytes.
    fn output_len(&self) -> usize;
}

/// The production hash gate: SHA-256.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sha256Gate;

impl HashGate for Sha256Gate {
    fn digest(&self, data: &[u8]) -> Vec<u8> {
        sha256(data).to_vec()
    }

    fn output_len(&self) -> usize {
        32
    }
}

/// A deliberately weak gate that truncates SHA-256 to `bytes` bytes.
///
/// With 2 bytes of output a birthday search finds collisions after a few
/// hundred queries, which is what lets the test suite exercise the reduction
/// with a *real* adversary instead of a hypothetical one.
#[derive(Debug, Clone, Copy)]
pub struct TruncatedGate {
    bytes: usize,
}

impl TruncatedGate {
    /// Creates a gate outputting the first `bytes` bytes of SHA-256.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or larger than 32.
    pub fn new(bytes: usize) -> Self {
        assert!(
            (1..=32).contains(&bytes),
            "truncation must keep 1..=32 bytes"
        );
        Self { bytes }
    }
}

impl HashGate for TruncatedGate {
    fn digest(&self, data: &[u8]) -> Vec<u8> {
        sha256(data)[..self.bytes].to_vec()
    }

    fn output_len(&self) -> usize {
        self.bytes
    }
}

/// The abstract widget function `W : {0,1}ⁿ → {0,1}*`.
///
/// Theorem 1 holds for *any* `W` computable in polynomial time; the blanket
/// implementation for closures makes it easy to plug in the real widget
/// pipeline, a constant function, or an adversarially chosen one.
pub trait WidgetFunction {
    /// Evaluates the widget on the hash seed.
    fn evaluate(&self, seed: &[u8]) -> Vec<u8>;
}

impl<F> WidgetFunction for F
where
    F: Fn(&[u8]) -> Vec<u8>,
{
    fn evaluate(&self, seed: &[u8]) -> Vec<u8> {
        self(seed)
    }
}

/// The generic HashCore construction `H(x) = G(G(x) ‖ W(G(x)))`.
#[derive(Debug, Clone)]
pub struct GenericHashCore<G, W> {
    gate: G,
    widget: W,
}

impl<G: HashGate, W: WidgetFunction> GenericHashCore<G, W> {
    /// Builds the construction from a gate and a widget function.
    pub fn new(gate: G, widget: W) -> Self {
        Self { gate, widget }
    }

    /// The inner hash gate.
    pub fn gate(&self) -> &G {
        &self.gate
    }

    /// Computes the hash seed `s = G(x)`.
    pub fn seed(&self, input: &[u8]) -> Vec<u8> {
        self.gate.digest(input)
    }

    /// Computes `H(x)`.
    pub fn hash(&self, input: &[u8]) -> Vec<u8> {
        let seed = self.seed(input);
        let widget_output = self.widget.evaluate(&seed);
        let mut second_input = seed;
        second_input.extend_from_slice(&widget_output);
        self.gate.digest(&second_input)
    }

    /// Computes the second gate's input `s ‖ W(s)` for a given seed.
    pub fn second_gate_input(&self, seed: &[u8]) -> Vec<u8> {
        let mut out = seed.to_vec();
        out.extend_from_slice(&self.widget.evaluate(seed));
        out
    }
}

/// A claimed collision on `H`, as produced by an adversary `A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollisionClaim {
    /// First pre-image.
    pub x0: Vec<u8>,
    /// Second pre-image.
    pub x1: Vec<u8>,
}

/// A collision on the gate `G`, as produced by the reduction `B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateCollision {
    /// First pre-image (distinct from `b`).
    pub a: Vec<u8>,
    /// Second pre-image.
    pub b: Vec<u8>,
    /// The common digest `G(a) = G(b)`.
    pub digest: Vec<u8>,
}

/// The reduction `B` from the appendix proof.
///
/// Given a genuine collision on `H` (distinct inputs with equal `H` values),
/// produces a collision on `G` — case 1 when the seeds already collide,
/// case 2 when they differ (then the two second-gate inputs collide). If the
/// claim is not a genuine `H`-collision, returns `None` (the proof's `B`
/// outputs a random guess in that branch; returning `None` is the honest
/// software equivalent).
pub fn reduce_collision<G: HashGate, W: WidgetFunction>(
    construction: &GenericHashCore<G, W>,
    claim: &CollisionClaim,
) -> Option<GateCollision> {
    if claim.x0 == claim.x1 {
        return None;
    }
    if construction.hash(&claim.x0) != construction.hash(&claim.x1) {
        return None;
    }

    let s0 = construction.seed(&claim.x0);
    let s1 = construction.seed(&claim.x1);
    if s0 == s1 {
        // Case 1: the first gate already collided on (x0, x1).
        Some(GateCollision {
            digest: s0,
            a: claim.x0.clone(),
            b: claim.x1.clone(),
        })
    } else {
        // Case 2: the seeds differ, so the second-gate inputs are distinct
        // strings that the gate maps to the same value.
        let a = construction.second_gate_input(&s0);
        let b = construction.second_gate_input(&s1);
        debug_assert_ne!(a, b, "distinct seeds give distinct second-gate inputs");
        let digest = construction.gate.digest(&a);
        Some(GateCollision { a, b, digest })
    }
}

/// Verifies that a [`GateCollision`] really is a collision on `gate`.
pub fn verify_gate_collision<G: HashGate>(gate: &G, collision: &GateCollision) -> bool {
    collision.a != collision.b
        && gate.digest(&collision.a) == collision.digest
        && gate.digest(&collision.b) == collision.digest
}

/// A probabilistic polynomial-time adversary against `H`: a birthday search
/// over the inputs `prefix ‖ counter` for `max_queries` queries.
///
/// Against the full SHA-256 gate this (of course) never succeeds within any
/// feasible budget; against a [`TruncatedGate`] it succeeds quickly, which is
/// how experiment E6 and the tests exercise the reduction with real
/// collisions.
pub fn birthday_attack<G: HashGate, W: WidgetFunction>(
    construction: &GenericHashCore<G, W>,
    prefix: &[u8],
    max_queries: u64,
) -> Option<CollisionClaim> {
    let mut seen: std::collections::HashMap<Vec<u8>, Vec<u8>> = std::collections::HashMap::new();
    for counter in 0..max_queries {
        let mut input = prefix.to_vec();
        input.extend_from_slice(&counter.to_le_bytes());
        let digest = construction.hash(&input);
        if let Some(previous) = seen.get(&digest) {
            if previous != &input {
                return Some(CollisionClaim {
                    x0: previous.clone(),
                    x1: input,
                });
            }
        }
        seen.insert(digest, input);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A stand-in widget: xor-fold the seed into a 64-byte string. Any
    /// function works — that is the point of the theorem.
    fn toy_widget(seed: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; 64];
        for (i, b) in seed.iter().enumerate() {
            out[i % 64] ^= b.rotate_left((i % 7) as u32);
        }
        out
    }

    #[test]
    fn construction_matches_production_hashcore_shape() {
        let h = GenericHashCore::new(Sha256Gate, toy_widget);
        let d = h.hash(b"abc");
        assert_eq!(d.len(), 32);
        assert_eq!(h.hash(b"abc"), d);
        assert_ne!(h.hash(b"abd"), d);
    }

    #[test]
    fn reduction_rejects_non_collisions() {
        let h = GenericHashCore::new(Sha256Gate, toy_widget);
        let claim = CollisionClaim {
            x0: b"a".to_vec(),
            x1: b"b".to_vec(),
        };
        assert_eq!(reduce_collision(&h, &claim), None);
        let trivial = CollisionClaim {
            x0: b"same".to_vec(),
            x1: b"same".to_vec(),
        };
        assert_eq!(reduce_collision(&h, &trivial), None);
    }

    #[test]
    fn birthday_adversary_beats_weak_gate_and_reduction_converts_it() {
        // An 2-byte gate: collisions after ~2^8 = 256 queries on average.
        let gate = TruncatedGate::new(2);
        let h = GenericHashCore::new(gate, toy_widget);
        let claim = birthday_attack(&h, b"experiment-e6", 5_000)
            .expect("birthday search must find a collision on a 16-bit gate");
        assert_ne!(claim.x0, claim.x1);
        assert_eq!(h.hash(&claim.x0), h.hash(&claim.x1));

        let collision = reduce_collision(&h, &claim).expect("reduction must succeed");
        assert!(verify_gate_collision(&gate, &collision));
    }

    #[test]
    fn reduction_case_one_seed_collision() {
        // Force case 1 by using a gate so weak that the *first* gate
        // collides: 1-byte output.
        let gate = TruncatedGate::new(1);
        let h = GenericHashCore::new(gate, toy_widget);
        // Find two inputs whose seeds collide directly.
        let mut seen = std::collections::HashMap::new();
        let mut found = None;
        for counter in 0u64..10_000 {
            let input = counter.to_le_bytes().to_vec();
            let seed = h.seed(&input);
            if let Some(prev) = seen.insert(seed, input.clone()) {
                found = Some((prev, input));
                break;
            }
        }
        let (x0, x1) = found.expect("1-byte gate must collide");
        let claim = CollisionClaim { x0, x1 };
        // A seed collision is automatically an H collision.
        assert_eq!(h.hash(&claim.x0), h.hash(&claim.x1));
        let collision = reduce_collision(&h, &claim).expect("case 1 reduction");
        assert!(verify_gate_collision(&gate, &collision));
        // In case 1 the collision is on the original inputs.
        assert_eq!(collision.a, claim.x0);
        assert_eq!(collision.b, claim.x1);
    }

    #[test]
    fn full_gate_resists_small_birthday_search() {
        let h = GenericHashCore::new(Sha256Gate, toy_widget);
        assert!(birthday_attack(&h, b"hopeless", 2_000).is_none());
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn zero_byte_truncation_panics() {
        TruncatedGate::new(0);
    }

    proptest! {
        /// Theorem 1, as a property: for EVERY widget function behaviour and
        /// every genuine H-collision found by the adversary, the reduction
        /// outputs a verified G-collision. The widget here is parameterised
        /// by arbitrary bytes so proptest explores many different `W`s.
        #[test]
        fn every_h_collision_yields_a_g_collision(
            widget_salt in proptest::collection::vec(any::<u8>(), 1..32),
            prefix in proptest::collection::vec(any::<u8>(), 0..16),
        ) {
            let gate = TruncatedGate::new(2);
            let salt = widget_salt.clone();
            let widget = move |seed: &[u8]| {
                let mut out = salt.clone();
                out.extend_from_slice(seed);
                out.push(seed.iter().fold(0u8, |a, b| a.wrapping_add(*b)));
                out
            };
            let h = GenericHashCore::new(gate, widget);
            if let Some(claim) = birthday_attack(&h, &prefix, 3_000) {
                let collision = reduce_collision(&h, &claim)
                    .expect("reduction must convert a genuine H-collision");
                prop_assert!(verify_gate_collision(&gate, &collision));
            }
        }

        /// The production construction is deterministic and never panics on
        /// arbitrary inputs.
        #[test]
        fn generic_construction_is_total_and_deterministic(input in proptest::collection::vec(any::<u8>(), 0..256)) {
            let h = GenericHashCore::new(Sha256Gate, toy_widget);
            prop_assert_eq!(h.hash(&input), h.hash(&input));
        }
    }
}
