//! Ablation bench: how the choice of branch predictor in the simulated core
//! shifts the Figure-3 quantities (branch hit rate) and Figure-2 quantities
//! (IPC) for one widget.

use criterion::{criterion_group, criterion_main, Criterion};
use hashcore_crypto::sha256;
use hashcore_gen::WidgetGenerator;
use hashcore_profile::{HashSeed, PerformanceProfile};
use hashcore_sim::{CoreConfig, CoreModel, PredictorKind};
use hashcore_vm::Executor;
use std::hint::black_box;

fn bench_branch_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_predictors");
    group.sample_size(10);

    let mut profile = PerformanceProfile::leela_like();
    profile.target_dynamic_instructions = 20_000;
    let generator = WidgetGenerator::new(profile);
    let widget = generator.generate(&HashSeed::new(sha256(b"predictor-ablation")));
    let execution = Executor::new(widget.exec_config())
        .execute(&widget.program)
        .expect("widget executes");

    for kind in PredictorKind::ALL {
        let mut config = CoreConfig::ivy_bridge_like();
        config.predictor = kind;
        let model = CoreModel::new(config);
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| black_box(model.simulate(&widget.program, &execution.trace)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_branch_predictors);
criterion_main!(benches);
