//! Criterion bench backing experiment E8: per-hash cost of HashCore and the
//! comparator PoW functions.

use criterion::{criterion_group, criterion_main, Criterion};
use hashcore::HashCore;
use hashcore_baselines::{
    HashCorePow, MemoryHardPow, PowFunction, RandomxLitePow, SelectionPow, Sha256dPow,
};
use hashcore_profile::PerformanceProfile;
use std::hint::black_box;

fn bench_profile() -> PerformanceProfile {
    // A reduced instruction target keeps a full `cargo bench` run short while
    // preserving the relative ordering; the exp8 binary uses the full-scale
    // reference profile.
    let mut profile = PerformanceProfile::leela_like();
    profile.target_dynamic_instructions = 20_000;
    profile
}

fn bench_pow_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("pow_functions");
    group.sample_size(10);

    let functions: Vec<Box<dyn PowFunction>> = vec![
        Box::new(Sha256dPow),
        Box::new(MemoryHardPow::new(256 << 10, 2)),
        Box::new(RandomxLitePow::new(20_000)),
        Box::new(SelectionPow::new(bench_profile(), 16, 1)),
        Box::new(HashCorePow::new(HashCore::new(bench_profile()))),
    ];

    for pow in &functions {
        group.bench_function(pow.name(), |b| {
            let mut counter = 0u64;
            b.iter(|| {
                counter = counter.wrapping_add(1);
                black_box(pow.pow_hash(&counter.to_le_bytes()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pow_functions);
criterion_main!(benches);
