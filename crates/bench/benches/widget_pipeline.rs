//! Criterion bench backing experiments E2–E5 and E7: the stages of the
//! widget pipeline (seed noise → generation → execution → simulation), which
//! is where all figure data comes from.

use criterion::{criterion_group, criterion_main, Criterion};
use hashcore_crypto::sha256;
use hashcore_gen::{GenScratch, GeneratedWidget, WidgetGenerator};
use hashcore_profile::{
    apply_seed, apply_seed_into, HashSeed, NoiseConfig, PerformanceProfile, SeededProfile,
};
use hashcore_sim::{CoreConfig, CoreModel};
use hashcore_vm::{ExecScratch, Executor, PreparedProgram};
use std::hint::black_box;

fn profile() -> PerformanceProfile {
    let mut profile = PerformanceProfile::leela_like();
    profile.target_dynamic_instructions = 20_000;
    profile
}

fn bench_widget_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("widget_pipeline");
    group.sample_size(10);

    let base = profile();
    let generator = WidgetGenerator::new(base.clone());
    let seed = HashSeed::new(sha256(b"bench-widget"));
    let widget = generator.generate(&seed);
    let execution = Executor::new(widget.exec_config())
        .execute(&widget.program)
        .expect("widget executes");
    let core = CoreModel::new(CoreConfig::ivy_bridge_like());

    group.bench_function("seed_noise", |b| {
        b.iter(|| black_box(apply_seed(&base, &seed, &NoiseConfig::default())))
    });
    group.bench_function("seed_noise_scratch", |b| {
        let mut out = SeededProfile::default();
        b.iter(|| {
            apply_seed_into(&base, &seed, &NoiseConfig::default(), &mut out);
            black_box(&out);
        })
    });
    group.bench_function("widget_generation", |b| {
        b.iter(|| black_box(generator.generate(&seed)))
    });
    group.bench_function("widget_generation_scratch", |b| {
        let mut scratch = GenScratch::new();
        let mut out = GeneratedWidget::default();
        b.iter(|| {
            generator.generate_into(&seed, &mut scratch, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("widget_execution", |b| {
        b.iter(|| {
            black_box(
                Executor::new(widget.exec_config())
                    .execute(&widget.program)
                    .expect("widget executes"),
            )
        })
    });
    group.bench_function("widget_execution_prepared", |b| {
        let prepared = PreparedProgram::new(&widget.program).expect("widget validates");
        let mut exec = ExecScratch::new();
        b.iter(|| {
            black_box(
                Executor::new(widget.exec_config())
                    .execute_prepared(&prepared, &mut exec)
                    .expect("widget executes"),
            )
        })
    });
    group.bench_function("widget_simulation", |b| {
        b.iter(|| black_box(core.simulate(&widget.program, &execution.trace)))
    });
    group.finish();
}

criterion_group!(benches, bench_widget_pipeline);
criterion_main!(benches);
