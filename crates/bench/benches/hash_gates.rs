//! Micro-bench of the hash-gate primitives: SHA-256 / SHA-512 throughput and
//! the Merkle-tree construction used by the chain substrate. These set the
//! floor cost of the non-widget portion of every HashCore evaluation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hashcore_crypto::{sha256, sha512, MerkleTree};
use std::hint::black_box;

fn bench_hash_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_gates");
    group.sample_size(20);

    for size in [64usize, 4096, 32 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("sha256/{size}B"), |b| {
            b.iter(|| black_box(sha256(&data)))
        });
        group.bench_function(format!("sha512/{size}B"), |b| {
            b.iter(|| black_box(sha512(&data)))
        });
    }

    let transactions: Vec<Vec<u8>> = (0..256).map(|i: u32| i.to_le_bytes().to_vec()).collect();
    group.bench_function("merkle_tree/256_leaves", |b| {
        b.iter(|| {
            black_box(MerkleTree::from_items(
                transactions.iter().map(|t| t.as_slice()),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hash_gates);
criterion_main!(benches);
