//! # hashcore-bench
//!
//! Shared measurement machinery for the experiment harnesses.
//!
//! Every table and figure of the paper has a corresponding binary in
//! `src/bin/` (see DESIGN.md §4 and EXPERIMENTS.md for the index). The
//! binaries share the widget-measurement loop implemented here: build the
//! Leela-like reference profile from the Go-engine kernel, generate `n`
//! widgets from random hash seeds, execute each one, and measure it on the
//! simulated Ivy Bridge-class core — exactly the methodology of Section V of
//! the paper, with the hardware PMU replaced by the `hashcore-sim` model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod simbench;

use hashcore_crypto::sha256;
use hashcore_gen::{GenScratch, GeneratedWidget, PipelineScratch, WidgetGenerator};
use hashcore_profile::{HashSeed, PerformanceProfile, ProfileDistance};
use hashcore_sim::{CoreConfig, CoreModel, WorkloadProfiler};
use hashcore_workloads::{Workload, WorkloadParams};

/// Measurements taken from one generated widget.
#[derive(Debug, Clone)]
pub struct WidgetMeasurement {
    /// Index of the widget in the experiment (also its seed counter).
    pub index: usize,
    /// Instructions per cycle on the simulated core.
    pub ipc: f64,
    /// Branch-prediction hit rate on the simulated core.
    pub branch_hit_rate: f64,
    /// Branch mispredictions per thousand instructions.
    pub branch_mpki: f64,
    /// Dynamic instruction count.
    pub dynamic_instructions: u64,
    /// Widget output size in bytes.
    pub output_bytes: usize,
    /// Number of register snapshots emitted.
    pub snapshots: u64,
    /// Static code size of the encoded widget program, in bytes.
    pub code_bytes: usize,
    /// Distance between the widget's measured profile and its noised target.
    pub fidelity: ProfileDistance,
    /// L1 data-cache miss rate.
    pub l1d_miss_rate: f64,
}

/// The experiment context: reference workload profile plus its own measured
/// IPC / branch behaviour on the simulated core.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The reference profile (from the Go-engine kernel by default).
    pub reference: PerformanceProfile,
    /// Core configuration used for all measurements.
    pub core: CoreConfig,
    generator: WidgetGenerator,
}

impl Experiment {
    /// Builds the standard experiment context: the Leela-like Go-engine
    /// kernel profiled on the Ivy Bridge-like core.
    pub fn standard() -> Self {
        Self::with_workload(Workload::GoEngine)
    }

    /// Builds an experiment context around any reference workload.
    pub fn with_workload(workload: Workload) -> Self {
        let core = CoreConfig::ivy_bridge_like();
        let reference = workload
            .reference_profile(&WorkloadParams::reference(), core)
            .expect("reference kernels always execute");
        let generator = WidgetGenerator::new(reference.clone());
        Self {
            reference,
            core,
            generator,
        }
    }

    /// The widget generator targeting the reference profile.
    pub fn generator(&self) -> &WidgetGenerator {
        &self.generator
    }

    /// The hash seed of the `index`-th experiment widget (seeds are the
    /// SHA-256 digests of the index, mirroring the paper's "randomly
    /// generated one thousand hash seeds").
    pub fn widget_seed(&self, index: usize) -> HashSeed {
        HashSeed::new(sha256(
            format!("hashcore-experiment-widget-{index}").as_bytes(),
        ))
    }

    /// Generates the `index`-th experiment widget.
    pub fn widget(&self, index: usize) -> GeneratedWidget {
        let mut scratch = GenScratch::new();
        let mut out = GeneratedWidget::default();
        self.widget_into(index, &mut scratch, &mut out);
        out
    }

    /// Generates the `index`-th experiment widget into reusable scratch
    /// state — the buffer-reusing form of [`Experiment::widget`] for
    /// harnesses sweeping many widgets.
    pub fn widget_into(&self, index: usize, scratch: &mut GenScratch, out: &mut GeneratedWidget) {
        self.generator
            .generate_into(&self.widget_seed(index), scratch, out);
    }

    /// Generates, executes and measures one widget.
    ///
    /// Convenience wrapper over [`Experiment::measure_widget_with`] with
    /// fresh scratch state.
    pub fn measure_widget(&self, index: usize) -> WidgetMeasurement {
        self.measure_widget_with(index, &mut PipelineScratch::new())
    }

    /// Generates, executes and measures one widget through reusable scratch
    /// state: the widget runs on the prepared-execution path and the
    /// simulator and profiler replay the trace straight out of the
    /// scratch's execution buffer, so sweeping many widgets re-allocates no
    /// trace, output or program storage.
    pub fn measure_widget_with(
        &self,
        index: usize,
        scratch: &mut PipelineScratch,
    ) -> WidgetMeasurement {
        let stats = scratch
            .run(&self.generator, &self.widget_seed(index), true)
            .expect("generated widgets always execute");
        let widget = &scratch.widget;
        let trace = scratch.exec.trace();
        let sim = CoreModel::new(self.core).simulate(&widget.program, trace);
        let measured_profile =
            WorkloadProfiler::new(self.core).profile("widget", &widget.program, trace);
        WidgetMeasurement {
            index,
            ipc: sim.counters.ipc(),
            branch_hit_rate: sim.counters.branch_hit_rate(),
            branch_mpki: sim.counters.branch_mpki(),
            dynamic_instructions: stats.dynamic_instructions,
            output_bytes: scratch.exec.output().len(),
            snapshots: stats.snapshot_count,
            code_bytes: hashcore_isa::encode(&widget.program).len(),
            fidelity: ProfileDistance::between(&measured_profile, &widget.target.profile),
            l1d_miss_rate: sim.counters.l1d.miss_rate(),
        }
    }

    /// Measures `n` widgets (indices `0..n`) through one shared scratch.
    pub fn measure_widgets(&self, n: usize) -> Vec<WidgetMeasurement> {
        let mut scratch = PipelineScratch::new();
        (0..n)
            .map(|i| self.measure_widget_with(i, &mut scratch))
            .collect()
    }
}

/// Reads the widget count for a figure harness from the command line
/// (first positional argument), falling back to `default` — the paper uses
/// 1000 widgets; the default keeps a laptop run short.
pub fn widget_count_from_args(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_experiment_measures_widgets() {
        let experiment = Experiment::standard();
        let m = experiment.measure_widget(0);
        assert!(m.ipc > 0.0);
        assert!(m.branch_hit_rate > 0.5);
        assert!(m.output_bytes > 0);
        assert!(m.code_bytes > 100);
        assert!(m.fidelity.mix_l1 < 0.5);
    }

    #[test]
    fn widget_count_defaults_when_unparsable() {
        assert_eq!(widget_count_from_args(123), 123);
    }
}
