//! Experiment E5 — profile fidelity of generated widgets.
//!
//! Section V-B's claim is that widget performance metrics are "centred
//! around the original workload's value". This harness quantifies it: for N
//! widgets it measures each widget's profile (instruction mix, branch
//! behaviour, memory behaviour) and reports the distance to (a) the widget's
//! own noised target profile and (b) the original reference profile, plus a
//! per-class instruction-mix error table.
//!
//! Usage: `exp5_profile_fidelity [N]` (default 200).

use hashcore_bench::{widget_count_from_args, Experiment};
use hashcore_gen::PipelineScratch;
use hashcore_isa::OpClass;
use hashcore_profile::stats::Summary;
use hashcore_profile::{per_class_error, ProfileDistance};
use hashcore_sim::WorkloadProfiler;

fn main() {
    let n = widget_count_from_args(200);
    let experiment = Experiment::standard();
    println!("== Experiment E5: profile fidelity ({n} widgets) ==\n");
    println!("reference profile:\n{}\n", experiment.reference);

    let profiler = WorkloadProfiler::new(experiment.core);
    let mut to_target = Vec::new();
    let mut to_reference = Vec::new();
    let mut class_errors: Vec<Vec<f64>> = vec![Vec::new(); OpClass::ALL.len()];

    // Prepared-execution scratch: generation, pre-decode and trace buffers
    // are reused across all N widgets instead of re-allocated per widget.
    let mut scratch = PipelineScratch::new();

    for i in 0..n {
        scratch
            .run(experiment.generator(), &experiment.widget_seed(i), true)
            .expect("widgets execute");
        let widget = &scratch.widget;
        let measured = profiler.profile("widget", &widget.program, scratch.exec.trace());
        to_target.push(ProfileDistance::between(&measured, &widget.target.profile).mix_l1);
        to_reference.push(ProfileDistance::between(&measured, &experiment.reference).mix_l1);
        for (slot, (_, err)) in class_errors
            .iter_mut()
            .zip(per_class_error(&measured, &experiment.reference))
        {
            slot.push(err);
        }
    }

    println!(
        "instruction-mix L1 distance to the widget's own (noised) target: {}",
        Summary::from_values(&to_target).expect("non-empty")
    );
    println!(
        "instruction-mix L1 distance to the original reference profile:   {}\n",
        Summary::from_values(&to_reference).expect("non-empty")
    );

    println!(
        "{:<10} {:>10} {:>14} {:>14}",
        "class", "reference", "widget mean", "mean error"
    );
    for (class, errors) in OpClass::ALL.iter().zip(&class_errors) {
        let summary = Summary::from_values(errors).expect("non-empty");
        let reference = experiment.reference.mix.fraction(*class);
        println!(
            "{:<10} {:>10.4} {:>14.4} {:>+14.4}",
            class.name(),
            reference,
            reference + summary.mean,
            summary.mean
        );
    }

    println!("\nPaper: widget metrics form a distribution centred on the reference value,");
    println!("with positive-only noise on the instruction-type counts.");
}
