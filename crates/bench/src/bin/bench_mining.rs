//! Mining-throughput harness: hashes/sec for the naive path, the
//! zero-allocation scratch path, and multi-threaded `mine_parallel`.
//!
//! This bench establishes the repo's performance trajectory for the PoW hot
//! loop (hash → generate → execute → hash, once per nonce). It measures:
//!
//! 1. `hash` — the naive single-thread path (fresh buffers per nonce),
//! 2. `hash_with_scratch` — the prepared/scratch single-thread path,
//! 3. `mine_parallel` at 1, 2, 4, … threads, scanning a fixed nonce range
//!    against an unreachable target so every nonce is evaluated.
//!
//! Results are printed as a table and written to `BENCH_mining.json` in the
//! current directory. Usage:
//!
//! ```text
//! bench_mining [nonces-per-measurement] [target-dynamic-instructions]
//! ```
//!
//! On a single-core machine the multi-thread rows cannot exceed the
//! single-thread rate; `available_parallelism` is recorded in the JSON so
//! downstream comparisons are interpretable.

use hashcore::{HashCore, HashScratch, Target};
use hashcore_profile::PerformanceProfile;
use std::fmt::Write as _;
use std::time::Instant;

/// One measurement row: a mode, its thread count and its throughput.
struct Measurement {
    mode: &'static str,
    threads: usize,
    hashes: u64,
    seconds: f64,
}

impl Measurement {
    fn hashes_per_sec(&self) -> f64 {
        self.hashes as f64 / self.seconds
    }
}

fn positional_arg(index: usize, default: u64) -> u64 {
    std::env::args()
        .nth(index)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let nonces = positional_arg(1, 192).max(1);
    let instructions = positional_arg(2, 20_000).max(1_000);

    let mut profile = PerformanceProfile::leela_like();
    profile.target_dynamic_instructions = instructions;
    let pow = HashCore::new(profile);

    // A target no digest can meet: the full range is always scanned, so
    // elapsed time divided by the range is exactly per-hash cost.
    let unreachable = Target::from_leading_zero_bits(255);
    let header: &[u8] = b"bench-mining-header";
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "mining throughput: {nonces} nonces/measurement, \
         {instructions} dynamic instructions/widget, \
         {parallelism} hardware threads"
    );

    let mut measurements = Vec::new();

    // Warm-up: fault in code paths and populate the generator's state.
    let mut warmup = HashScratch::new();
    for nonce in 0..8u64 {
        pow.hash_with_scratch(&HashCore::mining_input(header, nonce), &mut warmup)
            .expect("widgets execute");
    }

    // 1. Naive single-thread path: fresh buffers per nonce.
    let started = Instant::now();
    for nonce in 0..nonces {
        pow.hash(&HashCore::mining_input(header, nonce))
            .expect("widgets execute");
    }
    measurements.push(Measurement {
        mode: "hash_naive",
        threads: 1,
        hashes: nonces,
        seconds: started.elapsed().as_secs_f64(),
    });

    // 2. Scratch single-thread path: zero allocations after warm-up.
    let mut scratch = HashScratch::new();
    let started = Instant::now();
    for nonce in 0..nonces {
        pow.hash_with_scratch(&HashCore::mining_input(header, nonce), &mut scratch)
            .expect("widgets execute");
    }
    measurements.push(Measurement {
        mode: "hash_with_scratch",
        threads: 1,
        hashes: nonces,
        seconds: started.elapsed().as_secs_f64(),
    });

    // 3. Parallel mining across thread counts.
    let mut thread_counts = vec![1usize, 2, 4];
    if parallelism > 4 {
        thread_counts.push(parallelism);
    }
    for &threads in &thread_counts {
        let started = Instant::now();
        let result = pow
            .mine_parallel(header, unreachable, 0, nonces, threads)
            .expect("widgets execute");
        assert!(result.is_none(), "an unreachable target cannot be met");
        measurements.push(Measurement {
            mode: "mine_parallel",
            threads,
            hashes: nonces,
            seconds: started.elapsed().as_secs_f64(),
        });
    }

    let single_rate = measurements[1].hashes_per_sec();
    for m in &measurements {
        println!(
            "  {:<20} threads={:<2} {:>10.2} hashes/sec  ({:.2}x vs scratch single-thread)",
            m.mode,
            m.threads,
            m.hashes_per_sec(),
            m.hashes_per_sec() / single_rate
        );
    }

    let json = render_json(&measurements, nonces, instructions, parallelism);
    std::fs::write("BENCH_mining.json", &json).expect("BENCH_mining.json is writable");
    println!("wrote BENCH_mining.json");
}

/// Renders the measurement set as a small, dependency-free JSON document.
fn render_json(
    measurements: &[Measurement],
    nonces: u64,
    instructions: u64,
    parallelism: usize,
) -> String {
    let naive_rate = measurements[0].hashes_per_sec();
    let scratch_rate = measurements[1].hashes_per_sec();
    let four_thread_rate = measurements
        .iter()
        .find(|m| m.mode == "mine_parallel" && m.threads == 4)
        .map_or(0.0, Measurement::hashes_per_sec);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"mining_throughput\",");
    let _ = writeln!(json, "  \"nonces_per_measurement\": {nonces},");
    let _ = writeln!(json, "  \"target_dynamic_instructions\": {instructions},");
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"measurements\": [");
    for (index, m) in measurements.iter().enumerate() {
        let comma = if index + 1 == measurements.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"hashes\": {}, \
             \"seconds\": {:.6}, \"hashes_per_sec\": {:.3}}}{comma}",
            m.mode,
            m.threads,
            m.hashes,
            m.seconds,
            m.hashes_per_sec()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    let _ = writeln!(
        json,
        "    \"scratch_vs_naive_single_thread\": {:.3},",
        scratch_rate / naive_rate
    );
    let _ = writeln!(
        json,
        "    \"four_threads_vs_single_thread\": {:.3}",
        four_thread_rate / scratch_rate
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_well_formed() {
        let measurements = vec![
            Measurement {
                mode: "hash_naive",
                threads: 1,
                hashes: 10,
                seconds: 1.0,
            },
            Measurement {
                mode: "hash_with_scratch",
                threads: 1,
                hashes: 20,
                seconds: 1.0,
            },
            Measurement {
                mode: "mine_parallel",
                threads: 4,
                hashes: 40,
                seconds: 1.0,
            },
        ];
        let json = render_json(&measurements, 10, 20_000, 4);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"hashes_per_sec\": 20.000"));
        assert!(json.contains("\"four_threads_vs_single_thread\": 2.000"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn positional_args_fall_back_to_defaults() {
        assert_eq!(positional_arg(7, 42), 42);
    }
}
