//! Mining-throughput harness: hashes/sec for the naive path, the
//! zero-allocation scratch path, the lane-parallel batch path, and
//! multi-threaded `mine_parallel`.
//!
//! This bench establishes the repo's performance trajectory for the PoW hot
//! loop (hash → generate → execute → hash, once per nonce). It measures:
//!
//! 1. `hash` — the naive single-thread path (fresh buffers per nonce),
//! 2. `hash_with_scratch` — the prepared/scratch single-thread path,
//! 3. `hash_batch_x4` — the batch-of-[`NONCE_LANES`] path whose first hash
//!    gate runs four lanes wide,
//! 4. `sha256d_scalar` / `sha256d_x4` — the pure hash-gate scan (the
//!    `sha256d` baseline) per-nonce vs four lanes per pass, which isolates
//!    the multi-lane compression gain (`simd_vs_scalar`) from the
//!    widget-dominated HashCore numbers,
//! 5. `mine_parallel` at 1, 2, 4, … threads, scanning a fixed nonce range
//!    against an unreachable target so every nonce is evaluated.
//!
//! Thread counts are clamped to the host's logical cores by default — a
//! `threads=4` row timed on a 1-core host measures scheduler contention,
//! not mining — and the `speedups` section only compares measurements that
//! were actually taken. Pass an explicit third argument to override the
//! clamp (for contention experiments); the JSON then records
//! `thread_counts_within_cores: false` and the bench gate fails, which is
//! the point: such artifacts must not be published as throughput numbers.
//!
//! Results are printed as a table and written to `BENCH_mining.json` in the
//! current directory. Usage:
//!
//! ```text
//! bench_mining [nonces-per-measurement] [target-dynamic-instructions] [max-threads]
//! ```

use hashcore::{HashCore, HashScratch, MiningInput, Target, NONCE_LANES};
use hashcore_baselines::{PreparedPow, Sha256dPow};
use hashcore_profile::PerformanceProfile;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt::Write as _;
use std::time::Instant;

thread_local! {
    /// Heap operations (alloc, realloc, alloc_zeroed) performed by the
    /// current thread. Thread-local so worker threads warming up their own
    /// scratches do not pollute the measurement thread's count.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A counting wrapper around the system allocator: every allocation and
/// reallocation bumps the current thread's counter. This is how the bench
/// *proves* the steady-state mining loop is allocation-free rather than
/// merely asserting it in documentation.
struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter update allocates
// nothing (const-initialised thread-local `Cell`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations performed by this thread so far.
fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// One measurement row: a mode, its thread count and its throughput.
struct Measurement {
    mode: &'static str,
    threads: usize,
    hashes: u64,
    seconds: f64,
}

impl Measurement {
    fn hashes_per_sec(&self) -> f64 {
        self.hashes as f64 / self.seconds
    }
}

fn positional_arg(index: usize, default: u64) -> u64 {
    std::env::args()
        .nth(index)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(default)
}

/// Thread counts to sweep `mine_parallel` over: the 1-2-4 ladder plus the
/// full machine, capped at `max_threads`. With the default cap (the logical
/// core count) no row oversubscribes the host; an explicit cap above the
/// core count reintroduces oversubscribed rows deliberately.
fn sweep_thread_counts(max_threads: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    if max_threads > 4 || !counts.contains(&max_threads) {
        counts.push(max_threads);
    }
    counts.dedup();
    counts
}

fn main() {
    let nonces = positional_arg(1, 192).max(NONCE_LANES as u64);
    let instructions = positional_arg(2, 20_000).max(1_000);
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Default: never spawn more miners than the host can run. An explicit
    // third argument overrides the clamp for contention experiments.
    let max_threads = match positional_arg(3, 0) {
        0 => parallelism,
        explicit => explicit as usize,
    };
    let thread_counts = sweep_thread_counts(max_threads);

    let mut profile = PerformanceProfile::leela_like();
    profile.target_dynamic_instructions = instructions;
    let pow = HashCore::new(profile);

    // A target no digest can meet: the full range is always scanned, so
    // elapsed time divided by the range is exactly per-hash cost.
    let unreachable = Target::from_leading_zero_bits(255);
    let header: &[u8] = b"bench-mining-header";

    println!(
        "mining throughput: {nonces} nonces/measurement, \
         {instructions} dynamic instructions/widget, \
         {parallelism} hardware threads, sweeping {thread_counts:?} miner threads"
    );

    let mut measurements = Vec::new();

    // Warm-up: fault in code paths and grow the scratch buffers to their
    // steady-state sizes. Buffer capacities adapt to the stream of widget
    // shapes, so we warm until a whole probe batch completes without a
    // single heap operation (bounded in case a regression makes the loop
    // allocate per hash — the assert below then fails loudly).
    let mut scratch = HashScratch::new();
    let mut input = MiningInput::new(header);
    let mut warm_nonce = 0u64;
    let mut warm_batches = 0u32;
    loop {
        let before = thread_allocations();
        for _ in 0..32u64 {
            pow.hash_with_scratch(input.with_nonce(warm_nonce), &mut scratch)
                .expect("widgets execute");
            warm_nonce += 1;
        }
        warm_batches += 1;
        if thread_allocations() == before || warm_batches >= 32 {
            break;
        }
    }
    println!("warmed up over {} nonces", warm_nonce);

    // 1. Naive single-thread path: fresh buffers per nonce.
    let started = Instant::now();
    for nonce in 0..nonces {
        pow.hash(&HashCore::mining_input(header, nonce))
            .expect("widgets execute");
    }
    measurements.push(Measurement {
        mode: "hash_naive",
        threads: 1,
        hashes: nonces,
        seconds: started.elapsed().as_secs_f64(),
    });

    // 2. Scratch single-thread path: zero allocations after warm-up,
    //    witnessed by the counting allocator.
    let allocs_before = thread_allocations();
    let started = Instant::now();
    for nonce in 0..nonces {
        pow.hash_with_scratch(input.with_nonce(nonce), &mut scratch)
            .expect("widgets execute");
    }
    let seconds = started.elapsed().as_secs_f64();
    let scratch_allocations = thread_allocations() - allocs_before;
    let allocations_per_hash = scratch_allocations as f64 / nonces as f64;
    measurements.push(Measurement {
        mode: "hash_with_scratch",
        threads: 1,
        hashes: nonces,
        seconds,
    });
    println!(
        "  steady-state allocations: {scratch_allocations} over {nonces} hashes \
         ({allocations_per_hash:.4}/hash)"
    );
    assert_eq!(
        scratch_allocations, 0,
        "the warmed-up scratch mining loop must perform zero heap allocations per hash"
    );

    // 3. Batch path: the first hash gate runs NONCE_LANES lanes per pass,
    //    widget stage and second gate per lane, same scratch — and still
    //    zero allocations.
    let batch_hashes = nonces - nonces % NONCE_LANES as u64;
    let allocs_before = thread_allocations();
    let started = Instant::now();
    let mut base = 0u64;
    while base < batch_hashes {
        let batch: [u64; NONCE_LANES] = std::array::from_fn(|lane| base + lane as u64);
        for result in pow.hash_nonce_batch_with_scratch(header, batch, &mut scratch) {
            result.expect("widgets execute");
        }
        base += NONCE_LANES as u64;
    }
    let seconds = started.elapsed().as_secs_f64();
    let batch_allocations = thread_allocations() - allocs_before;
    measurements.push(Measurement {
        mode: "hash_batch_x4",
        threads: 1,
        hashes: batch_hashes,
        seconds,
    });
    assert_eq!(
        batch_allocations, 0,
        "the warmed-up batch mining loop must perform zero heap allocations per hash"
    );

    // 4. Pure hash-gate scan, scalar vs 4-lane: the sha256d baseline is all
    //    gate and no widget, so this pair isolates the multi-lane SHA-256
    //    gain itself. Far more nonces — a sha256d evaluation is ~1000x
    //    cheaper than a HashCore one.
    let gate_nonces = (nonces * 2_048).max(1 << 18);
    let mut gate_input = MiningInput::new(header);
    let started = Instant::now();
    assert!(Sha256dPow
        .scan_nonces(&mut gate_input, unreachable, 0, gate_nonces, &mut ())
        .is_none());
    measurements.push(Measurement {
        mode: "sha256d_scalar",
        threads: 1,
        hashes: gate_nonces,
        seconds: started.elapsed().as_secs_f64(),
    });
    let started = Instant::now();
    assert!(Sha256dPow
        .scan_nonce_batch(&mut gate_input, unreachable, 0, gate_nonces, &mut ())
        .is_none());
    measurements.push(Measurement {
        mode: "sha256d_x4",
        threads: 1,
        hashes: gate_nonces,
        seconds: started.elapsed().as_secs_f64(),
    });

    // 5. Parallel mining across thread counts.
    for &threads in &thread_counts {
        let started = Instant::now();
        let result = pow
            .mine_parallel(header, unreachable, 0, nonces, threads)
            .expect("widgets execute");
        assert!(result.is_none(), "an unreachable target cannot be met");
        measurements.push(Measurement {
            mode: "mine_parallel",
            threads,
            hashes: nonces,
            seconds: started.elapsed().as_secs_f64(),
        });
    }

    let single_rate = measurements[1].hashes_per_sec();
    for m in &measurements {
        println!(
            "  {:<20} threads={:<2} {:>12.2} hashes/sec  ({:.2}x vs scratch single-thread)",
            m.mode,
            m.threads,
            m.hashes_per_sec(),
            m.hashes_per_sec() / single_rate
        );
    }

    let threads_used = thread_counts.iter().copied().max().unwrap_or(1);
    let json = render_json(
        &measurements,
        nonces,
        instructions,
        parallelism,
        threads_used,
        allocations_per_hash,
    );
    std::fs::write("BENCH_mining.json", &json).expect("BENCH_mining.json is writable");
    println!("wrote BENCH_mining.json");
}

/// Rate of the unique measurement matching `mode` and `threads`, if taken.
fn rate_of(measurements: &[Measurement], mode: &str, threads: usize) -> Option<f64> {
    measurements
        .iter()
        .find(|m| m.mode == mode && m.threads == threads)
        .map(Measurement::hashes_per_sec)
}

/// Renders the measurement set as a small, dependency-free JSON document.
///
/// Every speedup is a ratio of two measurements that were actually taken
/// under matched configurations (same nonce count, same mode family); a
/// missing counterpart drops the ratio from the document instead of
/// dividing by a stale default.
fn render_json(
    measurements: &[Measurement],
    nonces: u64,
    instructions: u64,
    logical_cores: usize,
    threads_used: usize,
    allocations_per_hash: f64,
) -> String {
    let naive_rate = rate_of(measurements, "hash_naive", 1);
    let scratch_rate = rate_of(measurements, "hash_with_scratch", 1);
    let batch_rate = rate_of(measurements, "hash_batch_x4", 1);
    let gate_scalar_rate = rate_of(measurements, "sha256d_scalar", 1);
    let gate_x4_rate = rate_of(measurements, "sha256d_x4", 1);
    // The parallel speedup compares the widest mine_parallel row taken
    // against the threads=1 row of the same mode — never against a thread
    // count that was clamped away.
    let parallel_threads = measurements
        .iter()
        .filter(|m| m.mode == "mine_parallel")
        .map(|m| m.threads)
        .max();
    let parallel_speedup = parallel_threads.and_then(|threads| {
        Some(
            rate_of(measurements, "mine_parallel", threads)?
                / rate_of(measurements, "mine_parallel", 1)?,
        )
    });

    let simd_vs_scalar = match (gate_x4_rate, gate_scalar_rate) {
        (Some(x4), Some(scalar)) => Some(x4 / scalar),
        _ => None,
    };
    let within_cores = measurements.iter().all(|m| m.threads <= logical_cores);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"mining_throughput\",");
    let _ = writeln!(
        json,
        "{}",
        hashcore_bench::simbench::host_json(threads_used)
    );
    let _ = writeln!(json, "  \"nonces_per_measurement\": {nonces},");
    let _ = writeln!(json, "  \"target_dynamic_instructions\": {instructions},");
    let _ = writeln!(
        json,
        "  \"allocations_per_hash\": {allocations_per_hash:.4},"
    );
    let _ = writeln!(
        json,
        "  \"simd_faster_than_scalar\": {},",
        simd_vs_scalar.is_some_and(|ratio| ratio >= 1.0)
    );
    let _ = writeln!(json, "  \"thread_counts_within_cores\": {within_cores},");
    let _ = writeln!(json, "  \"measurements\": [");
    for (index, m) in measurements.iter().enumerate() {
        let comma = if index + 1 == measurements.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"hashes\": {}, \
             \"seconds\": {:.6}, \"hashes_per_sec\": {:.3}}}{comma}",
            m.mode,
            m.threads,
            m.hashes,
            m.seconds,
            m.hashes_per_sec()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    let mut ratios: Vec<(String, f64)> = Vec::new();
    if let (Some(scratch), Some(naive)) = (scratch_rate, naive_rate) {
        ratios.push(("scratch_vs_naive_single_thread".into(), scratch / naive));
    }
    if let (Some(batch), Some(scratch)) = (batch_rate, scratch_rate) {
        ratios.push(("batch_x4_vs_scratch_single_thread".into(), batch / scratch));
    }
    if let Some(ratio) = simd_vs_scalar {
        ratios.push(("simd_vs_scalar".into(), ratio));
    }
    if let (Some(threads), Some(speedup)) = (parallel_threads, parallel_speedup) {
        ratios.push((
            format!("parallel_{threads}_threads_vs_single_thread"),
            speedup,
        ));
    }
    for (index, (name, ratio)) in ratios.iter().enumerate() {
        let comma = if index + 1 == ratios.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {ratio:.3}{comma}");
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mode: &'static str, threads: usize, hashes: u64, seconds: f64) -> Measurement {
        Measurement {
            mode,
            threads,
            hashes,
            seconds,
        }
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let measurements = vec![
            row("hash_naive", 1, 10, 1.0),
            row("hash_with_scratch", 1, 20, 1.0),
            row("hash_batch_x4", 1, 30, 1.0),
            row("sha256d_scalar", 1, 1_000, 1.0),
            row("sha256d_x4", 1, 2_000, 1.0),
            row("mine_parallel", 1, 40, 2.0),
            row("mine_parallel", 4, 40, 1.0),
        ];
        let json = render_json(&measurements, 10, 20_000, 4, 4, 0.0);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"hashes_per_sec\": 20.000"));
        assert!(json.contains("\"host\""));
        assert!(json.contains("\"threads_used\": 4"));
        assert!(json.contains("\"allocations_per_hash\": 0.0000"));
        assert!(json.contains("\"simd_faster_than_scalar\": true"));
        assert!(json.contains("\"thread_counts_within_cores\": true"));
        assert!(json.contains("\"scratch_vs_naive_single_thread\": 2.000"));
        assert!(json.contains("\"batch_x4_vs_scratch_single_thread\": 1.500"));
        assert!(json.contains("\"simd_vs_scalar\": 2.000"));
        assert!(json.contains("\"parallel_4_threads_vs_single_thread\": 2.000"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn oversubscribed_rows_are_reported_and_flagged() {
        // A 4-thread row on a 1-core host: the measurement stays in the
        // artifact (it was taken) but the boolean gate flags it, and no
        // speedup compares it against a clamped-away configuration.
        let measurements = vec![
            row("hash_naive", 1, 10, 1.0),
            row("hash_with_scratch", 1, 20, 1.0),
            row("mine_parallel", 1, 40, 1.0),
            row("mine_parallel", 4, 40, 1.5),
        ];
        let json = render_json(&measurements, 10, 20_000, 1, 4, 0.0);
        assert!(json.contains("\"thread_counts_within_cores\": false"));
        assert!(json.contains("\"parallel_4_threads_vs_single_thread\""));
        // No simd rows were taken: the ratio is absent, not defaulted.
        assert!(!json.contains("\"simd_vs_scalar\""));
        assert!(json.contains("\"simd_faster_than_scalar\": false"));
    }

    #[test]
    fn thread_sweep_is_clamped_to_the_cap() {
        assert_eq!(sweep_thread_counts(1), vec![1]);
        assert_eq!(sweep_thread_counts(2), vec![1, 2]);
        assert_eq!(sweep_thread_counts(3), vec![1, 2, 3]);
        assert_eq!(sweep_thread_counts(4), vec![1, 2, 4]);
        assert_eq!(sweep_thread_counts(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn positional_args_fall_back_to_defaults() {
        assert_eq!(positional_arg(7, 42), 42);
    }
}
