//! Mining-throughput harness: hashes/sec for the naive path, the
//! zero-allocation scratch path, and multi-threaded `mine_parallel`.
//!
//! This bench establishes the repo's performance trajectory for the PoW hot
//! loop (hash → generate → execute → hash, once per nonce). It measures:
//!
//! 1. `hash` — the naive single-thread path (fresh buffers per nonce),
//! 2. `hash_with_scratch` — the prepared/scratch single-thread path,
//! 3. `mine_parallel` at 1, 2, 4, … threads, scanning a fixed nonce range
//!    against an unreachable target so every nonce is evaluated.
//!
//! Results are printed as a table and written to `BENCH_mining.json` in the
//! current directory. Usage:
//!
//! ```text
//! bench_mining [nonces-per-measurement] [target-dynamic-instructions]
//! ```
//!
//! On a single-core machine the multi-thread rows cannot exceed the
//! single-thread rate; the host's logical core count is recorded in the
//! JSON (the shared `host` fragment) so downstream comparisons are
//! interpretable.

use hashcore::{HashCore, HashScratch, MiningInput, Target};
use hashcore_profile::PerformanceProfile;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt::Write as _;
use std::time::Instant;

thread_local! {
    /// Heap operations (alloc, realloc, alloc_zeroed) performed by the
    /// current thread. Thread-local so worker threads warming up their own
    /// scratches do not pollute the measurement thread's count.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A counting wrapper around the system allocator: every allocation and
/// reallocation bumps the current thread's counter. This is how the bench
/// *proves* the steady-state mining loop is allocation-free rather than
/// merely asserting it in documentation.
struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter update allocates
// nothing (const-initialised thread-local `Cell`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations performed by this thread so far.
fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// One measurement row: a mode, its thread count and its throughput.
struct Measurement {
    mode: &'static str,
    threads: usize,
    hashes: u64,
    seconds: f64,
}

impl Measurement {
    fn hashes_per_sec(&self) -> f64 {
        self.hashes as f64 / self.seconds
    }
}

fn positional_arg(index: usize, default: u64) -> u64 {
    std::env::args()
        .nth(index)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let nonces = positional_arg(1, 192).max(1);
    let instructions = positional_arg(2, 20_000).max(1_000);

    let mut profile = PerformanceProfile::leela_like();
    profile.target_dynamic_instructions = instructions;
    let pow = HashCore::new(profile);

    // A target no digest can meet: the full range is always scanned, so
    // elapsed time divided by the range is exactly per-hash cost.
    let unreachable = Target::from_leading_zero_bits(255);
    let header: &[u8] = b"bench-mining-header";
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "mining throughput: {nonces} nonces/measurement, \
         {instructions} dynamic instructions/widget, \
         {parallelism} hardware threads"
    );

    let mut measurements = Vec::new();

    // Warm-up: fault in code paths and grow the scratch buffers to their
    // steady-state sizes. Buffer capacities adapt to the stream of widget
    // shapes, so we warm until a whole probe batch completes without a
    // single heap operation (bounded in case a regression makes the loop
    // allocate per hash — the assert below then fails loudly).
    let mut scratch = HashScratch::new();
    let mut input = MiningInput::new(header);
    let mut warm_nonce = 0u64;
    let mut warm_batches = 0u32;
    loop {
        let before = thread_allocations();
        for _ in 0..32u64 {
            pow.hash_with_scratch(input.with_nonce(warm_nonce), &mut scratch)
                .expect("widgets execute");
            warm_nonce += 1;
        }
        warm_batches += 1;
        if thread_allocations() == before || warm_batches >= 32 {
            break;
        }
    }
    println!("warmed up over {} nonces", warm_nonce);

    // 1. Naive single-thread path: fresh buffers per nonce.
    let started = Instant::now();
    for nonce in 0..nonces {
        pow.hash(&HashCore::mining_input(header, nonce))
            .expect("widgets execute");
    }
    measurements.push(Measurement {
        mode: "hash_naive",
        threads: 1,
        hashes: nonces,
        seconds: started.elapsed().as_secs_f64(),
    });

    // 2. Scratch single-thread path: zero allocations after warm-up,
    //    witnessed by the counting allocator.
    let allocs_before = thread_allocations();
    let started = Instant::now();
    for nonce in 0..nonces {
        pow.hash_with_scratch(input.with_nonce(nonce), &mut scratch)
            .expect("widgets execute");
    }
    let seconds = started.elapsed().as_secs_f64();
    let scratch_allocations = thread_allocations() - allocs_before;
    let allocations_per_hash = scratch_allocations as f64 / nonces as f64;
    measurements.push(Measurement {
        mode: "hash_with_scratch",
        threads: 1,
        hashes: nonces,
        seconds,
    });
    println!(
        "  steady-state allocations: {scratch_allocations} over {nonces} hashes \
         ({allocations_per_hash:.4}/hash)"
    );
    assert_eq!(
        scratch_allocations, 0,
        "the warmed-up scratch mining loop must perform zero heap allocations per hash"
    );

    // 3. Parallel mining across thread counts.
    let mut thread_counts = vec![1usize, 2, 4];
    if parallelism > 4 {
        thread_counts.push(parallelism);
    }
    for &threads in &thread_counts {
        let started = Instant::now();
        let result = pow
            .mine_parallel(header, unreachable, 0, nonces, threads)
            .expect("widgets execute");
        assert!(result.is_none(), "an unreachable target cannot be met");
        measurements.push(Measurement {
            mode: "mine_parallel",
            threads,
            hashes: nonces,
            seconds: started.elapsed().as_secs_f64(),
        });
    }

    let single_rate = measurements[1].hashes_per_sec();
    for m in &measurements {
        println!(
            "  {:<20} threads={:<2} {:>10.2} hashes/sec  ({:.2}x vs scratch single-thread)",
            m.mode,
            m.threads,
            m.hashes_per_sec(),
            m.hashes_per_sec() / single_rate
        );
    }

    let threads_used = thread_counts.iter().copied().max().unwrap_or(1);
    let json = render_json(
        &measurements,
        nonces,
        instructions,
        threads_used,
        allocations_per_hash,
    );
    std::fs::write("BENCH_mining.json", &json).expect("BENCH_mining.json is writable");
    println!("wrote BENCH_mining.json");
}

/// Renders the measurement set as a small, dependency-free JSON document.
fn render_json(
    measurements: &[Measurement],
    nonces: u64,
    instructions: u64,
    threads_used: usize,
    allocations_per_hash: f64,
) -> String {
    let naive_rate = measurements[0].hashes_per_sec();
    let scratch_rate = measurements[1].hashes_per_sec();
    let four_thread_rate = measurements
        .iter()
        .find(|m| m.mode == "mine_parallel" && m.threads == 4)
        .map_or(0.0, Measurement::hashes_per_sec);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"mining_throughput\",");
    let _ = writeln!(
        json,
        "{}",
        hashcore_bench::simbench::host_json(threads_used)
    );
    let _ = writeln!(json, "  \"nonces_per_measurement\": {nonces},");
    let _ = writeln!(json, "  \"target_dynamic_instructions\": {instructions},");
    let _ = writeln!(
        json,
        "  \"allocations_per_hash\": {allocations_per_hash:.4},"
    );
    let _ = writeln!(json, "  \"measurements\": [");
    for (index, m) in measurements.iter().enumerate() {
        let comma = if index + 1 == measurements.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"hashes\": {}, \
             \"seconds\": {:.6}, \"hashes_per_sec\": {:.3}}}{comma}",
            m.mode,
            m.threads,
            m.hashes,
            m.seconds,
            m.hashes_per_sec()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedups\": {{");
    let _ = writeln!(
        json,
        "    \"scratch_vs_naive_single_thread\": {:.3},",
        scratch_rate / naive_rate
    );
    let _ = writeln!(
        json,
        "    \"four_threads_vs_single_thread\": {:.3}",
        four_thread_rate / scratch_rate
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_well_formed() {
        let measurements = vec![
            Measurement {
                mode: "hash_naive",
                threads: 1,
                hashes: 10,
                seconds: 1.0,
            },
            Measurement {
                mode: "hash_with_scratch",
                threads: 1,
                hashes: 20,
                seconds: 1.0,
            },
            Measurement {
                mode: "mine_parallel",
                threads: 4,
                hashes: 40,
                seconds: 1.0,
            },
        ];
        let json = render_json(&measurements, 10, 20_000, 4, 0.0);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"hashes_per_sec\": 20.000"));
        assert!(json.contains("\"host\""));
        assert!(json.contains("\"threads_used\": 4"));
        assert!(json.contains("\"allocations_per_hash\": 0.0000"));
        assert!(json.contains("\"four_threads_vs_single_thread\": 2.000"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn positional_args_fall_back_to_defaults() {
        assert_eq!(positional_arg(7, 42), 42);
    }
}
