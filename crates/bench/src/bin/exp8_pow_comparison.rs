//! Experiment E8 — PoW function comparison.
//!
//! Places HashCore next to the comparator designs the paper discusses
//! (Sections II and VI-C): Bitcoin's SHA-256d, a scrypt-style memory-hard
//! function, a RandomX-style random-program function, and the
//! widget-selection variant. For each the harness reports hash throughput on
//! this machine, the dominant hardware resource, and the modelled ASIC
//! advantage — the quantity that decides mining-market accessibility.
//!
//! Usage: `exp8_pow_comparison [hashes]` (default 10).

use hashcore::HashCore;
use hashcore_baselines::{
    HashCorePow, MemoryHardPow, PowFunction, RandomxLitePow, SelectionPow, Sha256dPow,
};
use hashcore_bench::{widget_count_from_args, Experiment};
use hashcore_chain::market::asic_advantage;
use std::time::Instant;

fn main() {
    let hashes = widget_count_from_args(10).max(2);
    let experiment = Experiment::standard();
    println!("== Experiment E8: PoW function comparison ({hashes} hashes each) ==\n");

    let functions: Vec<Box<dyn PowFunction>> = vec![
        Box::new(Sha256dPow),
        Box::new(MemoryHardPow::new(1 << 20, 2)),
        Box::new(RandomxLitePow::new(
            experiment.reference.target_dynamic_instructions,
        )),
        Box::new(SelectionPow::new(experiment.reference.clone(), 32, 1)),
        Box::new(HashCorePow::new(HashCore::new(
            experiment.reference.clone(),
        ))),
    ];

    println!(
        "{:<18} {:>14} {:>14} {:>18} {:>16}",
        "function", "ms / hash", "hashes / s", "dominant resource", "ASIC advantage"
    );
    for pow in &functions {
        let start = Instant::now();
        for i in 0..hashes {
            let _ = pow.pow_hash(format!("compare-{i}").as_bytes());
        }
        let per_hash = start.elapsed().as_secs_f64() / hashes as f64;
        println!(
            "{:<18} {:>14.3} {:>14.2} {:>18} {:>15.1}x",
            pow.name(),
            per_hash * 1e3,
            1.0 / per_hash,
            format!("{:?}", pow.dominant_resource()),
            asic_advantage(pow.dominant_resource()),
        );
    }

    println!("\nReading: raw hashes/second is *not* the figure of merit — a PoW system");
    println!("retargets difficulty to any hash rate. What matters is the ASIC advantage");
    println!("column: how much better custom silicon can do than the hardware users");
    println!("already own. HashCore's widgets keep that ratio near 1 by construction.");
}
