//! Experiment E11 (extension) — targeting alternative GPPs (Section VI-B).
//!
//! The paper notes that the HashCore framework is modular: retargeting it at
//! a different general purpose processor (e.g. the ARM cores in phones) only
//! requires a new widget generator profile. This extension experiment
//! quantifies what "targeting" buys: widgets generated against the profile
//! measured on the Ivy Bridge-like core are compared with widgets generated
//! against the profile measured on an ARM-mobile-like core, each evaluated on
//! both cores. The x86-targeted widgets should look relatively best on the
//! x86-like core and the ARM-targeted widgets relatively best on the
//! ARM-like core.
//!
//! Usage: `exp11_alternative_gpp [N]` (default 60).

use hashcore_bench::widget_count_from_args;
use hashcore_crypto::sha256;
use hashcore_gen::WidgetGenerator;
use hashcore_profile::stats::Summary;
use hashcore_profile::HashSeed;
use hashcore_sim::{CoreConfig, CoreModel, WorkloadProfiler};
use hashcore_vm::Executor;
use hashcore_workloads::{Workload, WorkloadParams};

fn mean_ipc(generator: &WidgetGenerator, core: CoreConfig, n: usize, tag: &str) -> f64 {
    let model = CoreModel::new(core);
    let ipcs: Vec<f64> = (0..n)
        .map(|i| {
            let seed = HashSeed::new(sha256(format!("{tag}-{i}").as_bytes()));
            let widget = generator.generate(&seed);
            let exec = Executor::new(widget.exec_config())
                .execute(&widget.program)
                .expect("widgets execute");
            model.simulate(&widget.program, &exec.trace).counters.ipc()
        })
        .collect();
    Summary::from_values(&ipcs).expect("non-empty").mean
}

fn main() {
    let n = widget_count_from_args(60);
    println!("== Experiment E11 (extension): targeting alternative GPPs ({n} widgets/cell) ==\n");

    let params = WorkloadParams::reference();
    let kernel = Workload::GoEngine.build(&params);
    let exec = Executor::new(hashcore_vm::ExecConfig {
        max_steps: 50_000_000,
        collect_trace: true,
        memory_seed: params.memory_seed,
    })
    .execute(&kernel)
    .expect("reference kernel executes");

    let x86 = CoreConfig::ivy_bridge_like();
    let arm = CoreConfig::arm_mobile_like();
    let x86_profile = WorkloadProfiler::new(x86).profile("reference@x86", &kernel, &exec.trace);
    let arm_profile = WorkloadProfiler::new(arm).profile("reference@arm", &kernel, &exec.trace);
    println!(
        "reference kernel IPC: {:.3} on the x86-like core, {:.3} on the ARM-mobile-like core\n",
        x86_profile.reference_ipc, arm_profile.reference_ipc
    );

    let x86_targeted = WidgetGenerator::new(x86_profile);
    let arm_targeted = WidgetGenerator::new(arm_profile);

    let x86_on_x86 = mean_ipc(&x86_targeted, x86, n, "x86-targeted");
    let x86_on_arm = mean_ipc(&x86_targeted, arm, n, "x86-targeted");
    let arm_on_x86 = mean_ipc(&arm_targeted, x86, n, "arm-targeted");
    let arm_on_arm = mean_ipc(&arm_targeted, arm, n, "arm-targeted");

    println!(
        "{:<22} {:>16} {:>16}",
        "widget target \\ core", "x86-like IPC", "ARM-mobile IPC"
    );
    println!(
        "{:<22} {:>16.3} {:>16.3}",
        "x86-targeted widgets", x86_on_x86, x86_on_arm
    );
    println!(
        "{:<22} {:>16.3} {:>16.3}",
        "ARM-targeted widgets", arm_on_x86, arm_on_arm
    );

    let x86_ratio = x86_on_x86 / x86_on_arm;
    let arm_ratio = arm_on_x86 / arm_on_arm;
    println!(
        "\nx86/ARM IPC ratio: {:.3} for x86-targeted widgets vs {:.3} for ARM-targeted widgets",
        x86_ratio, arm_ratio
    );
    println!("Interpretation: retargeting is mechanically trivial (swap the profile), which");
    println!("is Section VI-B's modularity claim. The two widget populations end up nearly");
    println!("identical here because the PerfProx-style profile captures trace-level");
    println!("behaviour (instruction mix, branch/memory/dependency statistics) that does not");
    println!("depend on the measuring core — so *effective* per-architecture targeting needs");
    println!("architecture-specific reference workloads (or core-specific profile metrics),");
    println!("matching the paper's note that a new widget generator profile must be");
    println!("developed per target GPP.");
}
