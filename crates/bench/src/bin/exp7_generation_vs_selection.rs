//! Experiment E7 — widget generation vs widget selection (Section VI-A).
//!
//! The paper weighs generating widgets at run time against selecting them
//! from a fixed pre-generated pool: selection trades storage (and exposure to
//! per-widget ASICs) for lower per-hash overhead, so widget *execution*
//! becomes a larger share of the total PoW time. This harness measures both
//! sides: the per-hash stage breakdown of generation-based HashCore, and the
//! per-hash time plus pool storage of the selection variant across pool
//! sizes.
//!
//! Usage: `exp7_generation_vs_selection [hashes]` (default 20).

use hashcore_baselines::{PowFunction, SelectionPow};
use hashcore_bench::{widget_count_from_args, Experiment};
use hashcore_vm::Executor;
use std::time::Instant;

fn main() {
    let hashes = widget_count_from_args(20);
    let experiment = Experiment::standard();
    println!("== Experiment E7: generation vs selection ({hashes} hashes per point) ==\n");

    // --- Generation-based HashCore: stage breakdown -----------------------
    let mut generate_total = 0.0f64;
    let mut execute_total = 0.0f64;
    for i in 0..hashes {
        let start = Instant::now();
        let widget = experiment.widget(i);
        generate_total += start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut config = widget.exec_config();
        config.collect_trace = false;
        Executor::new(config)
            .execute(&widget.program)
            .expect("execute");
        execute_total += start.elapsed().as_secs_f64();
    }
    let generation_ms = generate_total / hashes as f64 * 1e3;
    let execution_ms = execute_total / hashes as f64 * 1e3;
    println!("generation-based HashCore (per hash):");
    println!(
        "  widget generation: {generation_ms:8.3} ms ({:.1}% of widget stage)",
        100.0 * generation_ms / (generation_ms + execution_ms)
    );
    println!(
        "  widget execution:  {execution_ms:8.3} ms ({:.1}% of widget stage)",
        100.0 * execution_ms / (generation_ms + execution_ms)
    );
    println!("  pool storage:      0 bytes (widgets are never stored)\n");

    // --- Selection-based variant across pool sizes -------------------------
    println!(
        "{:>10} {:>16} {:>16} {:>20}",
        "pool size", "per-hash (ms)", "storage (KiB)", "execution share (%)"
    );
    for pool_bits in [4u32, 6, 8] {
        let pool_size = 1usize << pool_bits;
        let pow = SelectionPow::new(experiment.reference.clone(), pool_size, 1);
        let start = Instant::now();
        for i in 0..hashes {
            let _ = pow.pow_hash(format!("selection-{i}").as_bytes());
        }
        let per_hash_ms = start.elapsed().as_secs_f64() / hashes as f64 * 1e3;
        // Selection has no per-hash generation work, so the widget stage is
        // (almost) all execution.
        println!(
            "{:>10} {:>16.3} {:>16.1} {:>20.1}",
            pool_size,
            per_hash_ms,
            pow.pool_storage_bytes() as f64 / 1024.0,
            100.0 * execution_ms.min(per_hash_ms) / per_hash_ms.max(1e-9),
        );
    }

    println!("\nPaper discussion (VI-A): selection avoids the generation cost per hash but");
    println!("requires storing a large widget pool and risks per-widget ASICs; generation");
    println!("keeps storage at zero at the price of the generator running on every hash.");
}
