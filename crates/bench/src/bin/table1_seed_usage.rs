//! Experiment E1 — Table I: hash seed usage.
//!
//! Reprints the Table-I field assignment implemented by
//! `hashcore-profile::SeedField` and demonstrates it on a concrete seed,
//! showing which profile quantity each 32-bit word perturbs.

use hashcore_crypto::sha256;
use hashcore_gen::GeneratorConfig;
use hashcore_profile::{apply_seed, HashSeed, PerformanceProfile, SeedField};

fn main() {
    println!("== Table I: hash seed usage ==\n");
    println!(
        "{:<12} {:<26} Consumer in this reproduction",
        "Hash bits", "Usage (paper)"
    );
    for field in SeedField::ALL {
        let (lo, hi) = field.bit_range();
        let consumer = match field {
            SeedField::IntAlu
            | SeedField::IntMul
            | SeedField::FpAlu
            | SeedField::Loads
            | SeedField::Stores => "positive noise on the class's dynamic count",
            SeedField::BranchBehavior => "count noise + branch transition-rate shift",
            SeedField::BasicBlockVector => "seeds the code-structure PRNG",
            SeedField::Memory => "seeds the memory-pattern PRNG",
        };
        println!(
            "{:<12} {:<26} {}",
            format!("{lo}-{hi}"),
            field.name(),
            consumer
        );
    }

    let seed = HashSeed::new(sha256(b"table-1-demonstration-block-header"));
    println!("\nExample seed s = G(\"table-1-demonstration-block-header\") = {seed}");
    println!("\n{:<26} {:>12}", "Field", "32-bit value");
    for field in SeedField::ALL {
        println!("{:<26} {:>12}", field.name(), seed.field(field));
    }

    let base = PerformanceProfile::leela_like();
    let seeded = apply_seed(&base, &seed, &GeneratorConfig::default().noise);
    println!("\nEffect on the Leela-like profile (positive-only count noise):");
    println!(
        "  target dynamic instructions: {} -> {}",
        base.target_counts().values().sum::<u64>(),
        seeded.profile.target_dynamic_instructions
    );
    println!(
        "  branch transition rate:      {:.4} -> {:.4}",
        base.branch.transition_rate, seeded.profile.branch.transition_rate
    );
    println!("  BBV PRNG seed:               {}", seeded.bbv_seed);
    println!("  memory PRNG seed:            {}", seeded.memory_seed);
}
