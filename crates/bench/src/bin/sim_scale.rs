//! Internet-scale simulation harness: the sharded parallel scheduler and
//! the peer-topology overlay, swept across node counts, plus the eclipse
//! attack/defence pair.
//!
//! Three scale scenarios race {8, 64, 256} nodes over bounded peer tables
//! with scored gossip. Each scenario runs **three times**: twice on one
//! thread with the same seed (proving the run replays byte-identically),
//! and once on N worker threads (proving parallelism changes wall-clock
//! only — the N-thread extended fingerprint must equal the 1-thread one).
//! Scheduler throughput is recorded as events/sec for both thread counts.
//!
//! Two eclipse scenarios then attack a 12-node network with six sybils
//! dialling one victim every mining slice: against an *undefended*
//! overlay (no scoring, no anchors, no rotation) the victim's table ends
//! up all sybils and it mines on a stale tip; against the *defended*
//! overlay (usefulness scoring + decay, pinned anchors, anchor rotation)
//! the honest links survive and the network converges, victim included.
//!
//! Writes `BENCH_scale.json`; CI greps `"runs_identical": true`,
//! `"threads_identical": true`, `"eclipse_undefended_isolated": true` and
//! `"eclipse_defended_converged": true`.
//!
//! Usage:
//!
//! ```text
//! sim_scale [duration-seconds] [threads]
//! ```
//!
//! `threads` defaults to every logical core (0 = all cores).

use hashcore_baselines::Sha256dPow;
use hashcore_bench::simbench::{host_json, positional_arg, threads_arg, write_json};
use hashcore_net::{Eclipse, Honest, SimConfig, SimReport, Simulation, TopologyConfig};
use std::fmt::Write as _;

/// Sybil node ids in the eclipse scenarios (the victim is node 0).
const SYBILS: std::ops::Range<usize> = 6..12;

fn scale_config(duration_s: u64, nodes: usize, difficulty_bits: u32, threads: usize) -> SimConfig {
    SimConfig {
        nodes,
        seed: 0x5ca1e,
        difficulty_bits,
        attempts_per_slice: 32,
        slice_ms: 100,
        // Fan-out covering the whole 8-slot table: relay floods the
        // overlay graph, so a block reaches all N nodes within the graph
        // diameter and quiet periods between blocks actually converge.
        // Sampled gossip (fan-out below the table size) leaves a straggler
        // on an equal-height fork every few blocks at 64+ nodes.
        fan_out: 8,
        duration_ms: duration_s * 1_000,
        sync_threads: threads,
        // Requests that died on an evicted link must be retryable, or a
        // single unlucky eviction strands a node mid-sync.
        request_timeout_ms: Some(1_500),
        // Rotate anchors at a quarter of the default rate: at hundreds of
        // nodes the default churn rewires the overlay faster than blocks
        // propagate across it.
        topology: Some(TopologyConfig {
            rotation_interval_ms: Some(8_000),
            ..TopologyConfig::defended()
        }),
        threads: 1,
        ..SimConfig::default()
    }
}

fn eclipse_config(duration_s: u64, topology: TopologyConfig, threads: usize) -> SimConfig {
    SimConfig {
        nodes: 12,
        seed: 2024,
        // Slow enough (~1 block/s across 6 honest miners) that the honest
        // side actually converges between blocks; the unit tests use a
        // hotter race, the bench wants a stable convergence signal.
        difficulty_bits: 10,
        attempts_per_slice: 32,
        slice_ms: 100,
        // Fan-out covering the whole table makes honest relay reliable:
        // any end-of-run disagreement is the eclipse doing its work.
        fan_out: 4,
        duration_ms: duration_s * 1_000,
        sync_threads: threads,
        request_timeout_ms: Some(1_500),
        topology: Some(topology),
        threads: 1,
        ..SimConfig::default()
    }
}

/// One simulation run; eclipse scenarios get six sybils, scale scenarios
/// are all-honest. Returns the report plus the victim's final peer table.
fn run_once(config: SimConfig, with_sybils: bool) -> (SimReport, Vec<usize>, bool) {
    let mut sim = Simulation::with_strategies(
        config,
        |_| Sha256dPow,
        |id| {
            if with_sybils && SYBILS.contains(&id) {
                Box::new(Eclipse { victim: 0 })
            } else {
                Box::new(Honest)
            }
        },
    );
    let report = sim.run();
    let victim_table = sim.peer_table(0);
    // Isolation: the victim's table holds only sybils, the other honest
    // nodes agree on one tip, and the victim sits on a different one.
    let honest_tip = sim.nodes()[1].tip();
    let others_agree = (1..6).all(|id| sim.nodes()[id].tip() == honest_tip);
    let isolated = with_sybils
        && !victim_table.is_empty()
        && victim_table.iter().all(|peer| SYBILS.contains(peer))
        && others_agree
        && sim.nodes()[0].tip() != honest_tip;
    (report, victim_table, isolated)
}

/// Everything one scenario contributes to the report and the JSON.
struct ScenarioResult {
    name: &'static str,
    report: SimReport,
    events_per_sec_1t: f64,
    events_per_sec_nt: f64,
    runs_identical: bool,
    threads_identical: bool,
    eclipse: bool,
    victim_isolated: bool,
}

/// Runs one scenario three times: 1 thread twice (replay gate), N threads
/// once (byte-identity gate).
fn run_scenario(
    name: &'static str,
    config: SimConfig,
    threads: usize,
    with_sybils: bool,
) -> ScenarioResult {
    let (first, table_a, isolated_a) = run_once(config.clone(), with_sybils);
    let (second, table_b, isolated_b) = run_once(config.clone(), with_sybils);
    let runs_identical = first.fingerprint_extended() == second.fingerprint_extended()
        && table_a == table_b
        && isolated_a == isolated_b;
    let parallel_config = SimConfig { threads, ..config };
    let (parallel, table_n, isolated_n) = run_once(parallel_config, with_sybils);
    let threads_identical = first.fingerprint_extended() == parallel.fingerprint_extended()
        && table_a == table_n
        && isolated_a == isolated_n;
    println!(
        "  {name:20} converged={} height={} events={} \
         {:>10.0} ev/s @1t {:>10.0} ev/s @{threads}t replay={runs_identical} \
         threads_identical={threads_identical}",
        first.converged,
        first.tip_height,
        first.events_processed,
        first.events_per_sec(),
        parallel.events_per_sec(),
    );
    ScenarioResult {
        name,
        events_per_sec_1t: first.events_per_sec(),
        events_per_sec_nt: parallel.events_per_sec(),
        runs_identical,
        threads_identical,
        eclipse: with_sybils,
        victim_isolated: isolated_a,
        report: first,
    }
}

fn main() {
    let duration_s = positional_arg(1, 30).max(10);
    let threads = threads_arg(2).max(2);

    println!(
        "scale simulation: {{8, 64, 256}} nodes x {{1, {threads}}} threads, \
         {duration_s} s horizon, defended topology + eclipse pair"
    );

    let mut results = Vec::new();
    for (nodes, bits) in [(8usize, 11u32), (64, 15), (256, 17)] {
        let name = match nodes {
            8 => "scale-8",
            64 => "scale-64",
            _ => "scale-256",
        };
        let result = run_scenario(
            name,
            scale_config(duration_s, nodes, bits, threads),
            threads,
            false,
        );
        assert!(
            result.report.converged,
            "{nodes} nodes must converge over the topology overlay: {}",
            result.report.fingerprint_extended()
        );
        results.push(result);
    }
    let undefended = run_scenario(
        "eclipse-undefended",
        eclipse_config(
            duration_s.min(25),
            TopologyConfig {
                max_peers: 4,
                extra_links: 1,
                ..TopologyConfig::undefended()
            },
            threads,
        ),
        threads,
        true,
    );
    let defended = run_scenario(
        "eclipse-defended",
        eclipse_config(
            duration_s.min(25),
            TopologyConfig {
                max_peers: 4,
                anchors: 1,
                extra_links: 1,
                rotation_interval_ms: Some(2_000),
                credit: 16,
            },
            threads,
        ),
        threads,
        true,
    );

    // The acceptance gates.
    assert!(
        undefended.victim_isolated,
        "an undefended victim must end eclipsed: {}",
        undefended.report.fingerprint_extended()
    );
    assert!(
        !undefended.report.converged,
        "an eclipsed victim cannot be part of a converged network"
    );
    assert!(
        defended.report.converged,
        "scoring + anchors + rotation must restore convergence: {}",
        defended.report.fingerprint_extended()
    );
    assert!(
        defended.report.connect_attempts > 0 && undefended.report.connect_attempts > 0,
        "sybils must actually attack in both runs"
    );
    results.push(undefended);
    results.push(defended);
    let runs_identical = results.iter().all(|r| r.runs_identical);
    let threads_identical = results.iter().all(|r| r.threads_identical);
    assert!(runs_identical, "every scenario must replay from its seed");
    assert!(
        threads_identical,
        "{threads}-thread runs must be byte-identical to 1-thread runs"
    );

    let json = render_json(&results, duration_s, threads);
    write_json("BENCH_scale.json", &json);
}

/// Renders the scenario table as a small, dependency-free JSON document.
fn render_json(results: &[ScenarioResult], duration_s: u64, threads: usize) -> String {
    let runs_identical = results.iter().all(|r| r.runs_identical);
    let threads_identical = results.iter().all(|r| r.threads_identical);
    let undefended_isolated = results
        .iter()
        .any(|r| r.name == "eclipse-undefended" && r.victim_isolated);
    let defended_converged = results
        .iter()
        .any(|r| r.name == "eclipse-defended" && r.report.converged);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"sim_scale\",");
    let _ = writeln!(json, "{}", host_json(threads));
    let _ = writeln!(json, "  \"duration_s\": {duration_s},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (index, result) in results.iter().enumerate() {
        let report = &result.report;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", result.name);
        let _ = writeln!(json, "      \"nodes\": {},", report.nodes);
        let _ = writeln!(json, "      \"converged\": {},", report.converged);
        let _ = writeln!(
            json,
            "      \"convergence_ms\": {},",
            report.convergence_ms.map_or(-1i64, |t| t as i64)
        );
        let _ = writeln!(json, "      \"tip_height\": {},", report.tip_height);
        let _ = writeln!(json, "      \"blocks_mined\": {},", report.blocks_mined);
        let _ = writeln!(
            json,
            "      \"events_processed\": {},",
            report.events_processed
        );
        let _ = writeln!(
            json,
            "      \"events_per_sec_1t\": {:.0},",
            result.events_per_sec_1t
        );
        let _ = writeln!(
            json,
            "      \"events_per_sec_nt\": {:.0},",
            result.events_per_sec_nt
        );
        let _ = writeln!(
            json,
            "      \"parallel_speedup\": {:.3},",
            if result.events_per_sec_1t > 0.0 {
                result.events_per_sec_nt / result.events_per_sec_1t
            } else {
                0.0
            }
        );
        if result.eclipse {
            let _ = writeln!(
                json,
                "      \"victim_isolated\": {},",
                result.victim_isolated
            );
            let _ = writeln!(
                json,
                "      \"connect_attempts\": {},",
                report.connect_attempts
            );
            let _ = writeln!(json, "      \"peer_evictions\": {},", report.peer_evictions);
            let _ = writeln!(
                json,
                "      \"anchor_rotations\": {},",
                report.anchor_rotations
            );
        }
        let _ = writeln!(
            json,
            "      \"scenario_runs_identical\": {},",
            result.runs_identical
        );
        let _ = writeln!(
            json,
            "      \"scenario_threads_identical\": {}",
            result.threads_identical
        );
        let comma = if index + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"eclipse_undefended_isolated\": {undefended_isolated},"
    );
    let _ = writeln!(
        json,
        "  \"eclipse_defended_converged\": {defended_converged},"
    );
    let _ = writeln!(json, "  \"threads_identical\": {threads_identical},");
    let _ = writeln!(json, "  \"runs_identical\": {runs_identical}");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_well_formed() {
        let result = run_scenario("scale-8", scale_config(10, 8, 9, 2), 2, false);
        let json = render_json(&[result], 10, 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"sim_scale\""));
        assert!(json.contains("\"host\""));
        assert!(json.contains("\"events_per_sec_1t\""));
        assert!(json.ends_with("}\n"));
    }
}
