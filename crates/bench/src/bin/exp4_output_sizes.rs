//! Experiment E4 — widget output sizes and snapshot cadence.
//!
//! Section V reports that the 1000 evaluation widgets "produced outputs
//! ranging in size from 20 kilobytes to 38 kilobytes", the output being
//! register snapshots captured every few thousand instructions. This harness
//! reports the same quantities for the reproduction's widgets.
//!
//! Usage: `exp4_output_sizes [N]` (default 300).

use hashcore_bench::{widget_count_from_args, Experiment};
use hashcore_profile::stats::{Histogram, Summary};

fn main() {
    let n = widget_count_from_args(300);
    let experiment = Experiment::standard();
    println!("== Experiment E4: widget output sizes ({n} widgets) ==\n");

    let measurements = experiment.measure_widgets(n);
    let sizes_kb: Vec<f64> = measurements
        .iter()
        .map(|m| m.output_bytes as f64 / 1024.0)
        .collect();
    let cadence: Vec<f64> = measurements
        .iter()
        .map(|m| m.dynamic_instructions as f64 / m.snapshots.max(1) as f64)
        .collect();
    let code_kb: Vec<f64> = measurements
        .iter()
        .map(|m| m.code_bytes as f64 / 1024.0)
        .collect();
    let dynamic: Vec<f64> = measurements
        .iter()
        .map(|m| m.dynamic_instructions as f64)
        .collect();

    let size_summary = Summary::from_values(&sizes_kb).expect("non-empty");
    println!("widget output size (KiB):          {size_summary}");
    println!(
        "snapshot cadence (instr/snapshot): {}",
        Summary::from_values(&cadence).expect("non-empty")
    );
    println!(
        "dynamic instructions per widget:   {}",
        Summary::from_values(&dynamic).expect("non-empty")
    );
    println!(
        "encoded widget code size (KiB):    {}\n",
        Summary::from_values(&code_kb).expect("non-empty")
    );

    let mut histogram = Histogram::new(size_summary.min - 1.0, size_summary.max + 1.0, 16);
    histogram.add_all(&sizes_kb);
    print!("{}", histogram.render("output size (KiB)", None));

    println!("\nPaper: outputs ranged from 20 kB to 38 kB, snapshots every few thousand");
    println!(
        "instructions. Measured here: {:.1}-{:.1} KiB, snapshots every ~{:.0} instructions.",
        size_summary.min,
        size_summary.max,
        Summary::from_values(&cadence).expect("non-empty").mean
    );
}
