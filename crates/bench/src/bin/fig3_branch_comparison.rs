//! Experiment E3 — Figure 3: branch-prediction widget comparison.
//!
//! Same widget population as Figure 2, but plotting the branch-prediction
//! hit rate (and misprediction MPKI) of each widget against the reference
//! workload's value on the same simulated core and predictor.
//!
//! Usage: `fig3_branch_comparison [N]` (default 300).

use hashcore_bench::{widget_count_from_args, Experiment};
use hashcore_profile::stats::{Histogram, Summary};

fn main() {
    let n = widget_count_from_args(300);
    let experiment = Experiment::standard();
    println!("== Figure 3: branch prediction widget comparison ({n} widgets) ==\n");
    println!(
        "reference workload: {} (branch hit rate {:.4})",
        experiment.reference.name, experiment.reference.reference_branch_hit_rate
    );

    let measurements = experiment.measure_widgets(n);
    let hit_rates: Vec<f64> = measurements.iter().map(|m| m.branch_hit_rate).collect();
    let mpki: Vec<f64> = measurements.iter().map(|m| m.branch_mpki).collect();
    let hit_summary = Summary::from_values(&hit_rates).expect("non-empty");
    let mpki_summary = Summary::from_values(&mpki).expect("non-empty");

    let lo = (hit_summary.min - 0.02).max(0.0);
    let hi = (hit_summary
        .max
        .max(experiment.reference.reference_branch_hit_rate)
        + 0.02)
        .min(1.0);
    let mut histogram = Histogram::new(lo, hi, 20);
    histogram.add_all(&hit_rates);

    println!("\nwidget branch hit rate: {hit_summary}");
    println!("widget branch MPKI:     {mpki_summary}");
    println!(
        "reference hit rate:     {:.4}\n",
        experiment.reference.reference_branch_hit_rate
    );
    print!(
        "{}",
        histogram.render(
            "branch prediction hit-rate distribution",
            Some(experiment.reference.reference_branch_hit_rate),
        )
    );

    println!("\nPaper observation: branch behaviour tracks the reference workload, with");
    println!("the seed noise adding proportionally fewer branches than other classes.");
    println!(
        "Measured here: widget mean hit rate {:.4} vs reference {:.4}",
        hit_summary.mean, experiment.reference.reference_branch_hit_rate
    );
}
