//! Experiment E2 — Figure 2: IPC widget comparison.
//!
//! Generates N widgets (paper: 1000) from the Leela-like reference profile,
//! executes each one, measures its IPC on the simulated Ivy Bridge-class
//! core, and prints the IPC histogram with the reference workload's own IPC
//! marked — the textual equivalent of Figure 2.
//!
//! Usage: `fig2_ipc_comparison [N]` (default 300).

use hashcore_bench::{widget_count_from_args, Experiment};
use hashcore_profile::stats::{Histogram, Summary};

fn main() {
    let n = widget_count_from_args(300);
    let experiment = Experiment::standard();
    println!("== Figure 2: IPC widget comparison ({n} widgets) ==\n");
    println!(
        "reference workload: {} (IPC {:.3} on the modelled core)",
        experiment.reference.name, experiment.reference.reference_ipc
    );

    let measurements = experiment.measure_widgets(n);
    let ipcs: Vec<f64> = measurements.iter().map(|m| m.ipc).collect();
    let summary = Summary::from_values(&ipcs).expect("non-empty sample");

    let lo = (summary.min - 0.05).max(0.0);
    let hi = (summary.max.max(experiment.reference.reference_ipc) + 0.05).max(lo + 0.1);
    let mut histogram = Histogram::new(lo, hi, 20);
    histogram.add_all(&ipcs);

    println!("\nwidget IPC: {summary}");
    println!(
        "reference IPC: {:.3}   (widget mean / reference = {:.3})\n",
        experiment.reference.reference_ipc,
        summary.mean / experiment.reference.reference_ipc
    );
    print!(
        "{}",
        histogram.render("IPC distribution", Some(experiment.reference.reference_ipc))
    );

    println!("\nPaper observation: widgets follow a roughly Gaussian IPC distribution");
    println!("with a mean slightly below the original workload's IPC.");
    println!(
        "Measured here: mean {:.3} vs reference {:.3} ({})",
        summary.mean,
        experiment.reference.reference_ipc,
        if summary.mean <= experiment.reference.reference_ipc {
            "slightly below, matching the paper"
        } else {
            "above the reference"
        }
    );
}
