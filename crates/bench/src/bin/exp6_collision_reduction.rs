//! Experiment E6 — Theorem 1 exercised end to end.
//!
//! The paper proves collision resistance of `H` by reduction to the hash
//! gate `G`. This harness instantiates the generic construction with
//! deliberately weakened gates (truncated SHA-256), lets a birthday-search
//! adversary find real `H`-collisions, runs the reduction `B` on every claim
//! and verifies that the produced `G`-collisions are genuine — then confirms
//! that the same adversary budget finds nothing against the full 256-bit
//! gate.

use hashcore::security::{
    birthday_attack, reduce_collision, verify_gate_collision, GenericHashCore, Sha256Gate,
    TruncatedGate,
};

fn widget_stub(seed: &[u8]) -> Vec<u8> {
    // Any polynomial-time W works for the theorem; use a cheap stand-in so
    // the adversary can afford thousands of queries.
    seed.iter().rev().copied().cycle().take(96).collect()
}

fn main() {
    println!("== Experiment E6: collision-resistance reduction (Theorem 1) ==\n");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12}",
        "gate", "queries", "H-collisions", "reduced to G", "verified"
    );

    for bytes in [1usize, 2, 3] {
        let gate = TruncatedGate::new(bytes);
        let construction = GenericHashCore::new(gate, widget_stub);
        let trials = 20u32;
        let queries_per_trial = 40_000u64 / (1 << (8 * (3 - bytes).min(2))) as u64 + 2_000;
        let mut found = 0u32;
        let mut reduced = 0u32;
        let mut verified = 0u32;
        for trial in 0..trials {
            if let Some(claim) = birthday_attack(
                &construction,
                format!("trial-{trial}").as_bytes(),
                queries_per_trial,
            ) {
                found += 1;
                if let Some(collision) = reduce_collision(&construction, &claim) {
                    reduced += 1;
                    if verify_gate_collision(&gate, &collision) {
                        verified += 1;
                    }
                }
            }
        }
        println!(
            "{:<18} {:>10} {:>12} {:>12} {:>12}",
            format!("sha256/{}-byte", bytes),
            queries_per_trial * trials as u64,
            found,
            reduced,
            verified
        );
        assert_eq!(found, reduced, "every H-collision must reduce");
        assert_eq!(reduced, verified, "every reduced collision must verify");
    }

    let full = GenericHashCore::new(Sha256Gate, widget_stub);
    let attempts = 20_000u64;
    let survived = birthday_attack(&full, b"full-gate", attempts).is_none();
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12}",
        "sha256/32-byte",
        attempts,
        if survived { 0 } else { 1 },
        "-",
        "-"
    );

    println!("\nEvery collision an adversary finds on H maps, via reduction B, to a");
    println!("verified collision on the gate G — so H is a CRHF whenever G is (Theorem 1).");
}
