//! Adversarial network harness: a scenario matrix of attack strategies ×
//! adversary hash-power fractions, each run twice for determinism, with
//! the aggregate results written to `BENCH_adversary.json`.
//!
//! Scenarios:
//!
//! * **selfish-α** — node 0 runs selfish mining with hash-power fraction α
//!   (via a per-node attempts override). The harness measures the
//!   adversary's *revenue share* (its fraction of the final honest best
//!   chain) against its *fair share* (α): above the classic ~1/3
//!   threshold, withholding must pay more than honest mining.
//! * **stall-\*** — node 0 stalls `GetSegment` (never answers / ships a
//!   one-block prefix / answers 30 s late) across a partition heal; honest
//!   nodes must time out, re-request elsewhere and still converge.
//! * **spam** — node 0 gossips unsolicited corrupted segments every slice;
//!   hardened nodes drop them without running the verifier.
//! * **poison** — node 0 mines valid-PoW bait orphans and answers the
//!   resulting sync requests with corrupted segments; the batched verifier
//!   rejects every one and the poisoner is banned.
//!
//! Acceptance gates asserted here (and grepped by CI from the JSON):
//! zero spam blocks in any honest fork tree, byte-identical
//! `fingerprint_extended` across the two runs of every scenario, and
//! selfish revenue ≥ fair share for α > 1/3.
//!
//! Usage:
//!
//! ```text
//! sim_adversary [duration-seconds] [threads]
//! ```
//!
//! `threads` drives both the scheduler workers and the segment verifier
//! (0 = all logical cores); it never changes a deterministic metric.

use hashcore_baselines::Sha256dPow;
use hashcore_bench::simbench::{host_json, positional_arg, run_twice, threads_arg, write_json};
use hashcore_net::{
    Honest, Node, Partition, PoisonedSync, SegmentSpam, SegmentStalling, SelfishMining, SimConfig,
    SimReport, Simulation, StallMode, Strategy,
};
use std::fmt::Write as _;

/// Honest nodes in every scenario (the adversary is node 0, extra).
const HONEST_NODES: usize = 4;
/// Base nonce attempts per slice for every honest node.
const BASE_ATTEMPTS: u64 = 32;

/// The adversary's per-slice attempts for hash-power fraction `alpha`.
fn attempts_for_alpha(alpha: f64) -> u64 {
    (alpha / (1.0 - alpha) * (HONEST_NODES as f64) * BASE_ATTEMPTS as f64).round() as u64
}

/// One scenario of the matrix.
struct Scenario {
    name: &'static str,
    /// Adversary hash-power fraction (0 = mine at the honest base rate).
    alpha: f64,
    /// Whether the adversary extends the chain at all — `false` for pure
    /// spammers and bait miners, whose fair revenue share is therefore 0.
    adversary_mines: bool,
    make_strategy: fn() -> Box<dyn Strategy>,
    /// Whether the scenario enables request timeouts and pruning (the
    /// stalling and spam scenarios exercise the hardened configuration).
    hardened: bool,
    /// Partition the middle third of the run (forces catch-up sync).
    partitioned: bool,
}

/// What one scenario produced (plus the raw report).
struct Outcome {
    report: SimReport,
    runs_identical: bool,
    /// Adversary blocks in the final honest best chain / chain length.
    revenue_share: f64,
    /// Blocks the revenue was measured over (the full chain for unpruned
    /// scenarios, the retained window for hardened ones).
    revenue_window: usize,
    fair_share: f64,
}

fn scenario_config(scenario: &Scenario, duration_ms: u64, threads: usize) -> SimConfig {
    let adversary_attempts = if scenario.alpha > 0.0 {
        attempts_for_alpha(scenario.alpha)
    } else {
        BASE_ATTEMPTS
    };
    SimConfig {
        nodes: HONEST_NODES + 1,
        seed: 0xbad5_eed5,
        difficulty_bits: 8,
        attempts_per_slice: BASE_ATTEMPTS,
        node_attempts: vec![(0, adversary_attempts)],
        slice_ms: 100,
        fan_out: 2,
        partitions: if scenario.partitioned {
            vec![Partition {
                start_ms: duration_ms / 3,
                end_ms: 2 * duration_ms / 3,
                split: 2,
            }]
        } else {
            Vec::new()
        },
        duration_ms,
        threads,
        sync_threads: threads,
        request_timeout_ms: if scenario.hardened { Some(1_500) } else { None },
        ban_threshold: 3,
        prune_depth: if scenario.hardened { Some(64) } else { None },
        ..SimConfig::default()
    }
}

/// The miner id a simulation block is tagged with (`node-<id> …`).
fn miner_of(block: &hashcore_chain::Block) -> Option<usize> {
    let tag = block.transactions.first()?;
    let text = std::str::from_utf8(tag).ok()?;
    let rest = text.strip_prefix("node-")?;
    rest.split_whitespace().next()?.parse().ok()
}

fn run_scenario(scenario: &Scenario, duration_ms: u64, threads: usize) -> Outcome {
    let run = || {
        let config = scenario_config(scenario, duration_ms, threads);
        let mut sim = Simulation::with_strategies(
            config,
            |_| Sha256dPow,
            |id| {
                if id == 0 {
                    (scenario.make_strategy)()
                } else {
                    Box::new(Honest)
                }
            },
        );
        let report = sim.run();
        // Revenue accounting over an honest node's final best chain.
        let honest: &Node<Sha256dPow> = &sim.nodes()[1];
        let chain = honest.tree().best_chain();
        let adversary_blocks = chain.iter().filter(|b| miner_of(b) == Some(0)).count();
        let revenue_share = if chain.is_empty() {
            0.0
        } else {
            adversary_blocks as f64 / chain.len() as f64
        };
        // Pruned trees only retain a window of the chain, which would turn
        // the revenue figure into a windowed sample: the selfish payoff
        // scenarios therefore must run unpruned (full-chain accounting),
        // and the window length is reported alongside the share.
        if scenario.alpha > 0.0 {
            assert!(
                !scenario.hardened,
                "selfish payoff scenarios must measure the full chain"
            );
        }
        (report, revenue_share, chain.len())
    };
    // The revenue share rides along in the fingerprint bit-exactly: a
    // deterministic replay must reproduce the measurement, not just the
    // race.
    let ((report, revenue_share, revenue_window), runs_identical) =
        run_twice(run, |(report, revenue, _)| {
            format!(
                "{} revenue={:016x}",
                report.fingerprint_extended(),
                revenue.to_bits()
            )
        });
    // Fair share is attempts-derived for every scenario: non-mining
    // adversaries (spam/poison) configure BASE_ATTEMPTS but contribute no
    // blocks, while the stalling adversary mines honestly at BASE_ATTEMPTS
    // and so earns a real 1/(HONEST_NODES+1) fair share.
    let adversary_attempts = scenario_config(scenario, 1_000, threads).attempts_for(0);
    let total_attempts = (HONEST_NODES as u64 * BASE_ATTEMPTS + adversary_attempts) as f64;
    let fair_share = if scenario.adversary_mines {
        adversary_attempts as f64 / total_attempts
    } else {
        0.0
    };
    Outcome {
        report,
        runs_identical,
        revenue_share,
        revenue_window,
        fair_share,
    }
}

fn main() {
    let duration_s = positional_arg(1, 60).max(12);
    let duration_ms = duration_s * 1_000;
    let threads = threads_arg(2);

    let scenarios = [
        Scenario {
            name: "selfish-0.20",
            alpha: 0.20,
            adversary_mines: true,
            make_strategy: || Box::new(SelfishMining),
            hardened: false,
            partitioned: false,
        },
        Scenario {
            name: "selfish-0.35",
            alpha: 0.35,
            adversary_mines: true,
            make_strategy: || Box::new(SelfishMining),
            hardened: false,
            partitioned: false,
        },
        Scenario {
            name: "selfish-0.45",
            alpha: 0.45,
            adversary_mines: true,
            make_strategy: || Box::new(SelfishMining),
            hardened: false,
            partitioned: false,
        },
        Scenario {
            name: "stall-ignore",
            alpha: 0.0,
            adversary_mines: true,
            make_strategy: || {
                Box::new(SegmentStalling {
                    mode: StallMode::Ignore,
                })
            },
            hardened: true,
            partitioned: true,
        },
        Scenario {
            name: "stall-prefix",
            alpha: 0.0,
            adversary_mines: true,
            make_strategy: || {
                Box::new(SegmentStalling {
                    mode: StallMode::Prefix(1),
                })
            },
            hardened: true,
            partitioned: true,
        },
        Scenario {
            name: "stall-delay",
            alpha: 0.0,
            adversary_mines: true,
            make_strategy: || {
                Box::new(SegmentStalling {
                    mode: StallMode::Delay(30_000),
                })
            },
            hardened: true,
            partitioned: true,
        },
        Scenario {
            name: "spam",
            alpha: 0.0,
            adversary_mines: false,
            make_strategy: || Box::new(SegmentSpam::default()),
            hardened: true,
            partitioned: false,
        },
        Scenario {
            name: "poison",
            alpha: 0.0,
            adversary_mines: false,
            make_strategy: || Box::new(PoisonedSync::default()),
            hardened: true,
            partitioned: false,
        },
    ];

    println!(
        "adversary matrix: {} scenarios × 2 runs, {duration_s} s horizon, \
         {HONEST_NODES} honest nodes + 1 adversary",
        scenarios.len()
    );

    let outcomes: Vec<(&Scenario, Outcome)> = scenarios
        .iter()
        .map(|scenario| {
            let outcome = run_scenario(scenario, duration_ms, threads);
            let r = &outcome.report;
            println!(
                "  {:<13} converged={} height={} revenue={:.3} fair={:.3} \
                 withheld={} released={} spam_sent={} spam_accepted={} \
                 rejected(unsol/invalid/policy)={}/{}/{} stalls={} retried={} \
                 banned={} pruned={} margin={} deterministic={}",
                scenario.name,
                r.converged,
                r.tip_height,
                outcome.revenue_share,
                outcome.fair_share,
                r.blocks_withheld,
                r.blocks_released,
                r.spam_segments_sent,
                r.spam_accepted,
                r.rejections.unsolicited_segment,
                r.rejections.invalid_segment,
                r.rejections.target_policy,
                r.stalls_detected,
                r.requests_retried,
                r.peers_banned,
                r.blocks_pruned,
                r.honest_tip_safety_margin,
                outcome.runs_identical,
            );
            (scenario, outcome)
        })
        .collect();

    // Acceptance gates.
    let runs_identical = outcomes.iter().all(|(_, o)| o.runs_identical);
    let spam_accepted: u64 = outcomes.iter().map(|(_, o)| o.report.spam_accepted).sum();
    let selfish_beats_fair = outcomes
        .iter()
        .filter(|(s, _)| s.alpha > 1.0 / 3.0)
        .all(|(_, o)| o.revenue_share >= o.fair_share);
    for (scenario, outcome) in &outcomes {
        assert!(
            outcome.report.converged,
            "honest nodes must converge under {}: {}",
            scenario.name,
            outcome.report.fingerprint_extended()
        );
    }
    assert!(runs_identical, "every scenario must replay identically");
    assert_eq!(spam_accepted, 0, "no spam block may enter an honest tree");
    assert!(
        selfish_beats_fair,
        "selfish mining above the 1/3 threshold must out-earn its fair share"
    );

    let json = render_json(
        &outcomes,
        duration_ms,
        runs_identical,
        spam_accepted,
        threads,
    );
    write_json("BENCH_adversary.json", &json);
}

/// Renders the matrix as a small, dependency-free JSON document.
fn render_json(
    outcomes: &[(&Scenario, Outcome)],
    duration_ms: u64,
    runs_identical: bool,
    spam_accepted: u64,
    threads: usize,
) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"network_adversary\",");
    let _ = writeln!(json, "{}", host_json(threads));
    let _ = writeln!(json, "  \"duration_ms\": {duration_ms},");
    let _ = writeln!(json, "  \"honest_nodes\": {HONEST_NODES},");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, (scenario, outcome)) in outcomes.iter().enumerate() {
        let r = &outcome.report;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", scenario.name);
        let _ = writeln!(json, "      \"alpha\": {:.2},", scenario.alpha);
        let _ = writeln!(json, "      \"fair_share\": {:.4},", outcome.fair_share);
        let _ = writeln!(
            json,
            "      \"revenue_share\": {:.4},",
            outcome.revenue_share
        );
        let _ = writeln!(
            json,
            "      \"revenue_window_blocks\": {},",
            outcome.revenue_window
        );
        let _ = writeln!(json, "      \"converged\": {},", r.converged);
        let _ = writeln!(json, "      \"tip_height\": {},", r.tip_height);
        let _ = writeln!(json, "      \"blocks_mined\": {},", r.blocks_mined);
        let _ = writeln!(json, "      \"blocks_withheld\": {},", r.blocks_withheld);
        let _ = writeln!(json, "      \"blocks_released\": {},", r.blocks_released);
        let _ = writeln!(
            json,
            "      \"withheld_abandoned\": {},",
            r.withheld_abandoned
        );
        let _ = writeln!(json, "      \"spam_sent\": {},", r.spam_segments_sent);
        let _ = writeln!(json, "      \"spam_rejected\": {},", r.rejections.total());
        let _ = writeln!(
            json,
            "      \"scenario_spam_accepted\": {},",
            r.spam_accepted
        );
        let _ = writeln!(json, "      \"fake_orphans\": {},", r.fake_orphans);
        let _ = writeln!(json, "      \"stalls_detected\": {},", r.stalls_detected);
        let _ = writeln!(json, "      \"requests_retried\": {},", r.requests_retried);
        let _ = writeln!(json, "      \"peers_banned\": {},", r.peers_banned);
        let _ = writeln!(json, "      \"blocks_pruned\": {},", r.blocks_pruned);
        let _ = writeln!(
            json,
            "      \"honest_tip_safety_margin\": {},",
            r.honest_tip_safety_margin
        );
        let _ = writeln!(json, "      \"runs_identical\": {}", outcome.runs_identical);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"spam_accepted\": {spam_accepted},");
    let _ = writeln!(json, "  \"runs_identical\": {runs_identical}");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_to_attempts_round_trips_the_fraction() {
        for alpha in [0.2f64, 0.35, 0.45] {
            let attempts = attempts_for_alpha(alpha) as f64;
            let total = attempts + (HONEST_NODES as u64 * BASE_ATTEMPTS) as f64;
            assert!(
                (attempts / total - alpha).abs() < 0.01,
                "alpha {alpha} maps to fraction {}",
                attempts / total
            );
        }
    }

    #[test]
    fn miner_tags_parse() {
        use hashcore_chain::{Block, BlockHeader};
        let block = Block {
            header: BlockHeader {
                version: 1,
                prev_hash: [0u8; 32],
                merkle_root: [0u8; 32],
                timestamp: 0,
                target: [0xff; 32],
                nonce: 0,
            },
            transactions: vec![b"node-3 height-9 at-100ms".to_vec()],
        };
        assert_eq!(miner_of(&block), Some(3));
        let spam = Block {
            transactions: vec![b"spam-0 orphan-1".to_vec()],
            ..block.clone()
        };
        assert_eq!(miner_of(&spam), None);
    }

    #[test]
    fn a_short_matrix_run_is_deterministic_and_spam_free() {
        let scenario = Scenario {
            name: "spam",
            alpha: 0.0,
            adversary_mines: false,
            make_strategy: || Box::new(SegmentSpam::default()),
            hardened: true,
            partitioned: false,
        };
        let outcome = run_scenario(&scenario, 12_000, 2);
        assert!(outcome.runs_identical);
        assert_eq!(outcome.report.spam_accepted, 0);
        assert!(outcome.report.converged);
    }
}
