//! Experiment E9 — mining-market accessibility.
//!
//! Quantifies the motivation of Section III: under an ASIC-friendly PoW the
//! hash power concentrates in the few miners who can buy custom hardware,
//! while under a GPP-targeted PoW (HashCore) the distribution follows the
//! (already unequal, but far flatter) distribution of commodity hardware.
//! The model and its assumptions live in `hashcore_chain::market`.

use hashcore_baselines::ResourceClass;
use hashcore_chain::market::{asic_advantage, simulate_market, MarketConfig};

fn main() {
    println!("== Experiment E9: mining-market accessibility ==\n");
    let config = MarketConfig::default();
    println!(
        "population: {} miners, Pareto(α={}) capital up to ${:.0}, ASIC minimum order ${:.0}\n",
        config.miners, config.wealth_alpha, config.max_capital, config.asic_min_order
    );

    println!(
        "{:<22} {:>14} {:>10} {:>16} {:>14}",
        "PoW class", "ASIC advantage", "Gini", "participation %", "top-1% share"
    );
    for (label, resource) in [
        ("SHA-256d (fixed)", ResourceClass::FixedFunction),
        ("memory-hard", ResourceClass::Memory),
        ("HashCore (GPP)", ResourceClass::GeneralPurpose),
    ] {
        let outcome = simulate_market(resource, &config);
        println!(
            "{:<22} {:>13.1}x {:>10.4} {:>16.2} {:>14.2}",
            label,
            asic_advantage(resource),
            outcome.gini,
            outcome.participation * 100.0,
            outcome.top1_share * 100.0,
        );
    }

    println!("\nReading: lower Gini and top-1% share, and higher participation, mean a");
    println!("more decentralised mining market. The ordering (HashCore < memory-hard <");
    println!("fixed-function concentration) is the paper's motivating claim.");
}
