//! Light-client serving harness: header-first sync at three light-peer
//! population sizes plus proof-serving adversaries, each scenario run
//! twice for determinism, with the aggregate results written to
//! `BENCH_light.json`.
//!
//! Scenarios:
//!
//! * **light-{64,512,2048}** — one full node mines and serves headers and
//!   batched Merkle proofs to N light peers. The harness measures the
//!   serving load (served proofs/sec) and the real-byte cost per light
//!   peer against the full node's own gossip traffic.
//! * **quota-64** — four full nodes serve 64 light peers under a tight
//!   per-peer proof quota; refusals are silent, so lights must time out
//!   and rotate servers while header convergence stays intact.
//! * **withhold** — full node 0 serves headers but never proofs; lights
//!   time out, rotate to the three honest servers and still prove tips.
//! * **fake-proof** — full node 0 corrupts one byte of every proof it
//!   serves; `verify_batch` must reject every single one (the rejection
//!   count equals the fakes sent) and lights re-request elsewhere.
//!
//! Acceptance gates asserted here (and grepped by CI from the JSON):
//! every scenario leaves every light tip equal to the full best tip
//! (`light_converged`), every corrupted proof is rejected
//! (`fake_proofs_rejected`), and both runs of every scenario replay
//! byte-identically (`runs_identical`).
//!
//! Usage:
//!
//! ```text
//! sim_light [duration-seconds] [threads]
//! ```

use hashcore_baselines::Sha256dPow;
use hashcore_bench::simbench::{host_json, positional_arg, run_twice, threads_arg, write_json};
use hashcore_net::{
    FakeProof, Honest, LightSimConfig, ProofWithholding, SimConfig, SimReport, Simulation, Strategy,
};
use std::fmt::Write as _;

/// Body filler bytes per block, so the byte accounting reflects real
/// transaction volume rather than the ~10-byte miner tag.
const BODY_BYTES: usize = 512;
/// Base nonce attempts per slice for every full node.
const BASE_ATTEMPTS: u64 = 32;

/// One scenario of the matrix.
struct Scenario {
    name: &'static str,
    /// Full nodes (ids `0..full_nodes`); every one mines and serves.
    full_nodes: usize,
    /// Light peers (ids `full_nodes..full_nodes + light_peers`).
    light_peers: usize,
    /// Per-peer proof quota on every full node (0 = unlimited).
    proof_quota: u64,
    /// Strategy for full node 0 (all other nodes are honest).
    make_strategy: fn() -> Box<dyn Strategy>,
}

/// What one scenario produced (plus the raw report).
struct Outcome {
    report: SimReport,
    runs_identical: bool,
    served_proofs_per_sec: f64,
    bytes_per_light_peer: f64,
}

fn scenario_config(scenario: &Scenario, duration_ms: u64, threads: usize) -> SimConfig {
    SimConfig {
        nodes: scenario.full_nodes + scenario.light_peers,
        seed: 0x11c4_7c11,
        difficulty_bits: 8,
        attempts_per_slice: BASE_ATTEMPTS,
        slice_ms: 100,
        fan_out: 2,
        duration_ms,
        threads,
        sync_threads: threads,
        light: Some(LightSimConfig {
            first_light: scenario.full_nodes,
            request_timeout_ms: 1_000,
            proof_indices: vec![0],
            proof_quota: scenario.proof_quota,
            body_bytes: BODY_BYTES,
        }),
        ..SimConfig::default()
    }
}

fn run_scenario(scenario: &Scenario, duration_ms: u64, threads: usize) -> Outcome {
    let run = || {
        let config = scenario_config(scenario, duration_ms, threads);
        let mut sim = Simulation::with_strategies(
            config,
            |_| Sha256dPow,
            |id| {
                if id == 0 {
                    (scenario.make_strategy)()
                } else {
                    Box::new(Honest)
                }
            },
        );
        sim.run()
    };
    // The wall-clock-derived rate stays out of the fingerprint: replays
    // must agree on every simulated byte, not on host speed.
    let (report, runs_identical) = run_twice(run, SimReport::fingerprint_extended);
    let served_proofs_per_sec = report.served_proofs_per_sec();
    let bytes_per_light_peer = report.bytes_per_light_peer();
    Outcome {
        report,
        runs_identical,
        served_proofs_per_sec,
        bytes_per_light_peer,
    }
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "light-64",
            full_nodes: 1,
            light_peers: 64,
            proof_quota: 0,
            make_strategy: || Box::new(Honest),
        },
        Scenario {
            name: "light-512",
            full_nodes: 1,
            light_peers: 512,
            proof_quota: 0,
            make_strategy: || Box::new(Honest),
        },
        Scenario {
            name: "light-2048",
            full_nodes: 1,
            light_peers: 2048,
            proof_quota: 0,
            make_strategy: || Box::new(Honest),
        },
        Scenario {
            name: "quota-64",
            full_nodes: 4,
            light_peers: 64,
            proof_quota: 4,
            make_strategy: || Box::new(Honest),
        },
        Scenario {
            name: "withhold",
            full_nodes: 4,
            light_peers: 64,
            proof_quota: 0,
            make_strategy: || Box::new(ProofWithholding),
        },
        Scenario {
            name: "fake-proof",
            full_nodes: 4,
            light_peers: 64,
            proof_quota: 0,
            make_strategy: || Box::new(FakeProof),
        },
    ]
}

fn main() {
    let duration_s = positional_arg(1, 60).max(12);
    let duration_ms = duration_s * 1_000;
    let threads = threads_arg(2);

    let scenarios = scenarios();
    println!(
        "light-client matrix: {} scenarios × 2 runs, {duration_s} s horizon",
        scenarios.len()
    );

    let outcomes: Vec<(&Scenario, Outcome)> = scenarios
        .iter()
        .map(|scenario| {
            let outcome = run_scenario(scenario, duration_ms, threads);
            let r = &outcome.report;
            println!(
                "  {:<11} full={} lights={} converged={}/{} height={} \
                 headers(served/accepted)={}/{} proofs(served/verified)={}/{} \
                 rate={:.1}/s bytes_per_light={:.0} retries={} withheld={} \
                 fakes={} rejected={} refusals={} deterministic={}",
                scenario.name,
                scenario.full_nodes,
                r.light_nodes,
                r.converged,
                r.light_converged,
                r.tip_height,
                r.headers_served,
                r.headers_accepted,
                r.proofs_served,
                r.proofs_verified,
                outcome.served_proofs_per_sec,
                outcome.bytes_per_light_peer,
                r.proof_retries,
                r.proofs_withheld,
                r.fake_proofs_sent,
                r.rejections.invalid_proof,
                r.quota_refusals,
                outcome.runs_identical,
            );
            (scenario, outcome)
        })
        .collect();

    // Acceptance gates.
    let runs_identical = outcomes.iter().all(|(_, o)| o.runs_identical);
    let light_converged = outcomes
        .iter()
        .all(|(_, o)| o.report.converged && o.report.light_converged);
    let fakes_sent: u64 = outcomes
        .iter()
        .map(|(_, o)| o.report.fake_proofs_sent)
        .sum();
    let fakes_rejected: u64 = outcomes
        .iter()
        .map(|(_, o)| o.report.rejections.invalid_proof)
        .sum();
    let fake_proofs_rejected = fakes_sent > 0 && fakes_rejected == fakes_sent;
    for (scenario, outcome) in &outcomes {
        assert!(
            outcome.report.converged && outcome.report.light_converged,
            "every light tip must equal the full tip under {}: {}",
            scenario.name,
            outcome.report.fingerprint_extended()
        );
        assert!(
            outcome.report.proofs_verified > 0,
            "lights must prove tips under {}",
            scenario.name
        );
    }
    assert!(runs_identical, "every scenario must replay identically");
    assert!(
        fake_proofs_rejected,
        "every corrupted proof must be rejected: sent={fakes_sent} rejected={fakes_rejected}"
    );

    let json = render_json(
        &outcomes,
        duration_ms,
        light_converged,
        fake_proofs_rejected,
        fakes_sent,
        runs_identical,
        threads,
    );
    write_json("BENCH_light.json", &json);
}

/// Renders the matrix as a small, dependency-free JSON document.
fn render_json(
    outcomes: &[(&Scenario, Outcome)],
    duration_ms: u64,
    light_converged: bool,
    fake_proofs_rejected: bool,
    fake_proofs_sent: u64,
    runs_identical: bool,
    threads: usize,
) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"network_light_clients\",");
    let _ = writeln!(json, "{}", host_json(threads));
    let _ = writeln!(json, "  \"duration_ms\": {duration_ms},");
    let _ = writeln!(json, "  \"body_bytes\": {BODY_BYTES},");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, (scenario, outcome)) in outcomes.iter().enumerate() {
        let r = &outcome.report;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", scenario.name);
        let _ = writeln!(json, "      \"full_nodes\": {},", scenario.full_nodes);
        let _ = writeln!(json, "      \"light_peers\": {},", r.light_nodes);
        let _ = writeln!(json, "      \"proof_quota\": {},", scenario.proof_quota);
        let _ = writeln!(json, "      \"converged\": {},", r.converged);
        let _ = writeln!(json, "      \"light_converged\": {},", r.light_converged);
        let _ = writeln!(json, "      \"tip_height\": {},", r.tip_height);
        let _ = writeln!(json, "      \"headers_served\": {},", r.headers_served);
        let _ = writeln!(json, "      \"headers_accepted\": {},", r.headers_accepted);
        let _ = writeln!(json, "      \"proofs_served\": {},", r.proofs_served);
        let _ = writeln!(json, "      \"proofs_verified\": {},", r.proofs_verified);
        let _ = writeln!(
            json,
            "      \"served_proofs_per_sec\": {:.1},",
            outcome.served_proofs_per_sec
        );
        let _ = writeln!(
            json,
            "      \"bytes_per_light_peer\": {:.1},",
            outcome.bytes_per_light_peer
        );
        let _ = writeln!(json, "      \"bytes_sent\": {},", r.bytes_sent);
        let _ = writeln!(
            json,
            "      \"light_bytes_received\": {},",
            r.light_bytes_received
        );
        let _ = writeln!(json, "      \"proof_retries\": {},", r.proof_retries);
        let _ = writeln!(json, "      \"proofs_withheld\": {},", r.proofs_withheld);
        let _ = writeln!(json, "      \"fake_proofs_sent\": {},", r.fake_proofs_sent);
        let _ = writeln!(
            json,
            "      \"fake_proofs_rejected\": {},",
            r.rejections.invalid_proof
        );
        let _ = writeln!(json, "      \"quota_refusals\": {},", r.quota_refusals);
        let _ = writeln!(json, "      \"verify_hash_ops\": {},", r.verify_hash_ops);
        let _ = writeln!(json, "      \"tx_bytes_proved\": {},", r.tx_bytes_proved);
        let _ = writeln!(json, "      \"runs_identical\": {}", outcome.runs_identical);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"light_converged\": {light_converged},");
    let _ = writeln!(json, "  \"fake_proofs_sent\": {fake_proofs_sent},");
    let _ = writeln!(json, "  \"fake_proofs_rejected\": {fake_proofs_rejected},");
    let _ = writeln!(json, "  \"runs_identical\": {runs_identical}");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_fake_proof_run_rejects_every_fake_and_converges() {
        let scenario = Scenario {
            name: "fake-proof",
            full_nodes: 4,
            light_peers: 8,
            proof_quota: 0,
            make_strategy: || Box::new(FakeProof),
        };
        let outcome = run_scenario(&scenario, 12_000, 2);
        assert!(outcome.runs_identical);
        assert!(outcome.report.converged && outcome.report.light_converged);
        assert!(outcome.report.fake_proofs_sent > 0);
        assert_eq!(
            outcome.report.rejections.invalid_proof,
            outcome.report.fake_proofs_sent
        );
        assert!(outcome.report.proofs_verified > 0);
    }

    #[test]
    fn a_short_quota_run_refuses_and_still_converges() {
        let scenario = Scenario {
            name: "quota-64",
            full_nodes: 4,
            light_peers: 8,
            proof_quota: 2,
            make_strategy: || Box::new(Honest),
        };
        let outcome = run_scenario(&scenario, 12_000, 2);
        assert!(outcome.runs_identical);
        assert!(outcome.report.converged && outcome.report.light_converged);
        assert!(outcome.report.quota_refusals > 0);
    }
}
