//! Network-simulation harness: fork races, a forced partition, deep reorgs
//! and catch-up segment sync, with the batched parallel verifier on the hot
//! path.
//!
//! Runs the deterministic 5-node simulation twice with the same seed,
//! asserts the two runs are byte-identical on every deterministic metric
//! (convergence time, reorg depth distribution, message counts), and writes
//! `BENCH_sync.json`. The partition splits the network for a third of the
//! run; on heal, the losing side catches up through `GetSegment` →
//! `validate_segment_parallel`, which is where the recorded sync throughput
//! comes from.
//!
//! Usage:
//!
//! ```text
//! sim_network [duration-seconds] [nodes] [threads]
//! ```
//!
//! `threads` drives both the scheduler workers and the segment verifier
//! (0 = all logical cores); it never changes a deterministic metric.

use hashcore_baselines::Sha256dPow;
use hashcore_bench::simbench::{host_json, positional_arg, run_twice, threads_arg, write_json};
use hashcore_net::{Partition, SimConfig, SimReport, Simulation};
use std::fmt::Write as _;

fn config(duration_s: u64, nodes: usize, threads: usize) -> SimConfig {
    let duration_ms = duration_s * 1_000;
    SimConfig {
        nodes,
        seed: 0xc0ffee,
        difficulty_bits: 9,
        attempts_per_slice: 64,
        slice_ms: 100,
        fan_out: 2,
        // Partition the middle third of the run: two nodes against the
        // rest, so the minority mines a doomed branch and must reorg.
        partitions: vec![Partition {
            start_ms: duration_ms / 3,
            end_ms: 2 * duration_ms / 3,
            split: 2.min(nodes - 1),
        }],
        duration_ms,
        threads,
        sync_threads: threads,
        ..SimConfig::default()
    }
}

fn main() {
    let duration_s = positional_arg(1, 60).max(9);
    let nodes = positional_arg(2, 5).max(3) as usize;
    let threads = threads_arg(3);

    println!(
        "network simulation: {nodes} nodes, {duration_s} s horizon, \
         partition in the middle third, {threads} worker threads"
    );

    let (report, runs_identical) = run_twice(
        || Simulation::new(config(duration_s, nodes, threads), |_| Sha256dPow).run(),
        SimReport::fingerprint,
    );

    println!("  converged:         {}", report.converged);
    println!(
        "  convergence time:  {} ms (simulated)",
        report.convergence_ms.map_or(-1i64, |t| t as i64)
    );
    println!("  tip height:        {}", report.tip_height);
    println!("  blocks mined:      {}", report.blocks_mined);
    println!(
        "  reorgs:            {} (max depth {})",
        report.reorg_depths.len(),
        report.max_reorg_depth
    );
    println!(
        "  segment sync:      {} segments, {} blocks, {:.0} blocks/s wall",
        report.segments_synced,
        report.segment_blocks,
        report.sync_blocks_per_sec()
    );
    println!(
        "  messages:          {} sent, {} dropped at the partition",
        report.messages_sent, report.messages_dropped
    );
    println!("  deterministic:     {runs_identical} (two runs, same seed)");

    // The acceptance gates: a healed partition must leave one tip, reached
    // through at least one multi-block reorg fed by the parallel verifier,
    // and the whole race must replay identically from the seed.
    assert!(report.converged, "nodes must converge after the heal");
    assert!(
        report.max_reorg_depth >= 2,
        "the partition must force a multi-block reorg (saw {})",
        report.max_reorg_depth
    );
    assert!(
        report.segments_synced >= 1,
        "catch-up must run through validate_segment_parallel"
    );
    assert!(runs_identical, "same seed must reproduce the same race");

    let json = render_json(&report, runs_identical, threads);
    write_json("BENCH_sync.json", &json);
}

/// Renders the report as a small, dependency-free JSON document.
fn render_json(report: &SimReport, runs_identical: bool, threads: usize) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"network_sync\",");
    let _ = writeln!(json, "{}", host_json(threads));
    let _ = writeln!(json, "  \"nodes\": {},", report.nodes);
    let _ = writeln!(json, "  \"seed\": {},", report.seed);
    let _ = writeln!(json, "  \"duration_ms\": {},", report.duration_ms);
    let _ = writeln!(json, "  \"converged\": {},", report.converged);
    let _ = writeln!(
        json,
        "  \"convergence_ms\": {},",
        report.convergence_ms.map_or(-1i64, |t| t as i64)
    );
    let _ = writeln!(json, "  \"tip_height\": {},", report.tip_height);
    let _ = writeln!(json, "  \"blocks_mined\": {},", report.blocks_mined);
    let _ = writeln!(json, "  \"reorgs\": {},", report.reorg_depths.len());
    let _ = writeln!(json, "  \"max_reorg_depth\": {},", report.max_reorg_depth);
    let depths: Vec<String> = report.reorg_depths.iter().map(|d| d.to_string()).collect();
    let _ = writeln!(json, "  \"reorg_depths\": [{}],", depths.join(", "));
    let _ = writeln!(json, "  \"segments_synced\": {},", report.segments_synced);
    let _ = writeln!(json, "  \"segment_blocks\": {},", report.segment_blocks);
    let _ = writeln!(
        json,
        "  \"sync_blocks_per_sec\": {:.3},",
        report.sync_blocks_per_sec()
    );
    let _ = writeln!(json, "  \"messages_sent\": {},", report.messages_sent);
    let _ = writeln!(json, "  \"messages_dropped\": {},", report.messages_dropped);
    let _ = writeln!(json, "  \"runs_identical\": {runs_identical}");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_baselines::Sha256dPow;
    use hashcore_net::Simulation;

    #[test]
    fn json_rendering_is_well_formed() {
        let report = Simulation::new(config(9, 3, 2), |_| Sha256dPow).run();
        let json = render_json(&report, true, 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"network_sync\""));
        assert!(json.contains("\"host\""));
        assert!(json.contains("\"runs_identical\": true"));
        assert!(json.ends_with("}\n"));
    }
}
