//! Difficulty-manipulation harness: adaptive (per-branch EMA) difficulty
//! under timestamp-skew and difficulty-hopping adversaries, swept across
//! skew magnitudes and hop thresholds, each scenario run twice for
//! determinism, with the aggregate results written to
//! `BENCH_difficulty.json`.
//!
//! Scenarios (all with `SimConfig::retarget` enabled, so every node mines
//! at its best branch's expected target and every fork tree enforces the
//! rule branch-aware):
//!
//! * **honest** — the all-honest baseline the attacks are measured
//!   against.
//! * **skew-\<S\>** — node 0 runs [`TimestampSkew`] with `skew_ms = S` and
//!   no timestamp rule is enforced: the skewed headers are
//!   rule-consistent (their inflated gaps *derive* their easier targets),
//!   so honest nodes accept them and the chain grows faster than the
//!   honest baseline — blocks-per-hour inflation.
//! * **skew-\<S\>-defended** — same attack, but honest nodes enforce the
//!   median-time-past/future-drift [`TimestampRule`] with a drift bound
//!   below `S`: every skewed header is rejected at the edge, the
//!   attacker's hash power buys nothing, and the block rate falls back to
//!   (below) the baseline.
//! * **hop-\<T\>** — node 0 runs [`DifficultyHopping`], spending hash
//!   power only while the expected target costs at most `T` attempts.
//! * **steer** — node 0 runs [`CostSteering`]: it grinds nonces, discards
//!   every PoW-winning seed whose widget program verifies cheaply, and
//!   publishes only seeds at least [`STEER_MIN_RATIO`]× the nominal
//!   verification cost. Under the cost-blind EMA rule every published
//!   block is valid, so the honest chain's per-block verification bill
//!   inflates.
//! * **steer-defended** — same attack, but the run installs the
//!   cost-aware rule ([`CostPolicyConfig`]): headers commit a quantized
//!   cost EMA, branch targets harden as observed costs rise, and the
//!   per-block admission bound makes expensive seeds pay quadratically
//!   more work — restoring the chain's verification bill to the honest
//!   ballpark.
//!
//! Acceptance gates asserted here (and grepped by CI from the JSON):
//! every scenario converges and replays byte-identically
//! (`runs_identical`); every undefended skew inflates blocks/hour to at
//! least [`MIN_SKEW_INFLATION`]× the honest baseline (`skew_inflates`);
//! and the defence crushes every skew's rate by at least
//! [`MIN_DEFENCE_CRUSH`]× relative to its undefended twin with timestamp
//! rejections actually observed (`drift_rule_holds`). The crush gate is
//! relative to the undefended twin rather than the baseline because the
//! EMA's convergence transient makes absolute block counts shift with
//! effective hash power (rejecting the skewer leaves difficulty easier
//! for the remaining miners), while the attack's order-of-magnitude
//! inflation — and its collapse under the rule — is robust.
//!
//! The steering gates compare mean per-block verifier cost along the
//! honest best chain: undefended steering must inflate it to at least
//! [`MIN_STEERING_INFLATION`]× the honest baseline
//! (`steering_inflates_verify_cost`), and the cost-aware rule must pull
//! it back within [`MAX_DEFENDED_COST`]× of that baseline while the
//! steerer demonstrably keeps grinding (`cost_rule_holds`).
//!
//! Usage:
//!
//! ```text
//! sim_difficulty [duration-seconds] [threads]
//! ```
//!
//! `threads` drives both the scheduler workers and the segment verifier
//! (0 = all logical cores); it never changes a deterministic metric.

use hashcore_baselines::Sha256dPow;
use hashcore_bench::simbench::{host_json, positional_arg, run_twice, threads_arg, write_json};
use hashcore_net::{
    CostPolicyConfig, CostSteering, DifficultyHopping, Honest, RetargetConfig, SimConfig,
    SimReport, Simulation, Strategy, TimestampRule, TimestampSkew,
};
use std::fmt::Write as _;

/// Honest nodes in every scenario (the adversary is node 0, extra).
const HONEST_NODES: usize = 4;
/// Base nonce attempts per slice for every honest node.
const BASE_ATTEMPTS: u64 = 32;
/// Node 0's attempts per slice in *every* scenario — honest baseline
/// included — so it holds ≈ 40% of total hash power throughout and the
/// inflation figures isolate the node's *behaviour* (skewing, hopping)
/// from its hash power.
const ADVERSARY_ATTEMPTS: u64 = 85;
/// Desired simulated milliseconds between blocks.
const TARGET_BLOCK_TIME_MS: f64 = 1_000.0;
/// EMA gain: at 0.5 the ×4 easing a large skew buys is fully refunded by
/// the ×0.25 hardening its successor's real timestamp applies, so the
/// attacker's extra cheap blocks are pure chain-growth inflation.
const GAIN: f64 = 0.5;
/// Future-drift bound of the defended scenarios — below every swept skew.
const MAX_DRIFT_MS: u64 = 4_000;
/// An undefended skew must inflate chain growth to at least this multiple
/// of the honest baseline (observed: ×15–30).
const MIN_SKEW_INFLATION: f64 = 2.0;
/// The timestamp rule must divide an undefended skew's chain growth by at
/// least this factor (observed: ×15+).
const MIN_DEFENCE_CRUSH: f64 = 4.0;
/// Node 0's attempts per slice in the cost-steering scenarios. The grind
/// discards roughly three of every four PoW-winning seeds (only the most
/// expensive quartile of widget programs is published), and each discard
/// leaves the steerer mining a progressively staler template, so its
/// *publish* rate must beat the honest network's find rate (4 × 32
/// attempts) for its expensive blocks to hold the tip instead of dying as
/// side chains: 1024 / 4 = 256 publishes-per-slice-equivalent vs 128.
const STEER_ATTEMPTS: u64 = 1024;
/// Minimum verifier-cost multiple of nominal a steered seed must reach
/// before the adversary publishes it.
const STEER_MIN_RATIO: f64 = 2.0;
/// Cost-EMA weight of the defended scenarios' cost-aware rule.
const COST_GAIN: f64 = 0.5;
/// Cost-response exponent of the defended scenarios' cost-aware rule.
const COST_RESPONSE: f64 = 2.0;
/// Undefended steering must inflate the honest chain's mean per-block
/// verifier cost to at least this multiple of the honest baseline.
const MIN_STEERING_INFLATION: f64 = 1.25;
/// The cost-aware rule must hold the defended chain's mean per-block
/// verifier cost within this multiple of the honest baseline.
const MAX_DEFENDED_COST: f64 = 1.25;

/// One scenario of the sweep.
struct Scenario {
    name: String,
    /// Timestamp skew of the adversary (0 = no skew attack).
    skew_ms: u64,
    /// Hop threshold of the adversary (0 = no hopping).
    hop_threshold: f64,
    /// Whether honest nodes enforce the timestamp-validity rule.
    defended: bool,
    /// Cost-steering threshold of the adversary (0 = no steering).
    steer_min_ratio: f64,
    /// Whether the run installs the cost-aware difficulty rule.
    cost_defended: bool,
}

impl Scenario {
    /// A scenario with no attack and no extra defence — the base the
    /// sweep entries override.
    fn baseline(name: &str) -> Self {
        Self {
            name: name.into(),
            skew_ms: 0,
            hop_threshold: 0.0,
            defended: false,
            steer_min_ratio: 0.0,
            cost_defended: false,
        }
    }

    fn strategy(&self) -> Box<dyn Strategy> {
        if self.skew_ms > 0 {
            Box::new(TimestampSkew {
                skew_ms: self.skew_ms,
            })
        } else if self.hop_threshold > 0.0 {
            Box::new(DifficultyHopping {
                max_expected_attempts: self.hop_threshold,
            })
        } else if self.steer_min_ratio > 0.0 {
            Box::new(CostSteering {
                min_cost_ratio: self.steer_min_ratio,
            })
        } else {
            Box::new(Honest)
        }
    }
}

/// What one scenario produced.
struct Outcome {
    report: SimReport,
    runs_identical: bool,
    blocks_per_hour: f64,
}

fn scenario_config(scenario: &Scenario, duration_ms: u64, threads: usize) -> SimConfig {
    SimConfig {
        nodes: HONEST_NODES + 1,
        seed: 0xd1f_f1cu64,
        difficulty_bits: 10,
        attempts_per_slice: BASE_ATTEMPTS,
        node_attempts: vec![(
            0,
            if scenario.steer_min_ratio > 0.0 {
                STEER_ATTEMPTS
            } else {
                ADVERSARY_ATTEMPTS
            },
        )],
        slice_ms: 100,
        fan_out: 2,
        duration_ms,
        threads,
        sync_threads: threads,
        retarget: Some(RetargetConfig {
            target_block_time_ms: TARGET_BLOCK_TIME_MS,
            gain: GAIN,
        }),
        cost_policy: scenario.cost_defended.then_some(CostPolicyConfig {
            cost_gain: COST_GAIN,
            response: COST_RESPONSE,
        }),
        timestamp_rule: scenario.defended.then_some(TimestampRule {
            max_future_drift_ms: MAX_DRIFT_MS,
            mtp_window: 11,
        }),
        ..SimConfig::default()
    }
}

fn run_scenario(scenario: &Scenario, duration_ms: u64, threads: usize) -> Outcome {
    let run = || {
        let config = scenario_config(scenario, duration_ms, threads);
        let mut sim = Simulation::with_strategies(
            config,
            |_| Sha256dPow,
            |id| {
                if id == 0 {
                    scenario.strategy()
                } else {
                    Box::new(Honest)
                }
            },
        );
        sim.run()
    };
    let (report, runs_identical) = run_twice(run, SimReport::fingerprint_extended);
    // Chain growth of the honest best chain, normalised to blocks/hour.
    let blocks_per_hour = report.tip_height as f64 * 3_600_000.0 / duration_ms as f64;
    Outcome {
        report,
        runs_identical,
        blocks_per_hour,
    }
}

fn main() {
    let duration_s = positional_arg(1, 60).max(20);
    let duration_ms = duration_s * 1_000;
    let threads = threads_arg(2);

    let mut scenarios = vec![Scenario::baseline("honest")];
    for skew_ms in [8_000u64, 24_000] {
        for defended in [false, true] {
            scenarios.push(Scenario {
                skew_ms,
                defended,
                ..Scenario::baseline(&format!(
                    "skew-{}s{}",
                    skew_ms / 1_000,
                    if defended { "-defended" } else { "" }
                ))
            });
        }
    }
    for hop_threshold in [1_024.0f64, 2_048.0] {
        scenarios.push(Scenario {
            hop_threshold,
            ..Scenario::baseline(&format!("hop-{hop_threshold:.0}"))
        });
    }
    for cost_defended in [false, true] {
        scenarios.push(Scenario {
            steer_min_ratio: STEER_MIN_RATIO,
            cost_defended,
            ..Scenario::baseline(if cost_defended {
                "steer-defended"
            } else {
                "steer"
            })
        });
    }

    println!(
        "difficulty matrix: {} scenarios × 2 runs, {duration_s} s horizon, \
         {HONEST_NODES} honest nodes + 1 adversary, EMA retarget \
         (block time {TARGET_BLOCK_TIME_MS} ms, gain {GAIN})",
        scenarios.len()
    );

    let outcomes: Vec<(&Scenario, Outcome)> = scenarios
        .iter()
        .map(|scenario| {
            let outcome = run_scenario(scenario, duration_ms, threads);
            let r = &outcome.report;
            println!(
                "  {:<17} converged={} height={} blocks/h={:.0} deepest_reorg={} \
                 ts_rejected={} target_rejected={} tip_cost={:.3} discarded={} \
                 inadmissible={} deterministic={}",
                scenario.name,
                r.converged,
                r.tip_height,
                outcome.blocks_per_hour,
                r.max_reorg_depth,
                r.rejections.timestamp,
                r.rejections.target_policy,
                r.tip_mean_cost_ratio,
                r.seeds_discarded,
                r.seeds_inadmissible,
                outcome.runs_identical,
            );
            (scenario, outcome)
        })
        .collect();

    let baseline = outcomes
        .iter()
        .find(|(s, _)| s.name == "honest")
        .map(|(_, o)| o.blocks_per_hour)
        .expect("the honest baseline ran");
    let baseline_cost = outcomes
        .iter()
        .find(|(s, _)| s.name == "honest")
        .map(|(_, o)| o.report.tip_mean_cost_ratio)
        .expect("the honest baseline ran");

    // Acceptance gates.
    let mut gates = Gates {
        runs_identical: outcomes.iter().all(|(_, o)| o.runs_identical),
        skew_inflates: true,
        drift_rule_holds: true,
        steering_inflates_verify_cost: true,
        cost_rule_holds: true,
    };
    for (scenario, outcome) in &outcomes {
        assert!(
            outcome.report.converged,
            "honest nodes must converge under {}: {}",
            scenario.name,
            outcome.report.fingerprint_extended()
        );
        if scenario.skew_ms > 0 && !scenario.defended {
            gates.skew_inflates &= outcome.blocks_per_hour >= MIN_SKEW_INFLATION * baseline;
        }
        if scenario.skew_ms > 0 && scenario.defended {
            let undefended = outcomes
                .iter()
                .find(|(s, _)| s.skew_ms == scenario.skew_ms && !s.defended)
                .map(|(_, o)| o.blocks_per_hour)
                .expect("the undefended twin ran");
            gates.drift_rule_holds &= outcome.blocks_per_hour <= undefended / MIN_DEFENCE_CRUSH
                && outcome.report.rejections.timestamp > 0;
        }
        if scenario.steer_min_ratio > 0.0 && !scenario.cost_defended {
            // The grind must demonstrably run (seeds thrown away) and the
            // published chain's verification bill must inflate.
            gates.steering_inflates_verify_cost &= outcome.report.seeds_discarded > 0
                && outcome.report.tip_mean_cost_ratio >= MIN_STEERING_INFLATION * baseline_cost;
        }
        if scenario.steer_min_ratio > 0.0 && scenario.cost_defended {
            // Same grinding adversary, but the cost-aware rule holds the
            // chain's verification bill at the honest ballpark.
            gates.cost_rule_holds &= outcome.report.seeds_discarded > 0
                && outcome.report.tip_mean_cost_ratio <= MAX_DEFENDED_COST * baseline_cost;
        }
    }
    assert!(
        gates.runs_identical,
        "every scenario must replay identically"
    );
    assert!(
        gates.skew_inflates,
        "undefended timestamp skew must inflate blocks/hour well above the honest baseline"
    );
    assert!(
        gates.drift_rule_holds,
        "the timestamp rule must crush every skew's chain growth"
    );
    assert!(
        gates.steering_inflates_verify_cost,
        "undefended cost steering must inflate the chain's per-block verify cost"
    );
    assert!(
        gates.cost_rule_holds,
        "the cost-aware rule must restore the chain's per-block verify cost"
    );

    let json = render_json(
        &outcomes,
        duration_ms,
        baseline,
        baseline_cost,
        gates,
        threads,
    );
    write_json("BENCH_difficulty.json", &json);
}

/// The sweep's acceptance gates, as grepped from the JSON by CI.
#[derive(Clone, Copy)]
struct Gates {
    runs_identical: bool,
    skew_inflates: bool,
    drift_rule_holds: bool,
    steering_inflates_verify_cost: bool,
    cost_rule_holds: bool,
}

/// Renders the sweep as a small, dependency-free JSON document.
fn render_json(
    outcomes: &[(&Scenario, Outcome)],
    duration_ms: u64,
    baseline: f64,
    baseline_cost: f64,
    gates: Gates,
    threads: usize,
) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"difficulty_adversary\",");
    let _ = writeln!(json, "{}", host_json(threads));
    let _ = writeln!(json, "  \"duration_ms\": {duration_ms},");
    let _ = writeln!(json, "  \"honest_nodes\": {HONEST_NODES},");
    let _ = writeln!(json, "  \"target_block_time_ms\": {TARGET_BLOCK_TIME_MS},");
    let _ = writeln!(json, "  \"gain\": {GAIN},");
    let _ = writeln!(json, "  \"baseline_blocks_per_hour\": {baseline:.1},");
    let _ = writeln!(json, "  \"baseline_tip_cost_ratio\": {baseline_cost:.4},");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, (scenario, outcome)) in outcomes.iter().enumerate() {
        let r = &outcome.report;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", scenario.name);
        let _ = writeln!(json, "      \"skew_ms\": {},", scenario.skew_ms);
        let _ = writeln!(
            json,
            "      \"hop_threshold\": {:.0},",
            scenario.hop_threshold
        );
        let _ = writeln!(json, "      \"defended\": {},", scenario.defended);
        let _ = writeln!(
            json,
            "      \"steer_min_ratio\": {:.2},",
            scenario.steer_min_ratio
        );
        let _ = writeln!(json, "      \"cost_defended\": {},", scenario.cost_defended);
        let _ = writeln!(json, "      \"converged\": {},", r.converged);
        let _ = writeln!(json, "      \"tip_height\": {},", r.tip_height);
        let _ = writeln!(
            json,
            "      \"blocks_per_hour\": {:.1},",
            outcome.blocks_per_hour
        );
        let _ = writeln!(
            json,
            "      \"inflation_vs_honest\": {:.4},",
            outcome.blocks_per_hour / baseline
        );
        let _ = writeln!(json, "      \"deepest_reorg\": {},", r.max_reorg_depth);
        let _ = writeln!(
            json,
            "      \"timestamp_rejections\": {},",
            r.rejections.timestamp
        );
        let _ = writeln!(
            json,
            "      \"target_rejections\": {},",
            r.rejections.target_policy
        );
        let _ = writeln!(
            json,
            "      \"tip_mean_cost_ratio\": {:.4},",
            r.tip_mean_cost_ratio
        );
        let _ = writeln!(
            json,
            "      \"cost_vs_honest\": {:.4},",
            r.tip_mean_cost_ratio / baseline_cost
        );
        let _ = writeln!(json, "      \"seeds_discarded\": {},", r.seeds_discarded);
        let _ = writeln!(
            json,
            "      \"seeds_inadmissible\": {},",
            r.seeds_inadmissible
        );
        let _ = writeln!(json, "      \"runs_identical\": {}", outcome.runs_identical);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"skew_inflates\": {},", gates.skew_inflates);
    let _ = writeln!(json, "  \"drift_rule_holds\": {},", gates.drift_rule_holds);
    let _ = writeln!(
        json,
        "  \"steering_inflates_verify_cost\": {},",
        gates.steering_inflates_verify_cost
    );
    let _ = writeln!(json, "  \"cost_rule_holds\": {},", gates.cost_rule_holds);
    let _ = writeln!(json, "  \"runs_identical\": {}", gates.runs_identical);
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_strategies_match_their_knobs() {
        let skew = Scenario {
            skew_ms: 9_000,
            ..Scenario::baseline("skew")
        };
        assert_eq!(skew.strategy().name(), "timestamp-skew");
        let hop = Scenario {
            hop_threshold: 512.0,
            ..Scenario::baseline("hop")
        };
        assert_eq!(hop.strategy().name(), "difficulty-hopping");
        let steer = Scenario {
            steer_min_ratio: STEER_MIN_RATIO,
            ..Scenario::baseline("steer")
        };
        assert_eq!(steer.strategy().name(), "cost-steering");
        assert_eq!(Scenario::baseline("honest").strategy().name(), "honest");
        // Defended scenarios install a drift bound below every swept skew.
        let config = scenario_config(
            &Scenario {
                defended: true,
                ..skew
            },
            20_000,
            2,
        );
        let rule = config.timestamp_rule.expect("defended installs the rule");
        assert!(rule.max_future_drift_ms < 8_000);
        assert!(config.retarget.is_some(), "the sweep is always adaptive");
        assert!(config.cost_policy.is_none(), "cost rule is opt-in");
        // The cost-defended steering scenario installs the cost-aware rule
        // and the deeper steering scan budget.
        let config = scenario_config(
            &Scenario {
                cost_defended: true,
                ..steer
            },
            20_000,
            2,
        );
        assert!(config.cost_policy.is_some());
        assert_eq!(config.node_attempts, vec![(0, STEER_ATTEMPTS)]);
    }

    #[test]
    fn a_short_skew_scenario_is_deterministic() {
        let scenario = Scenario {
            skew_ms: 8_000,
            ..Scenario::baseline("skew-8s")
        };
        let outcome = run_scenario(&scenario, 20_000, 2);
        assert!(outcome.runs_identical);
        assert!(outcome.report.converged);
    }

    #[test]
    fn a_short_steering_scenario_is_deterministic_and_grinds() {
        let scenario = Scenario {
            steer_min_ratio: STEER_MIN_RATIO,
            cost_defended: true,
            ..Scenario::baseline("steer-defended")
        };
        let outcome = run_scenario(&scenario, 20_000, 2);
        assert!(outcome.runs_identical);
        assert!(outcome.report.converged);
        assert!(
            outcome.report.seeds_discarded > 0,
            "the steerer must actually discard cheap seeds"
        );
    }
}
