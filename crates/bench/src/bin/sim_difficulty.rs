//! Difficulty-manipulation harness: adaptive (per-branch EMA) difficulty
//! under timestamp-skew and difficulty-hopping adversaries, swept across
//! skew magnitudes and hop thresholds, each scenario run twice for
//! determinism, with the aggregate results written to
//! `BENCH_difficulty.json`.
//!
//! Scenarios (all with `SimConfig::retarget` enabled, so every node mines
//! at its best branch's expected target and every fork tree enforces the
//! rule branch-aware):
//!
//! * **honest** — the all-honest baseline the attacks are measured
//!   against.
//! * **skew-\<S\>** — node 0 runs [`TimestampSkew`] with `skew_ms = S` and
//!   no timestamp rule is enforced: the skewed headers are
//!   rule-consistent (their inflated gaps *derive* their easier targets),
//!   so honest nodes accept them and the chain grows faster than the
//!   honest baseline — blocks-per-hour inflation.
//! * **skew-\<S\>-defended** — same attack, but honest nodes enforce the
//!   median-time-past/future-drift [`TimestampRule`] with a drift bound
//!   below `S`: every skewed header is rejected at the edge, the
//!   attacker's hash power buys nothing, and the block rate falls back to
//!   (below) the baseline.
//! * **hop-\<T\>** — node 0 runs [`DifficultyHopping`], spending hash
//!   power only while the expected target costs at most `T` attempts.
//!
//! Acceptance gates asserted here (and grepped by CI from the JSON):
//! every scenario converges and replays byte-identically
//! (`runs_identical`); every undefended skew inflates blocks/hour to at
//! least [`MIN_SKEW_INFLATION`]× the honest baseline (`skew_inflates`);
//! and the defence crushes every skew's rate by at least
//! [`MIN_DEFENCE_CRUSH`]× relative to its undefended twin with timestamp
//! rejections actually observed (`drift_rule_holds`). The crush gate is
//! relative to the undefended twin rather than the baseline because the
//! EMA's convergence transient makes absolute block counts shift with
//! effective hash power (rejecting the skewer leaves difficulty easier
//! for the remaining miners), while the attack's order-of-magnitude
//! inflation — and its collapse under the rule — is robust.
//!
//! Usage:
//!
//! ```text
//! sim_difficulty [duration-seconds] [threads]
//! ```
//!
//! `threads` drives both the scheduler workers and the segment verifier
//! (0 = all logical cores); it never changes a deterministic metric.

use hashcore_baselines::Sha256dPow;
use hashcore_bench::simbench::{host_json, positional_arg, run_twice, threads_arg, write_json};
use hashcore_net::{
    DifficultyHopping, Honest, RetargetConfig, SimConfig, SimReport, Simulation, Strategy,
    TimestampRule, TimestampSkew,
};
use std::fmt::Write as _;

/// Honest nodes in every scenario (the adversary is node 0, extra).
const HONEST_NODES: usize = 4;
/// Base nonce attempts per slice for every honest node.
const BASE_ATTEMPTS: u64 = 32;
/// Node 0's attempts per slice in *every* scenario — honest baseline
/// included — so it holds ≈ 40% of total hash power throughout and the
/// inflation figures isolate the node's *behaviour* (skewing, hopping)
/// from its hash power.
const ADVERSARY_ATTEMPTS: u64 = 85;
/// Desired simulated milliseconds between blocks.
const TARGET_BLOCK_TIME_MS: f64 = 1_000.0;
/// EMA gain: at 0.5 the ×4 easing a large skew buys is fully refunded by
/// the ×0.25 hardening its successor's real timestamp applies, so the
/// attacker's extra cheap blocks are pure chain-growth inflation.
const GAIN: f64 = 0.5;
/// Future-drift bound of the defended scenarios — below every swept skew.
const MAX_DRIFT_MS: u64 = 4_000;
/// An undefended skew must inflate chain growth to at least this multiple
/// of the honest baseline (observed: ×15–30).
const MIN_SKEW_INFLATION: f64 = 2.0;
/// The timestamp rule must divide an undefended skew's chain growth by at
/// least this factor (observed: ×15+).
const MIN_DEFENCE_CRUSH: f64 = 4.0;

/// One scenario of the sweep.
struct Scenario {
    name: String,
    /// Timestamp skew of the adversary (0 = no skew attack).
    skew_ms: u64,
    /// Hop threshold of the adversary (0 = no hopping).
    hop_threshold: f64,
    /// Whether honest nodes enforce the timestamp-validity rule.
    defended: bool,
}

impl Scenario {
    fn strategy(&self) -> Box<dyn Strategy> {
        if self.skew_ms > 0 {
            Box::new(TimestampSkew {
                skew_ms: self.skew_ms,
            })
        } else if self.hop_threshold > 0.0 {
            Box::new(DifficultyHopping {
                max_expected_attempts: self.hop_threshold,
            })
        } else {
            Box::new(Honest)
        }
    }
}

/// What one scenario produced.
struct Outcome {
    report: SimReport,
    runs_identical: bool,
    blocks_per_hour: f64,
}

fn scenario_config(scenario: &Scenario, duration_ms: u64, threads: usize) -> SimConfig {
    SimConfig {
        nodes: HONEST_NODES + 1,
        seed: 0xd1f_f1cu64,
        difficulty_bits: 10,
        attempts_per_slice: BASE_ATTEMPTS,
        node_attempts: vec![(0, ADVERSARY_ATTEMPTS)],
        slice_ms: 100,
        fan_out: 2,
        duration_ms,
        threads,
        sync_threads: threads,
        retarget: Some(RetargetConfig {
            target_block_time_ms: TARGET_BLOCK_TIME_MS,
            gain: GAIN,
        }),
        timestamp_rule: scenario.defended.then_some(TimestampRule {
            max_future_drift_ms: MAX_DRIFT_MS,
            mtp_window: 11,
        }),
        ..SimConfig::default()
    }
}

fn run_scenario(scenario: &Scenario, duration_ms: u64, threads: usize) -> Outcome {
    let run = || {
        let config = scenario_config(scenario, duration_ms, threads);
        let mut sim = Simulation::with_strategies(
            config,
            |_| Sha256dPow,
            |id| {
                if id == 0 {
                    scenario.strategy()
                } else {
                    Box::new(Honest)
                }
            },
        );
        sim.run()
    };
    let (report, runs_identical) = run_twice(run, SimReport::fingerprint_extended);
    // Chain growth of the honest best chain, normalised to blocks/hour.
    let blocks_per_hour = report.tip_height as f64 * 3_600_000.0 / duration_ms as f64;
    Outcome {
        report,
        runs_identical,
        blocks_per_hour,
    }
}

fn main() {
    let duration_s = positional_arg(1, 60).max(20);
    let duration_ms = duration_s * 1_000;
    let threads = threads_arg(2);

    let mut scenarios = vec![Scenario {
        name: "honest".into(),
        skew_ms: 0,
        hop_threshold: 0.0,
        defended: false,
    }];
    for skew_ms in [8_000u64, 24_000] {
        for defended in [false, true] {
            scenarios.push(Scenario {
                name: format!(
                    "skew-{}s{}",
                    skew_ms / 1_000,
                    if defended { "-defended" } else { "" }
                ),
                skew_ms,
                hop_threshold: 0.0,
                defended,
            });
        }
    }
    for hop_threshold in [1_024.0f64, 2_048.0] {
        scenarios.push(Scenario {
            name: format!("hop-{hop_threshold:.0}"),
            skew_ms: 0,
            hop_threshold,
            defended: false,
        });
    }

    println!(
        "difficulty matrix: {} scenarios × 2 runs, {duration_s} s horizon, \
         {HONEST_NODES} honest nodes + 1 adversary, EMA retarget \
         (block time {TARGET_BLOCK_TIME_MS} ms, gain {GAIN})",
        scenarios.len()
    );

    let outcomes: Vec<(&Scenario, Outcome)> = scenarios
        .iter()
        .map(|scenario| {
            let outcome = run_scenario(scenario, duration_ms, threads);
            let r = &outcome.report;
            println!(
                "  {:<17} converged={} height={} blocks/h={:.0} deepest_reorg={} \
                 ts_rejected={} target_rejected={} deterministic={}",
                scenario.name,
                r.converged,
                r.tip_height,
                outcome.blocks_per_hour,
                r.max_reorg_depth,
                r.rejections.timestamp,
                r.rejections.target_policy,
                outcome.runs_identical,
            );
            (scenario, outcome)
        })
        .collect();

    let baseline = outcomes
        .iter()
        .find(|(s, _)| s.name == "honest")
        .map(|(_, o)| o.blocks_per_hour)
        .expect("the honest baseline ran");

    // Acceptance gates.
    let runs_identical = outcomes.iter().all(|(_, o)| o.runs_identical);
    let mut skew_inflates = true;
    let mut drift_rule_holds = true;
    for (scenario, outcome) in &outcomes {
        assert!(
            outcome.report.converged,
            "honest nodes must converge under {}: {}",
            scenario.name,
            outcome.report.fingerprint_extended()
        );
        if scenario.skew_ms > 0 && !scenario.defended {
            skew_inflates &= outcome.blocks_per_hour >= MIN_SKEW_INFLATION * baseline;
        }
        if scenario.skew_ms > 0 && scenario.defended {
            let undefended = outcomes
                .iter()
                .find(|(s, _)| s.skew_ms == scenario.skew_ms && !s.defended)
                .map(|(_, o)| o.blocks_per_hour)
                .expect("the undefended twin ran");
            drift_rule_holds &= outcome.blocks_per_hour <= undefended / MIN_DEFENCE_CRUSH
                && outcome.report.rejections.timestamp > 0;
        }
    }
    assert!(runs_identical, "every scenario must replay identically");
    assert!(
        skew_inflates,
        "undefended timestamp skew must inflate blocks/hour well above the honest baseline"
    );
    assert!(
        drift_rule_holds,
        "the timestamp rule must crush every skew's chain growth"
    );

    let json = render_json(
        &outcomes,
        duration_ms,
        baseline,
        runs_identical,
        skew_inflates,
        drift_rule_holds,
        threads,
    );
    write_json("BENCH_difficulty.json", &json);
}

/// Renders the sweep as a small, dependency-free JSON document.
fn render_json(
    outcomes: &[(&Scenario, Outcome)],
    duration_ms: u64,
    baseline: f64,
    runs_identical: bool,
    skew_inflates: bool,
    drift_rule_holds: bool,
    threads: usize,
) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"difficulty_adversary\",");
    let _ = writeln!(json, "{}", host_json(threads));
    let _ = writeln!(json, "  \"duration_ms\": {duration_ms},");
    let _ = writeln!(json, "  \"honest_nodes\": {HONEST_NODES},");
    let _ = writeln!(json, "  \"target_block_time_ms\": {TARGET_BLOCK_TIME_MS},");
    let _ = writeln!(json, "  \"gain\": {GAIN},");
    let _ = writeln!(json, "  \"baseline_blocks_per_hour\": {baseline:.1},");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, (scenario, outcome)) in outcomes.iter().enumerate() {
        let r = &outcome.report;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", scenario.name);
        let _ = writeln!(json, "      \"skew_ms\": {},", scenario.skew_ms);
        let _ = writeln!(
            json,
            "      \"hop_threshold\": {:.0},",
            scenario.hop_threshold
        );
        let _ = writeln!(json, "      \"defended\": {},", scenario.defended);
        let _ = writeln!(json, "      \"converged\": {},", r.converged);
        let _ = writeln!(json, "      \"tip_height\": {},", r.tip_height);
        let _ = writeln!(
            json,
            "      \"blocks_per_hour\": {:.1},",
            outcome.blocks_per_hour
        );
        let _ = writeln!(
            json,
            "      \"inflation_vs_honest\": {:.4},",
            outcome.blocks_per_hour / baseline
        );
        let _ = writeln!(json, "      \"deepest_reorg\": {},", r.max_reorg_depth);
        let _ = writeln!(
            json,
            "      \"timestamp_rejections\": {},",
            r.rejections.timestamp
        );
        let _ = writeln!(
            json,
            "      \"target_rejections\": {},",
            r.rejections.target_policy
        );
        let _ = writeln!(json, "      \"runs_identical\": {}", outcome.runs_identical);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"skew_inflates\": {skew_inflates},");
    let _ = writeln!(json, "  \"drift_rule_holds\": {drift_rule_holds},");
    let _ = writeln!(json, "  \"runs_identical\": {runs_identical}");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_strategies_match_their_knobs() {
        let skew = Scenario {
            name: "skew".into(),
            skew_ms: 9_000,
            hop_threshold: 0.0,
            defended: false,
        };
        assert_eq!(skew.strategy().name(), "timestamp-skew");
        let hop = Scenario {
            name: "hop".into(),
            skew_ms: 0,
            hop_threshold: 512.0,
            defended: false,
        };
        assert_eq!(hop.strategy().name(), "difficulty-hopping");
        let honest = Scenario {
            name: "honest".into(),
            skew_ms: 0,
            hop_threshold: 0.0,
            defended: false,
        };
        assert_eq!(honest.strategy().name(), "honest");
        // Defended scenarios install a drift bound below every swept skew.
        let config = scenario_config(
            &Scenario {
                defended: true,
                ..skew
            },
            20_000,
            2,
        );
        let rule = config.timestamp_rule.expect("defended installs the rule");
        assert!(rule.max_future_drift_ms < 8_000);
        assert!(config.retarget.is_some(), "the sweep is always adaptive");
    }

    #[test]
    fn a_short_skew_scenario_is_deterministic() {
        let scenario = Scenario {
            name: "skew-8s".into(),
            skew_ms: 8_000,
            hop_threshold: 0.0,
            defended: false,
        };
        let outcome = run_scenario(&scenario, 20_000, 2);
        assert!(outcome.runs_identical);
        assert!(outcome.report.converged);
    }
}
