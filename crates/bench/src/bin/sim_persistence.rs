//! Persistence harness: crash-consistent recovery under a sweep of
//! snapshot intervals × crash points, plus a torn-tail fault, with the
//! aggregate results written to `BENCH_persistence.json`.
//!
//! Every node of every run attaches a `hashcore_store::ChainStore`:
//! accepted blocks append to the CRC-framed segment log and the fork tree
//! snapshots every `snapshot_interval` appends. Each scenario then kills
//! one node at a deterministic simulated time, restarts it from disk
//! through the store's recovery ladder, and lets segment sync close
//! whatever gap opened while it was down.
//!
//! Scenarios:
//!
//! * **snap-\<I\>-at-\<F\>** — snapshot interval `I` ∈ {1, 4, 16}, crash at
//!   fraction `F` ∈ {1/4, 1/2} of the run. The crashed node's recovered
//!   fork tree must be *fingerprint-identical* to the tree it held at the
//!   instant of the crash (snapshot + log replay loses nothing).
//! * **torn-tail** — no periodic snapshots and the active log is sheared
//!   mid-record before the restart: recovery must detect the damage,
//!   truncate exactly the torn suffix (`recovery_lost_bytes > 0`), restore
//!   the surviving prefix, and still reconverge over segment sync.
//!
//! Acceptance gates asserted here (and grepped by CI from the JSON):
//! every scenario converges; every non-torn recovery is
//! fingerprint-identical (`recovered_identical`); the torn recovery
//! truncates and reconverges (`torn_tail_truncated`); and every scenario
//! — crash, recovery and all — replays byte-identically from its seed
//! (`runs_identical`). Each run gets a fresh scratch directory:
//! `ChainStore::create` refuses a directory that already holds store
//! files, and determinism must come from the seed, not leftover state.
//!
//! Usage:
//!
//! ```text
//! sim_persistence [duration-seconds] [threads]
//! ```
//!
//! `threads` drives both the scheduler workers and the segment verifier
//! (0 = all logical cores); it never changes a deterministic metric.

use hashcore_baselines::Sha256dPow;
use hashcore_bench::simbench::{host_json, positional_arg, run_twice, threads_arg, write_json};
use hashcore_net::{CrashRestart, PersistenceConfig, SimConfig, SimReport, Simulation};
use hashcore_store::TempDir;
use std::fmt::Write as _;

/// Nodes in every scenario; one of them crashes.
const NODES: usize = 4;
/// The node every scenario crashes (not node 0, which seeds the race).
const CRASH_NODE: usize = 1;
/// Snapshot intervals swept by the non-torn scenarios.
const SNAPSHOT_INTERVALS: [u64; 3] = [1, 4, 16];

/// One scenario of the sweep.
struct Scenario {
    name: String,
    /// Fork-tree snapshot every this many appended blocks (0 = never).
    snapshot_interval: u64,
    /// Crash point as simulated milliseconds into the run.
    crash_at_ms: u64,
    /// How long the node stays down.
    down_ms: u64,
    /// Bytes sheared off the active segment log before the restart.
    torn_tail_bytes: u64,
}

/// What one scenario produced.
struct Outcome {
    report: SimReport,
    runs_identical: bool,
}

fn scenario_config(
    scenario: &Scenario,
    duration_ms: u64,
    dir: &TempDir,
    threads: usize,
) -> SimConfig {
    SimConfig {
        nodes: NODES,
        seed: 0x5707_a6e5,
        difficulty_bits: 8,
        attempts_per_slice: 32,
        slice_ms: 100,
        fan_out: 2,
        duration_ms,
        threads,
        sync_threads: threads,
        persistence: Some(PersistenceConfig {
            dir: dir.path().to_path_buf(),
            snapshot_interval: scenario.snapshot_interval,
            sync_appends: false,
        }),
        crashes: vec![CrashRestart {
            node: CRASH_NODE,
            at_ms: scenario.crash_at_ms,
            down_ms: scenario.down_ms,
            torn_tail_bytes: scenario.torn_tail_bytes,
        }],
        ..SimConfig::default()
    }
}

fn run_scenario(scenario: &Scenario, duration_ms: u64, threads: usize) -> Outcome {
    let run = || {
        let dir = TempDir::new(&scenario.name).expect("a scratch directory is creatable");
        let config = scenario_config(scenario, duration_ms, &dir, threads);
        Simulation::new(config, |_| Sha256dPow).run()
    };
    let (report, runs_identical) = run_twice(run, SimReport::fingerprint_extended);
    Outcome {
        report,
        runs_identical,
    }
}

fn main() {
    let duration_s = positional_arg(1, 40).max(16);
    let duration_ms = duration_s * 1_000;
    let threads = threads_arg(2);

    let mut scenarios = Vec::new();
    for interval in SNAPSHOT_INTERVALS {
        for (label, fraction) in [("quarter", 4u64), ("half", 2)] {
            scenarios.push(Scenario {
                name: format!("snap-{interval}-at-{label}"),
                snapshot_interval: interval,
                crash_at_ms: duration_ms / fraction,
                down_ms: duration_ms / 8,
                torn_tail_bytes: 0,
            });
        }
    }
    scenarios.push(Scenario {
        name: "torn-tail".into(),
        snapshot_interval: 0,
        crash_at_ms: duration_ms / 2,
        down_ms: duration_ms / 8,
        torn_tail_bytes: 7,
    });

    println!(
        "persistence matrix: {} scenarios × 2 runs, {duration_s} s horizon, \
         {NODES} nodes, node {CRASH_NODE} crashes and recovers from disk",
        scenarios.len()
    );

    let outcomes: Vec<(&Scenario, Outcome)> = scenarios
        .iter()
        .map(|scenario| {
            let outcome = run_scenario(scenario, duration_ms, threads);
            let r = &outcome.report;
            println!(
                "  {:<18} converged={} height={} crashes={} identical_recoveries={} \
                 replayed={} lost_bytes={} dropped_while_down={} deterministic={}",
                scenario.name,
                r.converged,
                r.tip_height,
                r.crash_restarts,
                r.recoveries_identical,
                r.blocks_replayed,
                r.recovery_lost_bytes,
                r.messages_lost_to_crashes,
                outcome.runs_identical,
            );
            (scenario, outcome)
        })
        .collect();

    // Acceptance gates. A torn tail legitimately recovers a *prefix* of
    // the pre-crash tree, so the fingerprint-identity gate covers the
    // non-torn scenarios and the torn scenario gets its own: damage
    // detected, bytes truncated, and the node still reconverges.
    let runs_identical = outcomes.iter().all(|(_, o)| o.runs_identical);
    let recovered_identical =
        outcomes
            .iter()
            .filter(|(s, _)| s.torn_tail_bytes == 0)
            .all(|(_, o)| {
                o.report.crash_restarts > 0
                    && o.report.recoveries_identical == o.report.crash_restarts
            });
    let torn_tail_truncated = outcomes
        .iter()
        .filter(|(s, _)| s.torn_tail_bytes > 0)
        .all(|(_, o)| o.report.recovery_lost_bytes > 0 && o.report.converged);
    for (scenario, outcome) in &outcomes {
        assert!(
            outcome.report.converged,
            "the restarted node must reconverge under {}: {}",
            scenario.name,
            outcome.report.fingerprint_extended()
        );
    }
    assert!(
        recovered_identical,
        "every clean recovery must restore the exact pre-crash fork tree"
    );
    assert!(
        torn_tail_truncated,
        "the torn tail must be detected, truncated and healed over sync"
    );
    assert!(runs_identical, "every scenario must replay identically");

    let json = render_json(
        &outcomes,
        duration_ms,
        recovered_identical,
        torn_tail_truncated,
        runs_identical,
        threads,
    );
    write_json("BENCH_persistence.json", &json);
}

/// Renders the sweep as a small, dependency-free JSON document.
fn render_json(
    outcomes: &[(&Scenario, Outcome)],
    duration_ms: u64,
    recovered_identical: bool,
    torn_tail_truncated: bool,
    runs_identical: bool,
    threads: usize,
) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"persistence_recovery\",");
    let _ = writeln!(json, "{}", host_json(threads));
    let _ = writeln!(json, "  \"duration_ms\": {duration_ms},");
    let _ = writeln!(json, "  \"nodes\": {NODES},");
    let _ = writeln!(json, "  \"crash_node\": {CRASH_NODE},");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, (scenario, outcome)) in outcomes.iter().enumerate() {
        let r = &outcome.report;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", scenario.name);
        let _ = writeln!(
            json,
            "      \"snapshot_interval\": {},",
            scenario.snapshot_interval
        );
        let _ = writeln!(json, "      \"crash_at_ms\": {},", scenario.crash_at_ms);
        let _ = writeln!(json, "      \"down_ms\": {},", scenario.down_ms);
        let _ = writeln!(
            json,
            "      \"torn_tail_bytes\": {},",
            scenario.torn_tail_bytes
        );
        let _ = writeln!(json, "      \"converged\": {},", r.converged);
        let _ = writeln!(json, "      \"tip_height\": {},", r.tip_height);
        let _ = writeln!(json, "      \"crash_restarts\": {},", r.crash_restarts);
        let _ = writeln!(
            json,
            "      \"recoveries_identical\": {},",
            r.recoveries_identical
        );
        let _ = writeln!(json, "      \"blocks_replayed\": {},", r.blocks_replayed);
        let _ = writeln!(
            json,
            "      \"recovery_lost_bytes\": {},",
            r.recovery_lost_bytes
        );
        let _ = writeln!(
            json,
            "      \"messages_lost_to_crashes\": {},",
            r.messages_lost_to_crashes
        );
        let _ = writeln!(json, "      \"runs_identical\": {}", outcome.runs_identical);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"recovered_identical\": {recovered_identical},");
    let _ = writeln!(json, "  \"torn_tail_truncated\": {torn_tail_truncated},");
    let _ = writeln!(json, "  \"runs_identical\": {runs_identical}");
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_crash_scenario_recovers_identically_and_replays() {
        let scenario = Scenario {
            name: "snap-2-test".into(),
            snapshot_interval: 2,
            crash_at_ms: 8_000,
            down_ms: 3_000,
            torn_tail_bytes: 0,
        };
        let outcome = run_scenario(&scenario, 16_000, 2);
        assert!(outcome.runs_identical);
        assert!(outcome.report.converged);
        assert_eq!(outcome.report.crash_restarts, 1);
        assert_eq!(outcome.report.recoveries_identical, 1);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let scenario = Scenario {
            name: "torn-test".into(),
            snapshot_interval: 0,
            crash_at_ms: 8_000,
            down_ms: 3_000,
            torn_tail_bytes: 7,
        };
        let outcome = run_scenario(&scenario, 16_000, 2);
        let json = render_json(&[(&scenario, outcome)], 16_000, true, true, true, 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"persistence_recovery\""));
        assert!(json.contains("\"recovered_identical\": true"));
        assert!(json.ends_with("}\n"));
    }
}
