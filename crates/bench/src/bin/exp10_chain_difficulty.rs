//! Experiment E10 — end-to-end HashCore chain with difficulty retargeting.
//!
//! Mines a short blockchain whose PoW is the full HashCore function
//! (hash gate → widget generation → widget execution → hash gate), prints
//! the difficulty trajectory, and re-validates the whole chain — the
//! end-to-end integration the paper's Section I context assumes.
//!
//! Usage: `exp10_chain_difficulty [blocks]` (default 8).

use hashcore::HashCore;
use hashcore_baselines::HashCorePow;
use hashcore_bench::{widget_count_from_args, Experiment};
use hashcore_chain::{Blockchain, ChainConfig};
use std::time::Instant;

fn main() {
    let blocks = widget_count_from_args(8);
    let experiment = Experiment::standard();
    println!(
        "== Experiment E10: HashCore chain with difficulty retargeting ({blocks} blocks) ==\n"
    );

    let pow = HashCorePow::new(HashCore::new(experiment.reference.clone()));
    let mut chain = Blockchain::new(
        pow,
        ChainConfig {
            target_block_time: 15,
            initial_difficulty_bits: 2,
            retarget_gain: 0.3,
            seconds_per_attempt: 5.0,
        },
    );

    println!(
        "{:>6} {:>10} {:>18} {:>14} {:>12}",
        "height", "nonce", "difficulty (hashes)", "sim time (s)", "wall (s)"
    );
    for height in 0..blocks {
        let start = Instant::now();
        let transactions = vec![format!("coinbase-{height}").into_bytes()];
        let difficulty = chain.current_difficulty();
        match chain
            .mine_block(&transactions, 4_096)
            .map(|block| block.header.nonce)
        {
            Ok(nonce) => {
                println!(
                    "{:>6} {:>10} {:>18.1} {:>14} {:>12.2}",
                    height + 1,
                    nonce,
                    difficulty,
                    chain.now(),
                    start.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                println!("mining stopped at height {height}: {e}");
                break;
            }
        }
    }

    match chain.validate() {
        Ok(()) => println!("\nfull chain re-validation: OK ({} blocks)", chain.height()),
        Err(e) => println!("\nfull chain re-validation FAILED: {e}"),
    }
    println!(
        "difficulty history (expected hashes per block): {:?}",
        chain
            .difficulty_history()
            .iter()
            .map(|d| (*d * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!("\nEvery verification above re-generated and re-executed the block's widget");
    println!("from the header alone — the property that makes HashCore usable as a PoW.");
}
