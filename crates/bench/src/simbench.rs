//! Shared plumbing for the `sim_*` network-simulation harnesses.
//!
//! Every simulation bench follows the same contract: parse a couple of
//! positional arguments, run each deterministic scenario **twice** and
//! compare a fingerprint to prove the run replays byte-identically from
//! its seed, then write a small dependency-free JSON document that CI
//! greps for the acceptance gates. The three pieces of that contract live
//! here so the binaries only contain what is unique to their scenario
//! matrix.

/// Parses positional argument `index` as a `u64`, falling back to
/// `default` when absent or unparsable.
pub fn positional_arg(index: usize, default: u64) -> u64 {
    std::env::args()
        .nth(index)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(default)
}

/// Logical CPUs of the bench host (1 when the count is unavailable).
pub fn logical_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |cores| cores.get())
}

/// Parses positional argument `index` as a worker-thread count. Absent,
/// unparsable or `0` means "all logical cores" — so bench sweeps choose
/// parallelism explicitly while the default exercises the host fully.
pub fn threads_arg(index: usize) -> usize {
    match positional_arg(index, 0) {
        0 => logical_cores(),
        threads => threads as usize,
    }
}

/// Renders the host-metadata JSON fragment every `BENCH_*.json` embeds:
/// the machine's logical core count and the thread count the bench
/// actually used. A single-CPU host showing no parallel speedup is then
/// explainable from the artifact alone.
pub fn host_json(threads_used: usize) -> String {
    format!(
        "  \"host\": {{ \"logical_cores\": {}, \"threads_used\": {} }},",
        logical_cores(),
        threads_used
    )
}

/// Runs `run` twice and compares the two results under `fingerprint`.
///
/// Returns the first result and whether the second replayed identically.
/// The fingerprint closure decides how strict "identical" is — the
/// network bench compares `SimReport::fingerprint`, the adversary and
/// difficulty benches the extended variant, optionally folding in
/// scenario-level figures (bit-exact floats via [`f64::to_bits`]).
pub fn run_twice<R>(mut run: impl FnMut() -> R, fingerprint: impl Fn(&R) -> String) -> (R, bool) {
    let first = run();
    let second = run();
    let identical = fingerprint(&first) == fingerprint(&second);
    (first, identical)
}

/// Writes a rendered JSON document to `path` and announces it on stdout —
/// the closing step of every simulation bench.
///
/// # Panics
///
/// When `path` is not writable: a bench that cannot record its results
/// has failed.
pub fn write_json(path: &str, json: &str) {
    std::fs::write(path, json).unwrap_or_else(|error| panic!("{path} is writable: {error}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_args_fall_back_to_defaults() {
        assert_eq!(positional_arg(99, 42), 42);
    }

    #[test]
    fn threads_arg_defaults_to_all_cores() {
        assert_eq!(threads_arg(99), logical_cores());
        assert!(logical_cores() >= 1);
    }

    #[test]
    fn host_json_embeds_cores_and_threads() {
        let json = host_json(3);
        assert!(json.contains("\"logical_cores\""));
        assert!(json.contains("\"threads_used\": 3"));
    }

    #[test]
    fn run_twice_detects_divergence() {
        let mut calls = 0u64;
        let (first, identical) = run_twice(
            || {
                calls += 1;
                7u64
            },
            |r| r.to_string(),
        );
        assert_eq!((first, identical, calls), (7, true, 2));

        let mut counter = 0u64;
        let (_, identical) = run_twice(
            || {
                counter += 1;
                counter
            },
            |r| r.to_string(),
        );
        assert!(!identical, "a nondeterministic run must be flagged");
    }
}
