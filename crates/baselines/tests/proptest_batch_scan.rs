//! Property tests for `scan_nonce_batch` vs `scan_nonces` equivalence.
//!
//! The batch scan's contract is that it visits *exactly* the scalar scan's
//! nonce sequence — same start, same wraparound through `u64::MAX`, same
//! first hit and digest — for every baseline PoW. Random starts (including
//! points that wrap mid-scan), attempt counts straddling the lane width,
//! and leading-zero targets from "every nonce hits" to "no nonce hits"
//! exercise the batch/remainder split and the resume arithmetic.

use hashcore::{HashCore, MiningInput, Target};
use hashcore_baselines::{
    HashCorePow, MemoryHardPow, PreparedPow, RandomxLitePow, SelectionPow, Sha256dPow,
};
use hashcore_profile::PerformanceProfile;
use proptest::prelude::*;

/// Starts that exercise plain ranges and ranges wrapping through u64::MAX.
fn starts() -> impl Strategy<Value = u64> {
    prop_oneof![
        any::<u64>(),
        (0u64..64).prop_map(|k| u64::MAX - k),
        Just(0u64),
    ]
}

fn assert_equivalent<P: PreparedPow>(
    pow: &P,
    header: &[u8],
    start: u64,
    attempts: u64,
    zero_bits: u32,
) -> Result<(), TestCaseError> {
    let target = Target::from_leading_zero_bits(zero_bits);
    let scalar = pow.scan_nonces(
        &mut MiningInput::new(header),
        target,
        start,
        attempts,
        &mut P::Scratch::default(),
    );
    let batch = pow.scan_nonce_batch(
        &mut MiningInput::new(header),
        target,
        start,
        attempts,
        &mut P::Scratch::default(),
    );
    prop_assert!(
        batch == scalar,
        "{} start {} attempts {} bits {}: {:?} vs {:?}",
        pow.name(),
        start,
        attempts,
        zero_bits,
        batch,
        scalar
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cheap, fully-lane-parallel baseline gets the widest sweep.
    #[test]
    fn sha256d_batch_equals_scalar(
        start in starts(),
        attempts in 0u64..40,
        zero_bits in 0u32..7,
        header in prop::collection::vec(any::<u8>(), 0usize..65),
    ) {
        assert_equivalent(&Sha256dPow, &header, start, attempts, zero_bits)?;
    }
}

proptest! {
    // The widget-executing baselines cost milliseconds per nonce; fewer
    // cases with tighter attempt ranges still cover batch + remainder +
    // wrap because `starts()` pins some starts right below u64::MAX.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn memory_hard_batch_equals_scalar(
        start in starts(),
        attempts in 0u64..14,
        zero_bits in 0u32..5,
    ) {
        assert_equivalent(
            &MemoryHardPow::new(16 * 1024, 2),
            b"prop-header",
            start,
            attempts,
            zero_bits,
        )?;
    }

    #[test]
    fn randomx_lite_batch_equals_scalar(
        start in starts(),
        attempts in 0u64..14,
        zero_bits in 0u32..5,
    ) {
        assert_equivalent(
            &RandomxLitePow::new(1_500),
            b"prop-header",
            start,
            attempts,
            zero_bits,
        )?;
    }

    #[test]
    fn selection_batch_equals_scalar(
        start in starts(),
        attempts in 0u64..14,
        zero_bits in 0u32..5,
    ) {
        let mut profile = PerformanceProfile::leela_like();
        profile.target_dynamic_instructions = 1_500;
        assert_equivalent(
            &SelectionPow::new(profile, 4, 1),
            b"prop-header",
            start,
            attempts,
            zero_bits,
        )?;
    }

    #[test]
    fn hashcore_batch_equals_scalar(
        start in starts(),
        attempts in 0u64..14,
        zero_bits in 0u32..5,
    ) {
        let mut profile = PerformanceProfile::leela_like();
        profile.target_dynamic_instructions = 1_500;
        assert_equivalent(
            &HashCorePow::new(HashCore::new(profile)),
            b"prop-header",
            start,
            attempts,
            zero_bits,
        )?;
    }
}
