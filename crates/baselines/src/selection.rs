//! The widget-selection PoW variant (Section VI-A).
//!
//! Instead of generating a fresh widget per hash, this variant keeps a fixed,
//! pre-generated pool of widgets and uses the hash seed only to *select* an
//! ordered subset of them to execute. The paper discusses the tradeoffs:
//! selection needs a (potentially very large) stored pool and risks per-widget
//! ASICs, but skips the generation cost on every hash, so widget execution is
//! a larger share of the total work. Experiment E7 quantifies exactly that
//! tradeoff with this implementation.

use crate::{scan_lane_batches, PowFunction, PreparedPow, ResourceClass};
use hashcore::{MiningInput, Target};
use hashcore_crypto::{hmac::HmacStream, sha256, Digest256, Sha256};
use hashcore_gen::{GeneratedWidget, WidgetGenerator};
use hashcore_profile::{HashSeed, PerformanceProfile};
use hashcore_vm::{ExecScratch, Executor, PreparedProgram};

/// A PoW function that selects widgets from a fixed pool.
///
/// The pool is pre-decoded at construction: the stored widgets never change,
/// so selection pays the validate/pre-decode cost once per pool entry
/// instead of once per execution — exactly the trade the paper's Section
/// VI-A discussion describes (storage for per-hash work).
#[derive(Debug, Clone)]
pub struct SelectionPow {
    pool: Vec<GeneratedWidget>,
    prepared: Vec<PreparedProgram>,
    widgets_per_hash: usize,
}

impl SelectionPow {
    /// Builds a pool of `pool_size` widgets from `profile` (using fixed,
    /// publicly known pool seeds) and executes `widgets_per_hash` of them per
    /// PoW evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` or `widgets_per_hash` is zero.
    pub fn new(profile: PerformanceProfile, pool_size: usize, widgets_per_hash: usize) -> Self {
        assert!(pool_size > 0, "pool must contain at least one widget");
        assert!(
            widgets_per_hash > 0,
            "must execute at least one widget per hash"
        );
        let generator = WidgetGenerator::new(profile);
        let pool: Vec<GeneratedWidget> = (0..pool_size)
            .map(|i| {
                // Pool seeds are fixed and public: the digest of the pool index.
                let seed = HashSeed::new(sha256(format!("hashcore-pool-{i}").as_bytes()));
                generator.generate(&seed)
            })
            .collect();
        let prepared = pool
            .iter()
            .map(|w| PreparedProgram::new(&w.program).expect("pool widgets validate"))
            .collect();
        Self {
            pool,
            prepared,
            widgets_per_hash,
        }
    }

    /// Number of widgets stored in the pool.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Total encoded size of the stored pool in bytes — the storage cost the
    /// paper's discussion weighs against generation-time cost.
    pub fn pool_storage_bytes(&self) -> usize {
        self.pool
            .iter()
            .map(|w| hashcore_isa::encode(&w.program).len())
            .sum()
    }

    /// The seed-onward tail of [`PreparedPow::pow_hash_scratch`]: widget
    /// selection, execution and the output hash. The batch scan computes
    /// the four seeds lane-parallel and enters here per lane.
    fn hash_from_seed(&self, seed: HashSeed, scratch: &mut ExecScratch) -> Digest256 {
        // The seed drives an HMAC stream that picks the ordered widget subset.
        let mut selector = HmacStream::new(seed.as_bytes());
        let mut gate = Sha256::new();
        gate.update(seed.as_bytes());
        for _ in 0..self.widgets_per_hash {
            let index = selector.next_bounded(self.pool.len() as u64) as usize;
            let widget = &self.pool[index];
            let mut config = widget.exec_config();
            config.collect_trace = false;
            // The memory seed still comes from the block-specific hash seed,
            // so executing a pooled widget remains input-dependent.
            config.memory_seed ^= selector.next_u64();
            Executor::new(config)
                .execute_prepared(&self.prepared[index], scratch)
                .expect("pool widgets always halt within their step limit");
            gate.update(&(index as u64).to_le_bytes());
            gate.update(scratch.output());
        }
        gate.finalize()
    }
}

impl PowFunction for SelectionPow {
    fn name(&self) -> &'static str {
        "widget_selection"
    }

    fn pow_hash(&self, input: &[u8]) -> Digest256 {
        self.pow_hash_scratch(input, &mut ExecScratch::new())
    }

    fn dominant_resource(&self) -> ResourceClass {
        ResourceClass::GeneralPurpose
    }
}

impl PreparedPow for SelectionPow {
    /// Selection executes pre-decoded pool programs, so the only per-worker
    /// state is the execution scratch.
    type Scratch = ExecScratch;

    fn pow_hash_scratch(&self, input: &[u8], scratch: &mut Self::Scratch) -> Digest256 {
        self.hash_from_seed(HashSeed::new(sha256(input)), scratch)
    }

    /// The seed derivation runs four lanes wide; selection and execution
    /// stay per-lane (each lane's seed picks its own widget subset),
    /// sharing the one execution scratch.
    fn scan_nonce_batch(
        &self,
        input: &mut MiningInput,
        target: Target,
        start: u64,
        attempts: u64,
        scratch: &mut Self::Scratch,
    ) -> Option<(u64, Digest256)> {
        scan_lane_batches(
            self,
            input,
            target,
            start,
            attempts,
            scratch,
            |pow, header, nonces, scratch| {
                crate::seeds_x4(header, nonces)
                    .map(|seed| pow.hash_from_seed(HashSeed::new(seed), scratch))
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool() -> SelectionPow {
        let mut profile = PerformanceProfile::leela_like();
        profile.target_dynamic_instructions = 2_000;
        SelectionPow::new(profile, 4, 2)
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        let pow = small_pool();
        assert_eq!(pow.pow_hash(b"a"), pow.pow_hash(b"a"));
        assert_ne!(pow.pow_hash(b"a"), pow.pow_hash(b"b"));
    }

    #[test]
    fn pool_metadata() {
        let pow = small_pool();
        assert_eq!(pow.pool_size(), 4);
        assert!(pow.pool_storage_bytes() > 4 * 1_000);
    }

    #[test]
    #[should_panic(expected = "at least one widget")]
    fn empty_pool_panics() {
        SelectionPow::new(PerformanceProfile::leela_like(), 0, 1);
    }
}
