//! # hashcore-baselines
//!
//! Comparator Proof-of-Work functions.
//!
//! The paper positions HashCore against three families of prior designs
//! (Sections II and VI):
//!
//! * **Compute-bound cryptographic PoW** — Bitcoin's double SHA-256, the
//!   design most friendly to ASICs ([`Sha256dPow`]),
//! * **Memory-hard PoW** — scrypt / Equihash / Balloon style functions that
//!   force a large scratchpad ([`MemoryHardPow`]),
//! * **Random-program PoW** — RandomX-style explicit utilisation of a
//!   virtual machine's structures by uniformly random programs
//!   ([`RandomxLitePow`]), which the paper contrasts with HashCore's
//!   profile-targeted generation,
//! * **Widget selection** — the Section VI-A alternative in which widgets
//!   are *selected* from a fixed pre-generated pool instead of generated at
//!   run time ([`SelectionPow`]).
//!
//! Every baseline implements the common [`PowFunction`] trait so the
//! experiment harness (E7, E8) can sweep them uniformly, and
//! [`HashCorePow`] adapts the real `hashcore` implementation to the same
//! trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod memory_hard;
mod randomx_lite;
mod selection;
mod sha256d_pow;

pub use memory_hard::{MemoryHardPow, MemoryHardScratch};
pub use randomx_lite::RandomxLitePow;
pub use selection::SelectionPow;
pub use sha256d_pow::Sha256dPow;

pub use hashcore::NONCE_LANES;
use hashcore::{HashCore, MiningInput, Target, VerifyCost};
use hashcore_crypto::{sha256_x4_parts, Digest256};

/// A Proof-of-Work function: a deterministic map from arbitrary input bytes
/// to a 256-bit digest, plus enough metadata for comparative reporting.
pub trait PowFunction {
    /// Short name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Evaluates the PoW digest for `input`.
    fn pow_hash(&self, input: &[u8]) -> Digest256;

    /// The dominant hardware resource the function stresses, as a coarse
    /// label used by the mining-market model (E9).
    fn dominant_resource(&self) -> ResourceClass;

    /// Mines the first nonce in `0..max_attempts` meeting `target`, if any.
    fn mine(&self, header: &[u8], target: Target, max_attempts: u64) -> Option<(u64, Digest256)> {
        for nonce in 0..max_attempts {
            let mut input = header.to_vec();
            input.extend_from_slice(&nonce.to_le_bytes());
            let digest = self.pow_hash(&input);
            if target.is_met_by(&digest) {
                return Some((nonce, digest));
            }
        }
        None
    }
}

/// A [`PowFunction`] that can evaluate through reusable per-worker scratch
/// state.
///
/// Batch consumers — `hashcore-chain`'s parallel chain validation, mining
/// loops, experiment sweeps — evaluate the same function over many inputs
/// on long-lived workers. This trait lets each worker own one
/// `Self::Scratch` and reuse its buffers across evaluations, mirroring the
/// `HashScratch` discipline of the real HashCore hot path. The digest
/// contract is strict: [`PreparedPow::pow_hash_scratch`] must return exactly
/// the digest [`PowFunction::pow_hash`] returns for the same input,
/// whatever state the scratch is in.
///
/// This is a separate trait (rather than an associated type on
/// [`PowFunction`]) so `dyn PowFunction` stays object-safe for the
/// experiment harnesses that sweep heterogeneous baselines.
pub trait PreparedPow: PowFunction {
    /// Reusable per-worker evaluation state; `Default` produces a fresh,
    /// empty scratch whose buffers grow on first use.
    type Scratch: Default + Send;

    /// Evaluates the PoW digest for `input`, reusing `scratch`'s buffers.
    fn pow_hash_scratch(&self, input: &[u8], scratch: &mut Self::Scratch) -> Digest256;

    /// Scans `attempts` nonces of the header held in `input` starting at
    /// `start`, returning the first `(nonce, digest)` meeting `target`.
    ///
    /// This is the shared mining loop of `Blockchain::mine_block` and the
    /// network simulation's nodes: all per-attempt state lives in the
    /// caller's `input` and `scratch`, so the scan performs no steady-state
    /// allocation.
    ///
    /// # Nonce order and wraparound
    ///
    /// This method *defines* the scan sequence every implementation — and
    /// [`PreparedPow::scan_nonce_batch`] — must follow: attempt `k`
    /// evaluates nonce `start.wrapping_add(k)`, so the sequence wraps
    /// through `u64::MAX` to `0` and never revisits a nonce within one call
    /// (the nonce space is a cycle of length 2⁶⁴ ≥ `attempts`). A caller
    /// resuming an unfinished scan passes `start.wrapping_add(attempts)` as
    /// the next start — `start + attempts` would overflow near the top of
    /// the space and rescan nonces.
    fn scan_nonces(
        &self,
        input: &mut MiningInput,
        target: Target,
        start: u64,
        attempts: u64,
        scratch: &mut Self::Scratch,
    ) -> Option<(u64, Digest256)> {
        for offset in 0..attempts {
            let nonce = start.wrapping_add(offset);
            let digest = self.pow_hash_scratch(input.with_nonce(nonce), scratch);
            if target.is_met_by(&digest) {
                return Some((nonce, digest));
            }
        }
        None
    }

    /// Scans exactly the nonce sequence of [`PreparedPow::scan_nonces`] —
    /// same order, same wraparound, same hit and digest — evaluating
    /// [`NONCE_LANES`] nonces per batch where the function's structure
    /// allows lanes to share work.
    ///
    /// The default implementation delegates to the scalar scan;
    /// implementations with a lane-parallel path (the SHA-256 hash gates)
    /// override it via [`scan_lane_batches`]. Callers may use the two
    /// methods interchangeably, including resuming a scan started by the
    /// other at `start.wrapping_add(attempts)`.
    fn scan_nonce_batch(
        &self,
        input: &mut MiningInput,
        target: Target,
        start: u64,
        attempts: u64,
        scratch: &mut Self::Scratch,
    ) -> Option<(u64, Digest256)> {
        self.scan_nonces(input, target, start, attempts, scratch)
    }

    /// The nominal verifier-cost budget one evaluation of this function is
    /// expected to pay — what cost-aware difficulty normalises
    /// [`PreparedPow::pow_hash_cost_scratch`] observations against.
    fn nominal_cost(&self) -> VerifyCost {
        VerifyCost::NOMINAL
    }

    /// Evaluates the PoW digest for `input` together with the
    /// verifier-cost observation of that evaluation.
    ///
    /// The digest contract is as strict as the scratch path's: the returned
    /// digest must be byte-identical to [`PreparedPow::pow_hash_scratch`]
    /// for the same input. The cost must be a pure function of the input —
    /// every node observing a header must book the same cost, or
    /// cost-committing consensus would fork. Functions without a meaningful
    /// widget stage report their nominal budget (cost ratio 1), which
    /// makes cost-aware difficulty degrade gracefully to time-only
    /// retargeting.
    fn pow_hash_cost_scratch(
        &self,
        input: &[u8],
        scratch: &mut Self::Scratch,
    ) -> (Digest256, VerifyCost) {
        (self.pow_hash_scratch(input, scratch), self.nominal_cost())
    }
}

/// Drives a [`PreparedPow::scan_nonce_batch`] override: full batches of
/// [`NONCE_LANES`] consecutive nonces go through `batch` (which must return
/// the [`PowFunction::pow_hash`] digest of `header ‖ nonce` per lane, in
/// lane order), and the `attempts % NONCE_LANES` remainder falls back to the
/// scalar [`PreparedPow::scan_nonces`]. Nonce order — including wraparound —
/// is exactly the scalar scan's.
pub fn scan_lane_batches<P: PreparedPow + ?Sized>(
    pow: &P,
    input: &mut MiningInput,
    target: Target,
    start: u64,
    attempts: u64,
    scratch: &mut P::Scratch,
    mut batch: impl FnMut(&P, &[u8], [u64; NONCE_LANES], &mut P::Scratch) -> [Digest256; NONCE_LANES],
) -> Option<(u64, Digest256)> {
    let mut done = 0u64;
    while attempts - done >= NONCE_LANES as u64 {
        let base = start.wrapping_add(done);
        let nonces: [u64; NONCE_LANES] = std::array::from_fn(|lane| base.wrapping_add(lane as u64));
        let digests = batch(pow, input.header_bytes(), nonces, scratch);
        for (nonce, digest) in nonces.into_iter().zip(digests) {
            done += 1;
            if target.is_met_by(&digest) {
                return Some((nonce, digest));
            }
        }
    }
    pow.scan_nonces(
        input,
        target,
        start.wrapping_add(done),
        attempts - done,
        scratch,
    )
}

/// Computes the four seeds `G(header ‖ nonce_i)` in one multi-lane pass —
/// the shared first step of every SHA-256-gated batch scan.
pub(crate) fn seeds_x4(header: &[u8], nonces: [u64; NONCE_LANES]) -> [Digest256; NONCE_LANES] {
    let nonce_bytes = nonces.map(u64::to_le_bytes);
    let parts: [[&[u8]; 2]; NONCE_LANES] = [
        [header, &nonce_bytes[0]],
        [header, &nonce_bytes[1]],
        [header, &nonce_bytes[2]],
        [header, &nonce_bytes[3]],
    ];
    sha256_x4_parts([&parts[0], &parts[1], &parts[2], &parts[3]])
}

/// Coarse classification of what a PoW function stresses, used by the
/// mining-market cost model to reason about how much an ASIC can strip away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceClass {
    /// A single fixed cryptographic circuit (ideal ASIC territory).
    FixedFunction,
    /// Memory capacity / bandwidth.
    Memory,
    /// The full breadth of a general purpose processor.
    GeneralPurpose,
}

/// Adapter implementing [`PowFunction`] for the real HashCore function.
#[derive(Debug, Clone)]
pub struct HashCorePow {
    inner: HashCore,
}

impl HashCorePow {
    /// Wraps a configured [`HashCore`] instance.
    pub fn new(inner: HashCore) -> Self {
        Self { inner }
    }

    /// The wrapped instance.
    pub fn inner(&self) -> &HashCore {
        &self.inner
    }
}

impl PowFunction for HashCorePow {
    fn name(&self) -> &'static str {
        "hashcore"
    }

    fn pow_hash(&self, input: &[u8]) -> Digest256 {
        self.inner
            .hash_digest(input)
            .expect("generated widgets always execute within their step limit")
    }

    fn dominant_resource(&self) -> ResourceClass {
        ResourceClass::GeneralPurpose
    }
}

impl PreparedPow for HashCorePow {
    type Scratch = hashcore::HashScratch;

    fn pow_hash_scratch(&self, input: &[u8], scratch: &mut Self::Scratch) -> Digest256 {
        self.inner
            .hash_with_scratch(input, scratch)
            .expect("generated widgets always execute within their step limit")
            .digest
    }

    /// The profile budget: the generator's target dynamic instructions per
    /// widget times the widgets per hash. Output bytes (the paper's
    /// 20–38 kB) are omitted from the budget — they are orders of magnitude
    /// below the instruction count for any realistic profile, so the
    /// observed ratio stays within noise of 1 for on-profile widgets.
    fn nominal_cost(&self) -> VerifyCost {
        VerifyCost {
            instructions: self
                .inner
                .generator()
                .base_profile()
                .target_dynamic_instructions
                * self.inner.widgets_per_hash() as u64,
            output_bytes: 0,
        }
    }

    /// The real thing: one full evaluation, with the widget stage's actual
    /// dynamic instructions and output bytes as the cost observation.
    fn pow_hash_cost_scratch(
        &self,
        input: &[u8],
        scratch: &mut Self::Scratch,
    ) -> (Digest256, VerifyCost) {
        let out = self
            .inner
            .hash_with_scratch(input, scratch)
            .expect("generated widgets always execute within their step limit");
        (out.digest, VerifyCost::from_widget(&out.widget))
    }

    /// Full batches run the first hash gate four lanes at a time through
    /// [`HashCore::hash_nonce_batch_with_scratch`]; the widget stage and
    /// second gate stay per-lane (widget outputs differ in shape per seed).
    fn scan_nonce_batch(
        &self,
        input: &mut MiningInput,
        target: Target,
        start: u64,
        attempts: u64,
        scratch: &mut Self::Scratch,
    ) -> Option<(u64, Digest256)> {
        scan_lane_batches(
            self,
            input,
            target,
            start,
            attempts,
            scratch,
            |pow, header, nonces, scratch| {
                pow.inner
                    .hash_nonce_batch_with_scratch(header, nonces, scratch)
                    .map(|lane| {
                        lane.expect("generated widgets always execute within their step limit")
                            .digest
                    })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_profile::PerformanceProfile;

    fn all_baselines() -> Vec<Box<dyn PowFunction>> {
        let mut profile = PerformanceProfile::leela_like();
        profile.target_dynamic_instructions = 3_000;
        vec![
            Box::new(Sha256dPow),
            Box::new(MemoryHardPow::new(64 * 1024, 2)),
            Box::new(RandomxLitePow::new(3_000)),
            Box::new(SelectionPow::new(profile.clone(), 8, 2)),
            Box::new(HashCorePow::new(HashCore::new(profile))),
        ]
    }

    #[test]
    fn all_pow_functions_are_deterministic_and_distinct() {
        let input = b"comparative input";
        let mut digests = Vec::new();
        for pow in all_baselines() {
            let a = pow.pow_hash(input);
            let b = pow.pow_hash(input);
            assert_eq!(a, b, "{} must be deterministic", pow.name());
            assert_ne!(a, pow.pow_hash(b"other input"), "{}", pow.name());
            digests.push((pow.name(), a));
        }
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(
                    digests[i].1, digests[j].1,
                    "{} vs {}",
                    digests[i].0, digests[j].0
                );
            }
        }
    }

    #[test]
    fn names_and_resources_are_assigned() {
        let names: Vec<&str> = all_baselines().iter().map(|p| p.name()).collect();
        assert!(names.contains(&"sha256d"));
        assert!(names.contains(&"memory_hard"));
        assert!(names.contains(&"randomx_lite"));
        assert!(names.contains(&"widget_selection"));
        assert!(names.contains(&"hashcore"));
        assert_eq!(Sha256dPow.dominant_resource(), ResourceClass::FixedFunction);
        assert_eq!(
            MemoryHardPow::new(1 << 16, 1).dominant_resource(),
            ResourceClass::Memory
        );
    }

    fn assert_scratch_matches<P: PreparedPow>(pow: &P) {
        let mut scratch = P::Scratch::default();
        // One reused scratch over a stream of inputs must reproduce the
        // plain path digest every time.
        for input in [
            b"one".as_ref(),
            b"two".as_ref(),
            b"".as_ref(),
            b"one".as_ref(),
        ] {
            assert_eq!(
                pow.pow_hash_scratch(input, &mut scratch),
                pow.pow_hash(input),
                "{} diverged on {input:?}",
                pow.name()
            );
        }
    }

    #[test]
    fn scratch_path_matches_plain_path_for_every_baseline() {
        let mut profile = PerformanceProfile::leela_like();
        profile.target_dynamic_instructions = 3_000;
        assert_scratch_matches(&Sha256dPow);
        assert_scratch_matches(&MemoryHardPow::new(16 * 1024, 2));
        assert_scratch_matches(&RandomxLitePow::new(3_000));
        assert_scratch_matches(&SelectionPow::new(profile.clone(), 4, 2));
        assert_scratch_matches(&HashCorePow::new(HashCore::new(profile)));
    }

    #[test]
    fn default_mine_finds_easy_targets() {
        let target = Target::from_leading_zero_bits(4);
        let found = Sha256dPow.mine(b"hdr", target, 256).expect("easy target");
        assert!(target.is_met_by(&found.1));
    }

    #[test]
    fn scan_nonces_matches_the_naive_mine_and_resumes() {
        let target = Target::from_leading_zero_bits(4);
        let naive = Sha256dPow.mine(b"hdr", target, 256).expect("easy target");
        let mut input = MiningInput::new(b"hdr");
        let mut scratch = MemoryHardScratch::default();
        let pow = MemoryHardPow::new(16 * 1024, 2);
        let mem_naive = pow.mine(b"hdr", target, 256).expect("easy target");
        let mem_scanned = pow
            .scan_nonces(&mut input, target, 0, 256, &mut scratch)
            .expect("easy target");
        assert_eq!(mem_scanned, mem_naive);

        let scanned = Sha256dPow
            .scan_nonces(&mut MiningInput::new(b"hdr"), target, 0, 256, &mut ())
            .expect("easy target");
        assert_eq!(scanned, naive);
        // Resuming past the hit finds the next qualifying nonce, exactly as
        // a fresh scan starting there would.
        let resumed = Sha256dPow.scan_nonces(
            &mut MiningInput::new(b"hdr"),
            target,
            scanned.0 + 1,
            256,
            &mut (),
        );
        let fresh = Sha256dPow.scan_nonces(
            &mut MiningInput::new(b"hdr"),
            target,
            scanned.0 + 1,
            256,
            &mut (),
        );
        assert_eq!(resumed, fresh);
        assert!(resumed.expect("easy target").0 > scanned.0);
    }

    /// Every nonce the scalar scan would visit — in order, across the u64
    /// wrap — is what the batch scan visits, so both find the same hit and
    /// a resume at `start.wrapping_add(attempts)` continues either.
    #[test]
    fn scan_wraps_through_nonce_space_without_rescanning() {
        let target = Target::from_leading_zero_bits(4);
        let pow = Sha256dPow;
        let start = u64::MAX - 5;
        // Enumerate the expected sequence directly: MAX-5 .. MAX, 0, 1, ...
        let expected = (0..64u64)
            .map(|k| start.wrapping_add(k))
            .find_map(|nonce| {
                let digest = pow.pow_hash(&HashCore::mining_input(b"hdr", nonce));
                target.is_met_by(&digest).then_some((nonce, digest))
            })
            .expect("easy target within 64 nonces");
        let scalar = pow
            .scan_nonces(&mut MiningInput::new(b"hdr"), target, start, 64, &mut ())
            .expect("easy target");
        let batch = pow
            .scan_nonce_batch(&mut MiningInput::new(b"hdr"), target, start, 64, &mut ())
            .expect("easy target");
        assert_eq!(scalar, expected);
        assert_eq!(batch, expected);

        // A miss followed by a wrapped resume covers the same 64 nonces.
        let hard = Target::from_leading_zero_bits(255);
        assert_eq!(
            pow.scan_nonce_batch(&mut MiningInput::new(b"hdr"), hard, start, 32, &mut ()),
            None
        );
        let resumed = pow.scan_nonce_batch(
            &mut MiningInput::new(b"hdr"),
            target,
            start.wrapping_add(32),
            32,
            &mut (),
        );
        let expected_resume = (32..64u64)
            .map(|k| start.wrapping_add(k))
            .find_map(|nonce| {
                let digest = pow.pow_hash(&HashCore::mining_input(b"hdr", nonce));
                target.is_met_by(&digest).then_some((nonce, digest))
            });
        assert_eq!(resumed, expected_resume);
    }

    fn assert_batch_scan_matches<P: PreparedPow>(pow: &P, attempts: u64) {
        let target = Target::from_leading_zero_bits(4);
        for start in [0u64, 3, u64::MAX - 2] {
            let mut scalar_scratch = P::Scratch::default();
            let mut batch_scratch = P::Scratch::default();
            let scalar = pow.scan_nonces(
                &mut MiningInput::new(b"hdr"),
                target,
                start,
                attempts,
                &mut scalar_scratch,
            );
            let batch = pow.scan_nonce_batch(
                &mut MiningInput::new(b"hdr"),
                target,
                start,
                attempts,
                &mut batch_scratch,
            );
            assert_eq!(batch, scalar, "{} start {start}", pow.name());
        }
    }

    #[test]
    fn batch_scan_matches_scalar_scan_for_every_baseline() {
        let mut profile = PerformanceProfile::leela_like();
        profile.target_dynamic_instructions = 3_000;
        assert_batch_scan_matches(&Sha256dPow, 64);
        assert_batch_scan_matches(&MemoryHardPow::new(16 * 1024, 2), 32);
        assert_batch_scan_matches(&RandomxLitePow::new(3_000), 24);
        assert_batch_scan_matches(&SelectionPow::new(profile.clone(), 4, 2), 24);
        assert_batch_scan_matches(&HashCorePow::new(HashCore::new(profile)), 24);
    }
}
