//! A RandomX-style random-program PoW baseline.
//!
//! Section VI-C of the paper contrasts HashCore with RandomX: both execute
//! seed-derived programs, but RandomX "target[s] explicit utilization of each
//! computational structure" with uniformly random programs over a virtual
//! machine, whereas HashCore targets the execution *profile* of a reference
//! benchmark. This baseline reproduces the RandomX idea at small scale on
//! the same widget ISA: the program's instruction classes are drawn
//! uniformly (every class equally represented) rather than profile-matched,
//! and the program output is hashed exactly as HashCore's widgets are.

use crate::{scan_lane_batches, PowFunction, PreparedPow, ResourceClass};
use hashcore::{MiningInput, Target};
use hashcore_crypto::{sha256, Digest256, Sha256};
use hashcore_gen::{GeneratorConfig, PipelineScratch, WidgetGenerator};
use hashcore_isa::OpClass;
use hashcore_profile::{
    BasicBlockProfile, BranchProfile, DependencyProfile, HashSeed, InstructionMix, MemoryProfile,
    NoiseConfig, PerformanceProfile,
};
use hashcore_vm::Executor;

/// A RandomX-like PoW: uniformly random program generation over the widget
/// virtual machine, followed by a hash of the program output.
#[derive(Debug, Clone)]
pub struct RandomxLitePow {
    generator: WidgetGenerator,
}

impl RandomxLitePow {
    /// Creates an instance whose random programs execute roughly
    /// `program_instructions` dynamic instructions per hash.
    pub fn new(program_instructions: u64) -> Self {
        // A uniform mix over every executable class — the "stress every
        // structure equally" philosophy — with generic branch/memory/
        // dependency behaviour (no reference workload involved).
        let uniform = PerformanceProfile {
            name: "randomx_lite_uniform".to_string(),
            mix: InstructionMix::from_fractions(&[
                (OpClass::IntAlu, 1.0),
                (OpClass::IntMul, 1.0),
                (OpClass::FpAlu, 1.0),
                (OpClass::Load, 1.0),
                (OpClass::Store, 1.0),
                (OpClass::Branch, 1.0),
                (OpClass::Vector, 1.0),
                (OpClass::Control, 0.0),
            ]),
            branch: BranchProfile {
                branch_fraction: 1.0 / 7.0,
                taken_fraction: 0.5,
                transition_rate: 0.5,
                static_branch_sites: 64,
            },
            memory: MemoryProfile {
                working_set_bytes: 2 << 20,
                strided_fraction: 0.5,
                average_stride: 64,
                pointer_chase_fraction: 0.25,
            },
            dependency: DependencyProfile {
                average_distance: 4.0,
                serial_fraction: 0.3,
            },
            blocks: BasicBlockProfile {
                average_block_size: 8.0,
                hot_blocks: 32,
                average_loop_trip_count: 16,
            },
            target_dynamic_instructions: program_instructions.max(1_000),
            reference_ipc: 1.0,
            reference_branch_hit_rate: 0.75,
        };
        let config = GeneratorConfig {
            noise: NoiseConfig::default(),
            ..GeneratorConfig::default()
        };
        Self {
            generator: WidgetGenerator::with_config(uniform, config),
        }
    }

    /// The seed-onward tail of [`PreparedPow::pow_hash_scratch`]: random
    /// program generation, execution and the output hash. The batch scan
    /// computes the four seeds lane-parallel and enters here per lane.
    fn hash_from_seed(&self, seed: HashSeed, scratch: &mut PipelineScratch) -> Digest256 {
        scratch
            .run(&self.generator, &seed, false)
            .expect("random programs always halt within the step limit");
        let mut gate = Sha256::new();
        gate.update(seed.as_bytes());
        gate.update(scratch.exec.output());
        gate.finalize()
    }
}

impl PowFunction for RandomxLitePow {
    fn name(&self) -> &'static str {
        "randomx_lite"
    }

    fn pow_hash(&self, input: &[u8]) -> Digest256 {
        let seed = HashSeed::new(sha256(input));
        let widget = self.generator.generate(&seed);
        let execution = Executor::new(hashcore_vm::ExecConfig {
            collect_trace: false,
            ..widget.exec_config()
        })
        .execute(&widget.program)
        .expect("random programs always halt within the step limit");
        let mut gate = Sha256::new();
        gate.update(seed.as_bytes());
        gate.update(&execution.output);
        gate.finalize()
    }

    fn dominant_resource(&self) -> ResourceClass {
        ResourceClass::GeneralPurpose
    }
}

impl PreparedPow for RandomxLitePow {
    /// Reusable generate→prepare→execute state, the same composition as
    /// HashCore's own hash scratch.
    type Scratch = PipelineScratch;

    fn pow_hash_scratch(&self, input: &[u8], scratch: &mut Self::Scratch) -> Digest256 {
        self.hash_from_seed(HashSeed::new(sha256(input)), scratch)
    }

    /// The seed derivation runs four lanes wide; program generation and
    /// execution stay per-lane (each lane's random program is shaped by its
    /// own seed), sharing the one pipeline scratch.
    fn scan_nonce_batch(
        &self,
        input: &mut MiningInput,
        target: Target,
        start: u64,
        attempts: u64,
        scratch: &mut Self::Scratch,
    ) -> Option<(u64, Digest256)> {
        scan_lane_batches(
            self,
            input,
            target,
            start,
            attempts,
            scratch,
            |pow, header, nonces, scratch| {
                crate::seeds_x4(header, nonces)
                    .map(|seed| pow.hash_from_seed(HashSeed::new(seed), scratch))
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_input_sensitive() {
        let pow = RandomxLitePow::new(2_000);
        assert_eq!(pow.pow_hash(b"a"), pow.pow_hash(b"a"));
        assert_ne!(pow.pow_hash(b"a"), pow.pow_hash(b"b"));
    }

    #[test]
    fn uniform_mix_differs_from_profile_targeted_mix() {
        // The defining difference from HashCore: every class is weighted
        // equally before noise.
        let pow = RandomxLitePow::new(2_000);
        let mix = &pow.generator.base_profile().mix;
        let int_alu = mix.fraction(OpClass::IntAlu);
        let fp = mix.fraction(OpClass::FpAlu);
        assert!((int_alu - fp).abs() < 1e-9);
        assert!((int_alu - 1.0 / 7.0).abs() < 1e-9);
    }
}
