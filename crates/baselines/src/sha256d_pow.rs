//! The Bitcoin-style double-SHA-256 PoW baseline.

use crate::{scan_lane_batches, PowFunction, PreparedPow, ResourceClass};
use hashcore::{MiningInput, Target};
use hashcore_crypto::{sha256_x4, sha256d, Digest256};

/// `SHA256(SHA256(input))` — the PoW function the paper's introduction uses
/// as the canonical example of a function for which specialised ASICs vastly
/// outperform general purpose processors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sha256dPow;

impl PowFunction for Sha256dPow {
    fn name(&self) -> &'static str {
        "sha256d"
    }

    fn pow_hash(&self, input: &[u8]) -> Digest256 {
        sha256d(input)
    }

    fn dominant_resource(&self) -> ResourceClass {
        ResourceClass::FixedFunction
    }
}

impl PreparedPow for Sha256dPow {
    /// Double SHA-256 runs entirely in fixed-size state; there is nothing
    /// to reuse between evaluations.
    type Scratch = ();

    fn pow_hash_scratch(&self, input: &[u8], _scratch: &mut ()) -> Digest256 {
        self.pow_hash(input)
    }

    /// Both SHA-256 applications run four lanes wide: the inner hash over
    /// `header ‖ nonce` via the parts interface, the outer hash over the
    /// four fixed-size inner digests. This is the ASIC-friendly extreme —
    /// the *entire* function vectorises, which is exactly the contrast the
    /// bench's `simd_vs_scalar` metric quantifies against HashCore.
    fn scan_nonce_batch(
        &self,
        input: &mut MiningInput,
        target: Target,
        start: u64,
        attempts: u64,
        scratch: &mut Self::Scratch,
    ) -> Option<(u64, Digest256)> {
        scan_lane_batches(
            self,
            input,
            target,
            start,
            attempts,
            scratch,
            |_, header, nonces, _| {
                let inner = crate::seeds_x4(header, nonces);
                sha256_x4([&inner[0], &inner[1], &inner[2], &inner[3]])
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_double_sha() {
        let d = Sha256dPow.pow_hash(b"genesis");
        assert_eq!(d, sha256d(b"genesis"));
        assert_eq!(
            d,
            hashcore_crypto::sha256(&hashcore_crypto::sha256(b"genesis"))
        );
    }
}
