//! The Bitcoin-style double-SHA-256 PoW baseline.

use crate::{scan_lane_batches, PowFunction, PreparedPow, ResourceClass};
use hashcore::{MiningInput, Target, VerifyCost};
use hashcore_crypto::{sha256_x4, sha256d, Digest256};

/// `SHA256(SHA256(input))` — the PoW function the paper's introduction uses
/// as the canonical example of a function for which specialised ASICs vastly
/// outperform general purpose processors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sha256dPow;

impl PowFunction for Sha256dPow {
    fn name(&self) -> &'static str {
        "sha256d"
    }

    fn pow_hash(&self, input: &[u8]) -> Digest256 {
        sha256d(input)
    }

    fn dominant_resource(&self) -> ResourceClass {
        ResourceClass::FixedFunction
    }
}

impl PreparedPow for Sha256dPow {
    /// Double SHA-256 runs entirely in fixed-size state; there is nothing
    /// to reuse between evaluations.
    type Scratch = ();

    fn pow_hash_scratch(&self, input: &[u8], _scratch: &mut ()) -> Digest256 {
        self.pow_hash(input)
    }

    /// Both SHA-256 applications run four lanes wide: the inner hash over
    /// `header ‖ nonce` via the parts interface, the outer hash over the
    /// four fixed-size inner digests. This is the ASIC-friendly extreme —
    /// the *entire* function vectorises, which is exactly the contrast the
    /// bench's `simd_vs_scalar` metric quantifies against HashCore.
    fn scan_nonce_batch(
        &self,
        input: &mut MiningInput,
        target: Target,
        start: u64,
        attempts: u64,
        scratch: &mut Self::Scratch,
    ) -> Option<(u64, Digest256)> {
        scan_lane_batches(
            self,
            input,
            target,
            start,
            attempts,
            scratch,
            |_, header, nonces, _| {
                let inner = crate::seeds_x4(header, nonces);
                sha256_x4([&inner[0], &inner[1], &inner[2], &inner[3]])
            },
        )
    }

    /// Synthetic verifier cost, derived deterministically from the digest.
    ///
    /// Double SHA-256 has no widget stage, so the cost-steering
    /// experiments model per-seed widget variance instead: the ratio
    /// `2^(4u − 2)` — log-uniform over `[1/4, 4]`, mean ≈ 1.35 — is read
    /// off the digest's *trailing* bytes. A PoW target constrains the
    /// leading bytes only, so the tail stays uniform at every difficulty,
    /// and every node derives the identical observation from the header
    /// alone.
    fn pow_hash_cost_scratch(&self, input: &[u8], _scratch: &mut ()) -> (Digest256, VerifyCost) {
        let digest = self.pow_hash(input);
        (digest, synthetic_cost(&digest))
    }
}

/// The log-uniform synthetic cost of one digest (see
/// [`PreparedPow::pow_hash_cost_scratch`] on [`Sha256dPow`]): ratio
/// `2^(4u − 2)` with `u` uniform in `[0, 1)` from the digest tail, scaled
/// onto the nominal budget.
fn synthetic_cost(digest: &Digest256) -> VerifyCost {
    let raw = u64::from_le_bytes(digest[24..32].try_into().expect("an 8-byte digest tail"));
    // The top 53 bits give an exact f64 in [0, 1).
    let u = (raw >> 11) as f64 / (1u64 << 53) as f64;
    let ratio = (4.0 * u - 2.0).exp2();
    let nominal = VerifyCost::NOMINAL;
    VerifyCost {
        instructions: (nominal.instructions as f64 * ratio).round() as u64,
        output_bytes: (nominal.output_bytes as f64 * ratio).round() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_double_sha() {
        let d = Sha256dPow.pow_hash(b"genesis");
        assert_eq!(d, sha256d(b"genesis"));
        assert_eq!(
            d,
            hashcore_crypto::sha256(&hashcore_crypto::sha256(b"genesis"))
        );
    }

    #[test]
    fn synthetic_cost_is_digest_pure_and_log_uniform_bounded() {
        let nominal = Sha256dPow.nominal_cost();
        let mut sum = 0.0;
        let mut below = 0usize;
        for i in 0..256u32 {
            let input = i.to_le_bytes();
            let (digest, cost) = Sha256dPow.pow_hash_cost_scratch(&input, &mut ());
            // The digest contract: identical to the plain path.
            assert_eq!(digest, Sha256dPow.pow_hash(&input));
            // Replay gives the same observation — cost is input-pure.
            assert_eq!(Sha256dPow.pow_hash_cost_scratch(&input, &mut ()).1, cost);
            let ratio = cost.ratio(nominal);
            assert!(
                (0.25..=4.0).contains(&ratio),
                "ratio {ratio} out of the log-uniform support"
            );
            sum += ratio;
            below += usize::from(ratio < 1.0);
        }
        // Log-uniform over [1/4, 4]: mean ≈ 1.35, half the mass below 1.
        let mean = sum / 256.0;
        assert!((1.1..=1.6).contains(&mean), "mean ratio {mean}");
        assert!((64..=192).contains(&below), "{below} of 256 below 1");
    }
}
