//! The Bitcoin-style double-SHA-256 PoW baseline.

use crate::{PowFunction, ResourceClass};
use hashcore_crypto::{sha256d, Digest256};

/// `SHA256(SHA256(input))` — the PoW function the paper's introduction uses
/// as the canonical example of a function for which specialised ASICs vastly
/// outperform general purpose processors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sha256dPow;

impl PowFunction for Sha256dPow {
    fn name(&self) -> &'static str {
        "sha256d"
    }

    fn pow_hash(&self, input: &[u8]) -> Digest256 {
        sha256d(input)
    }

    fn dominant_resource(&self) -> ResourceClass {
        ResourceClass::FixedFunction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_double_sha() {
        let d = Sha256dPow.pow_hash(b"genesis");
        assert_eq!(d, sha256d(b"genesis"));
        assert_eq!(
            d,
            hashcore_crypto::sha256(&hashcore_crypto::sha256(b"genesis"))
        );
    }
}
