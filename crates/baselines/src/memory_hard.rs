//! A scrypt-style memory-hard PoW baseline.
//!
//! The construction follows the shape of scrypt's ROMix (and of the
//! memory-hard functions the paper cites — Equihash, Balloon, scrypt):
//!
//! 1. fill an `N`-block scratchpad by iterated hashing of the input,
//! 2. perform `passes × N` data-dependent random walks over the scratchpad,
//!    mixing each visited block into a running state,
//! 3. hash the final state.
//!
//! Step 2 is what forces the memory to actually be resident: the address of
//! each visited block depends on the current state, so the scratchpad cannot
//! be streamed or recomputed cheaply.

use crate::{PowFunction, PreparedPow, ResourceClass};
use hashcore::{MiningInput, Target};
use hashcore_crypto::{sha256, sha512, Digest256};

const BLOCK_BYTES: usize = 64;

/// Reusable scratchpad storage for [`MemoryHardPow`]: the whole point of a
/// memory-hard function is a large resident buffer, so reusing it across
/// evaluations removes the dominant allocation from batch verification.
#[derive(Debug, Clone, Default)]
pub struct MemoryHardScratch {
    scratchpad: Vec<[u8; BLOCK_BYTES]>,
}

/// A sequential memory-hard PoW function with a configurable scratchpad.
#[derive(Debug, Clone, Copy)]
pub struct MemoryHardPow {
    scratchpad_bytes: usize,
    passes: u32,
}

impl MemoryHardPow {
    /// Creates a function using `scratchpad_bytes` of memory (rounded up to
    /// a whole number of 64-byte blocks, minimum one block) and `passes`
    /// mixing passes.
    pub fn new(scratchpad_bytes: usize, passes: u32) -> Self {
        Self {
            scratchpad_bytes: scratchpad_bytes.max(BLOCK_BYTES),
            passes: passes.max(1),
        }
    }

    /// The configured scratchpad size in bytes.
    pub fn scratchpad_bytes(&self) -> usize {
        (self.scratchpad_bytes / BLOCK_BYTES).max(1) * BLOCK_BYTES
    }
}

impl PowFunction for MemoryHardPow {
    fn name(&self) -> &'static str {
        "memory_hard"
    }

    fn pow_hash(&self, input: &[u8]) -> Digest256 {
        self.pow_hash_scratch(input, &mut MemoryHardScratch::default())
    }

    fn dominant_resource(&self) -> ResourceClass {
        ResourceClass::Memory
    }
}

impl PreparedPow for MemoryHardPow {
    type Scratch = MemoryHardScratch;

    fn pow_hash_scratch(&self, input: &[u8], scratch: &mut Self::Scratch) -> Digest256 {
        let blocks = (self.scratchpad_bytes / BLOCK_BYTES).max(1);

        // Phase 1: sequential fill (every slot is overwritten, so reusing
        // the scratchpad buffer cannot leak state between evaluations).
        let scratchpad = &mut scratch.scratchpad;
        scratchpad.clear();
        scratchpad.reserve(blocks);
        let mut block = sha512(input);
        for _ in 0..blocks {
            scratchpad.push(block);
            block = sha512(&block);
        }

        // Phase 2: data-dependent mixing walks.
        let mut state = sha512(&block);
        for _ in 0..self.passes {
            for _ in 0..blocks {
                let index =
                    u64::from_le_bytes(state[..8].try_into().expect("8 bytes")) as usize % blocks;
                // Mix the visited block into the state and write back, so
                // later passes depend on earlier writes.
                let mut mixed = [0u8; BLOCK_BYTES];
                for (i, m) in mixed.iter_mut().enumerate() {
                    *m = state[i] ^ scratchpad[index][i];
                }
                state = sha512(&mixed);
                scratchpad[index] = mixed;
            }
        }

        sha256(&state)
    }

    /// Delegates to the scalar scan, deliberately: every stage here is a
    /// serial dependency chain — the fill iterates SHA-512 on its own
    /// output, and the mixing walk's next address depends on the state just
    /// produced — and lanes would each need their own `blocks`-sized
    /// scratchpad. That sequential, memory-resident structure is the whole
    /// point of the design, so there is nothing for lanes to share. The
    /// batch entry point still follows the common nonce-order contract.
    fn scan_nonce_batch(
        &self,
        input: &mut MiningInput,
        target: Target,
        start: u64,
        attempts: u64,
        scratch: &mut Self::Scratch,
    ) -> Option<(u64, Digest256)> {
        self.scan_nonces(input, target, start, attempts, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_parameter_sensitive() {
        let a = MemoryHardPow::new(16 * 1024, 2);
        assert_eq!(a.pow_hash(b"x"), a.pow_hash(b"x"));
        assert_ne!(a.pow_hash(b"x"), a.pow_hash(b"y"));
        let b = MemoryHardPow::new(32 * 1024, 2);
        let c = MemoryHardPow::new(16 * 1024, 3);
        assert_ne!(a.pow_hash(b"x"), b.pow_hash(b"x"));
        assert_ne!(a.pow_hash(b"x"), c.pow_hash(b"x"));
    }

    #[test]
    fn scratchpad_is_rounded_to_blocks() {
        assert_eq!(MemoryHardPow::new(1, 1).scratchpad_bytes(), 64);
        assert_eq!(MemoryHardPow::new(130, 1).scratchpad_bytes(), 128);
    }
}
