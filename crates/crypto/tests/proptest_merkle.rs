//! Property tests for [`hashcore_crypto::MerkleTree`] proofs.
//!
//! Round-trips single and batched inclusion proofs at every index for trees
//! of 1..=64 leaves, and checks that truncated, reordered, and bit-flipped
//! proofs are rejected — the same tampering classes a fake-proof network
//! adversary can attempt against a light client.

use hashcore_crypto::MerkleTree;
use proptest::prelude::*;

fn leaves(n: usize, tag: u64) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("leaf-{tag}-{i}").into_bytes())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `proof`/`verify_proof` round-trips at every index of every tree size.
    #[test]
    fn single_proofs_round_trip_at_every_index(n in 1usize..65, tag in any::<u64>()) {
        let data = leaves(n, tag);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        for (i, item) in data.iter().enumerate() {
            let proof = tree.proof(i).expect("index in range");
            prop_assert!(
                MerkleTree::verify_proof(tree.root(), item, i, &proof),
                "n={} i={}", n, i
            );
        }
    }

    /// Truncating a proof (dropping its last sibling) must fail verification
    /// for every index of every multi-leaf tree.
    #[test]
    fn truncated_single_proofs_are_rejected(n in 2usize..65, tag in any::<u64>()) {
        let data = leaves(n, tag);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        for (i, item) in data.iter().enumerate() {
            let mut proof = tree.proof(i).expect("index in range");
            proof.pop();
            prop_assert!(
                !MerkleTree::verify_proof(tree.root(), item, i, &proof),
                "truncated proof accepted at n={} i={}", n, i
            );
        }
    }

    /// Swapping two distinct siblings in a proof must fail verification.
    #[test]
    fn reordered_single_proofs_are_rejected(n in 5usize..65, index in 0usize..64, tag in any::<u64>()) {
        let data = leaves(n, tag);
        let index = index % n;
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        let mut proof = tree.proof(index).expect("index in range");
        // Trees of 5+ leaves have 3+ levels, so every path holds at least
        // two siblings to swap.
        prop_assert!(proof.len() >= 2);
        proof.swap(0, 1);
        if proof[0] != proof[1] {
            prop_assert!(
                !MerkleTree::verify_proof(tree.root(), &data[index], index, &proof),
                "reordered proof accepted at n={} index={}", n, index
            );
        }
    }

    /// Flipping any single bit of any proof byte must fail verification.
    #[test]
    fn bit_flipped_single_proofs_are_rejected(
        n in 2usize..65,
        index in 0usize..64,
        pos in 0usize..2048,
        bit in 0u8..8,
        tag in any::<u64>(),
    ) {
        let data = leaves(n, tag);
        let index = index % n;
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        let mut proof = tree.proof(index).expect("index in range");
        let pos = pos % (proof.len() * 32);
        proof[pos / 32][pos % 32] ^= 1 << bit;
        prop_assert!(
            !MerkleTree::verify_proof(tree.root(), &data[index], index, &proof),
            "bit-flipped proof accepted at n={} index={}", n, index
        );
    }

    /// Batched proofs round-trip for arbitrary index subsets, and flipping
    /// any bit of a shipped node breaks them.
    #[test]
    fn batch_proofs_round_trip_and_reject_bit_flips(
        n in 1usize..65,
        mask in 1u64..u64::MAX,
        pos in 0usize..4096,
        bit in 0u8..8,
        tag in any::<u64>(),
    ) {
        let data = leaves(n, tag);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        let indices: Vec<usize> = (0..n).filter(|i| mask & (1 << (i % 64)) != 0).collect();
        prop_assume!(!indices.is_empty());
        let proof = tree.proof_batch(&indices).expect("indices in range");
        let batch: Vec<(usize, &[u8])> =
            indices.iter().map(|&i| (i, data[i].as_slice())).collect();
        prop_assert!(
            MerkleTree::verify_batch(tree.root(), &batch, &proof),
            "batch round-trip failed at n={} indices={:?}", n, indices
        );
        if !proof.nodes.is_empty() {
            let mut tampered = proof.clone();
            let pos = pos % (tampered.nodes.len() * 32);
            tampered.nodes[pos / 32][pos % 32] ^= 1 << bit;
            prop_assert!(
                !MerkleTree::verify_batch(tree.root(), &batch, &tampered),
                "tampered batch accepted at n={} indices={:?}", n, indices
            );
        }
    }
}
