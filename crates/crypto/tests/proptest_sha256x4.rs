//! Property tests pinning the 4-lane SHA-256 to the scalar implementation.
//!
//! The multi-lane module re-implements the whole FIPS 180-4 framing —
//! padding, length field, masked feed-forward for unequal lanes, and the
//! parts (slice-list) gather — so every lane is checked byte-for-byte
//! against the scalar [`hashcore_crypto::sha256`] over random lengths,
//! contents, length skews and part splits. Any divergence here would change
//! mining digests, which the pinned chain fingerprints would then catch
//! much less legibly.

use hashcore_crypto::{sha256, sha256_x4, sha256_x4_parts, sha256d, sha256d_x4};
use proptest::prelude::*;

type FourLanes = (Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>);

/// Four lanes of bytes with independent random lengths, biased to cover the
/// one-block/two-block padding boundaries (lengths 0..=200).
fn lanes() -> impl Strategy<Value = FourLanes> {
    let lane = || prop::collection::vec(any::<u8>(), 0usize..201);
    (lane(), lane(), lane(), lane())
}

fn as_array(msgs: &FourLanes) -> [&[u8]; 4] {
    [&msgs.0, &msgs.1, &msgs.2, &msgs.3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every lane of `sha256_x4` equals the scalar hash of that lane's
    /// message, whatever the four lengths are relative to each other.
    #[test]
    fn sha256_x4_matches_scalar_per_lane(msgs in lanes()) {
        let msgs = as_array(&msgs);
        let digests = sha256_x4(msgs);
        for (lane, msg) in msgs.iter().enumerate() {
            prop_assert!(digests[lane] == sha256(msg), "lane {}", lane);
        }
    }

    /// Same property for the double hash used by the sha256d baseline.
    #[test]
    fn sha256d_x4_matches_scalar_per_lane(msgs in lanes()) {
        let msgs = as_array(&msgs);
        let digests = sha256d_x4(msgs);
        for (lane, msg) in msgs.iter().enumerate() {
            prop_assert!(digests[lane] == sha256d(msg), "lane {}", lane);
        }
    }

    /// Splitting each lane into arbitrary parts (the mining loops pass
    /// `[header, nonce]`) never changes its digest: the parts list is
    /// treated as pure concatenation at every alignment.
    #[test]
    fn parts_are_pure_concatenation(
        msgs in lanes(),
        splits in (0usize..201, 0usize..201, 0usize..201, 0usize..201),
    ) {
        let msgs = as_array(&msgs);
        let splits = [splits.0, splits.1, splits.2, splits.3];
        let cut: [usize; 4] =
            std::array::from_fn(|lane| splits[lane].min(msgs[lane].len()));
        let parts: [[&[u8]; 2]; 4] =
            std::array::from_fn(|lane| [&msgs[lane][..cut[lane]], &msgs[lane][cut[lane]..]]);
        let digests = sha256_x4_parts([&parts[0], &parts[1], &parts[2], &parts[3]]);
        for (lane, msg) in msgs.iter().enumerate() {
            prop_assert!(
                digests[lane] == sha256(msg),
                "lane {} split {}", lane, cut[lane]
            );
        }
    }

    /// The mining call shape: one shared header, four `u64` nonces appended
    /// per lane, against the scalar hash of the concatenated buffer.
    #[test]
    fn header_nonce_lanes_match_scalar(
        header in prop::collection::vec(any::<u8>(), 0usize..121),
        nonces in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let nonces = [nonces.0, nonces.1, nonces.2, nonces.3];
        let nonce_bytes = nonces.map(u64::to_le_bytes);
        let parts: [[&[u8]; 2]; 4] =
            std::array::from_fn(|lane| [header.as_slice(), &nonce_bytes[lane]]);
        let digests = sha256_x4_parts([&parts[0], &parts[1], &parts[2], &parts[3]]);
        for lane in 0..4 {
            let mut scalar_input = header.clone();
            scalar_input.extend_from_slice(&nonce_bytes[lane]);
            prop_assert!(digests[lane] == sha256(&scalar_input), "lane {}", lane);
        }
    }
}
