//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! This is the *hash gate* `G` of the HashCore construction. The paper's
//! collision-resistance theorem (Theorem 1) reduces the security of the whole
//! PoW function to the collision resistance of this primitive, so the
//! implementation is deliberately simple, constant-structure, and covered by
//! the official FIPS / NIST test vectors in the unit tests below.

/// A SHA-256 digest: 32 bytes.
pub type Digest256 = [u8; 32];

/// Initial hash values (first 32 bits of the fractional parts of the square
/// roots of the first eight primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants (first 32 bits of the fractional parts of the cube roots of
/// the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Maximum message length SHA-256 is defined for: the FIPS 180-4 length
/// field is 64 bits of *bit* count, so messages must stay below 2^61 bytes.
pub const MAX_MESSAGE_BYTES: u64 = (1 << 61) - 1;

/// Incremental SHA-256 hasher.
///
/// # Message-length contract
///
/// FIPS 180-4 defines SHA-256 only for messages shorter than 2^64 *bits*
/// ([`MAX_MESSAGE_BYTES`] bytes). Feeding more wraps the length field:
/// debug builds panic at the [`Sha256::update`] call that crosses the
/// bound, release builds silently produce a digest of a different
/// (length-reduced) message. Every real input in this workspace — headers,
/// nonces, widget outputs — is kilobytes, so the bound exists as an
/// explicit contract, not a reachable state.
///
/// # Examples
///
/// ```
/// use hashcore_crypto::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let digest = hasher.finalize();
/// assert_eq!(digest, hashcore_crypto::sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes processed so far.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a new hasher with the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the total message length exceeds
    /// [`MAX_MESSAGE_BYTES`] (the FIPS 180-4 64-bit length field); see the
    /// type-level message-length contract.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        debug_assert!(
            self.total_len <= MAX_MESSAGE_BYTES,
            "message exceeds the FIPS 180-4 64-bit length field (2^61 - 1 bytes)"
        );
        let mut input = data;

        // Fill the partial buffer first.
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        // Process full blocks directly from the input slice, with no
        // staging copy — this is the hot path of the second hash gate,
        // which absorbs the full 20–38 kB widget output on every hash.
        let mut blocks = input.chunks_exact(64);
        for block in &mut blocks {
            // chunks_exact guarantees the length; the conversion is free.
            self.compress(block.try_into().expect("64-byte chunk"));
        }
        input = blocks.remainder();

        // Stash the remainder.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> Digest256 {
        // In range by the `update` contract (debug-asserted there); the
        // wrapping multiply documents the release-build overflow behaviour
        // rather than hiding it behind an unchecked `*`.
        let bit_len = self.total_len.wrapping_mul(8);

        // Append the 0x80 terminator.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Number of zero bytes so that (buffer_len + 1 + zeros + 8) % 64 == 0.
        let rem = (self.buffer_len + 1 + 8) % 64;
        let zeros = if rem == 0 { 0 } else { 64 - rem };
        pad[1 + zeros..1 + zeros + 8].copy_from_slice(&bit_len.to_be_bytes());
        // `update` must not double-count padding in total_len; compress directly.
        let pad_len = 1 + zeros + 8;
        let mut input = &pad[..pad_len];

        // Merge with buffered bytes and compress.
        let mut block = [0u8; 64];
        block[..self.buffer_len].copy_from_slice(&self.buffer[..self.buffer_len]);
        let mut offset = self.buffer_len;
        while !input.is_empty() {
            let take = (64 - offset).min(input.len());
            block[offset..offset + take].copy_from_slice(&input[..take]);
            offset += take;
            input = &input[take..];
            if offset == 64 {
                self.compress(&block);
                block = [0u8; 64];
                offset = 0;
            }
        }
        debug_assert_eq!(offset, 0, "padding must end on a block boundary");

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest256 {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }

    /// Compresses one 64-byte block into the state.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Computes the SHA-256 digest of `data` in one call.
///
/// This is the hash-gate function `G` of the paper.
///
/// # Examples
///
/// ```
/// let d = hashcore_crypto::sha256(b"");
/// assert_eq!(d[0], 0xe3);
/// ```
pub fn sha256(data: &[u8]) -> Digest256 {
    Sha256::digest(data)
}

/// Double SHA-256: `SHA256(SHA256(data))`, the Bitcoin-style PoW baseline.
pub fn sha256d(data: &[u8]) -> Digest256 {
    sha256(&sha256(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hex_digest(data: &[u8]) -> String {
        hex::encode(&sha256(data))
    }

    #[test]
    fn empty_string() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_two_block_message() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_four_block_message() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex_digest(msg),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_digest(&msg),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0usize, 1, 7, 63, 64, 65, 100, 4096, 9999, 10_000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise every interesting padding boundary.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 121, 127, 128, 129] {
            let data = vec![0xa5u8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), sha256(&data), "length {len}");
        }
    }

    #[test]
    fn update_block_boundary_handoff() {
        // Regression: the hand-off between the partial-buffer fill and the
        // direct full-block path in `update`. For every buffered prefix
        // length, feed a second slice that under-fills, exactly fills, or
        // over-fills the 64-byte block (and continues into whole blocks +
        // remainder) — all splits must match the one-shot digest.
        let data: Vec<u8> = (0..=255u8).cycle().take(4 * 64 + 7).collect();
        for buffered in 0usize..=66 {
            for second in [
                0usize,
                1,
                63 - buffered.min(63),
                64 - buffered.min(64),
                64,
                65,
                128,
                129,
            ] {
                let end = (buffered + second).min(data.len());
                let mut h = Sha256::new();
                h.update(&data[..buffered]);
                h.update(&data[buffered..end]);
                h.update(&data[end..]);
                assert_eq!(
                    h.finalize(),
                    sha256(&data),
                    "buffered {buffered}, second {second}"
                );
            }
        }
    }

    #[test]
    fn double_sha_differs_from_single() {
        let d1 = sha256(b"hashcore");
        let d2 = sha256d(b"hashcore");
        assert_ne!(d1, d2);
        assert_eq!(d2, sha256(&d1));
    }

    #[test]
    fn avalanche_effect() {
        // Flipping one bit should change roughly half the output bits.
        let a = sha256(b"HashCore widget 0");
        let b = sha256(b"HashCore widget 1");
        let differing: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(differing > 80, "only {differing} bits differ");
        assert!(differing < 176, "{differing} bits differ");
    }
}
