//! Binary Merkle trees over SHA-256.
//!
//! The chain substrate commits to a block's transactions with a Merkle root,
//! exactly as the PoW systems the paper targets (Bitcoin, Ethereum) do. Only
//! the block *header* flows through the HashCore PoW function, so the tree is
//! part of the surrounding blockchain machinery rather than of `H` itself.

use crate::sha256::{sha256, Digest256, Sha256};

/// A binary Merkle tree whose leaves are SHA-256 digests of the inserted
/// items.
///
/// Odd nodes at any level are paired with themselves (the Bitcoin
/// convention).
///
/// # Examples
///
/// ```
/// use hashcore_crypto::MerkleTree;
///
/// let tree = MerkleTree::from_items([b"tx-a".as_ref(), b"tx-b".as_ref()]);
/// let proof = tree.proof(0).unwrap();
/// assert!(MerkleTree::verify_proof(tree.root(), b"tx-a", 0, &proof));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` is the leaf level; the last level has exactly one node.
    levels: Vec<Vec<Digest256>>,
}

impl MerkleTree {
    /// Builds a tree from raw items, hashing each item to form a leaf.
    ///
    /// An empty iterator yields a tree whose root is `SHA256("")`, mirroring
    /// the convention of committing to the empty transaction list.
    pub fn from_items<'a, I>(items: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let leaves: Vec<Digest256> = items.into_iter().map(sha256).collect();
        Self::from_leaves(leaves)
    }

    /// Builds a tree from already-hashed leaves.
    pub fn from_leaves(leaves: Vec<Digest256>) -> Self {
        let leaves = if leaves.is_empty() {
            vec![sha256(b"")]
        } else {
            leaves
        };
        let mut levels = vec![leaves];
        while levels.last().expect("at least one level").len() > 1 {
            let prev = levels.last().expect("at least one level");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = pair[0];
                let right = if pair.len() == 2 { pair[1] } else { pair[0] };
                next.push(hash_pair(&left, &right));
            }
            levels.push(next);
        }
        Self { levels }
    }

    /// Returns the Merkle root.
    pub fn root(&self) -> Digest256 {
        self.levels.last().expect("at least one level")[0]
    }

    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Returns the inclusion proof (sibling path, leaf level upward) for the
    /// leaf at `index`, or `None` if `index` is out of range.
    pub fn proof(&self, index: usize) -> Option<Vec<Digest256>> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut proof = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if idx.is_multiple_of(2) {
                // Right sibling, or self-duplication when it does not exist.
                *level.get(idx + 1).unwrap_or(&level[idx])
            } else {
                level[idx - 1]
            };
            proof.push(sibling);
            idx /= 2;
        }
        Some(proof)
    }

    /// Verifies an inclusion proof produced by [`MerkleTree::proof`] for the
    /// raw (unhashed) `item` at leaf position `index`.
    pub fn verify_proof(root: Digest256, item: &[u8], index: usize, proof: &[Digest256]) -> bool {
        let mut node = sha256(item);
        let mut idx = index;
        for sibling in proof {
            node = if idx.is_multiple_of(2) {
                hash_pair(&node, sibling)
            } else {
                hash_pair(sibling, &node)
            };
            idx /= 2;
        }
        node == root
    }
}

/// A batched multi-index inclusion proof produced by
/// [`MerkleTree::proof_batch`].
///
/// One `BatchProof` covers many leaves at once: interior nodes that are
/// derivable from the proven leaves themselves are never shipped, so proving
/// `k` nearby leaves costs far fewer than `k` single sibling paths (proving
/// *every* leaf ships zero nodes). The proof commits to the tree's leaf
/// count, which fixes the traversal shape the verifier replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchProof {
    /// Number of leaves in the tree the proof was generated against.
    pub leaf_count: u32,
    /// Sibling digests in deterministic traversal order: level by level from
    /// the leaves upward, ascending index within each level.
    pub nodes: Vec<Digest256>,
}

impl MerkleTree {
    /// Returns one batched inclusion proof covering every leaf in `indices`,
    /// or `None` if `indices` is empty or any index is out of range.
    ///
    /// Duplicate indices are tolerated (deduplicated internally); the
    /// verifier receives each proven leaf exactly once.
    pub fn proof_batch(&self, indices: &[usize]) -> Option<BatchProof> {
        if indices.is_empty() || indices.iter().any(|&i| i >= self.leaf_count()) {
            return None;
        }
        let mut known: Vec<usize> = indices.to_vec();
        known.sort_unstable();
        known.dedup();
        let mut nodes = Vec::new();
        for level in &self.levels[..self.levels.len() - 1] {
            let mut next = Vec::with_capacity(known.len());
            let mut i = 0;
            while i < known.len() {
                let idx = known[i];
                if idx.is_multiple_of(2) {
                    if known.get(i + 1) == Some(&(idx + 1)) {
                        // Both children of this pair are being proven: the
                        // parent is derivable, ship nothing.
                        i += 1;
                    } else if let Some(sibling) = level.get(idx + 1) {
                        nodes.push(*sibling);
                    }
                    // Odd trailing node: pairs with itself, nothing to ship.
                } else {
                    nodes.push(level[idx - 1]);
                }
                next.push(idx / 2);
                i += 1;
            }
            next.dedup();
            known = next;
        }
        Some(BatchProof {
            leaf_count: self.leaf_count() as u32,
            nodes,
        })
    }

    /// Verifies a batched proof for the raw (unhashed) `items`, given as
    /// `(leaf index, item)` pairs in any order.
    ///
    /// Rejects empty batches, duplicate or out-of-range indices, proofs with
    /// missing or surplus nodes, and any digest mismatch against `root`.
    pub fn verify_batch(root: Digest256, items: &[(usize, &[u8])], proof: &BatchProof) -> bool {
        let leaf_count = proof.leaf_count as usize;
        if items.is_empty() || leaf_count == 0 {
            return false;
        }
        let mut entries: Vec<(usize, Digest256)> = items
            .iter()
            .map(|&(idx, item)| (idx, sha256(item)))
            .collect();
        entries.sort_unstable_by_key(|&(idx, _)| idx);
        if entries.windows(2).any(|w| w[0].0 == w[1].0)
            || entries.last().expect("non-empty").0 >= leaf_count
        {
            return false;
        }
        let mut supplied = proof.nodes.iter();
        let mut level_size = leaf_count;
        while level_size > 1 {
            let mut next = Vec::with_capacity(entries.len());
            let mut i = 0;
            while i < entries.len() {
                let (idx, node) = entries[i];
                let parent = if idx.is_multiple_of(2) {
                    if entries.get(i + 1).is_some_and(|&(j, _)| j == idx + 1) {
                        i += 1;
                        hash_pair(&node, &entries[i].1)
                    } else if idx + 1 < level_size {
                        match supplied.next() {
                            Some(sibling) => hash_pair(&node, sibling),
                            None => return false,
                        }
                    } else {
                        hash_pair(&node, &node)
                    }
                } else {
                    match supplied.next() {
                        Some(sibling) => hash_pair(sibling, &node),
                        None => return false,
                    }
                };
                next.push((idx / 2, parent));
                i += 1;
            }
            entries = next;
            level_size = level_size.div_ceil(2);
        }
        supplied.next().is_none() && entries.len() == 1 && entries[0].1 == root
    }
}

fn hash_pair(left: &Digest256, right: &Digest256) -> Digest256 {
    let mut hasher = Sha256::new();
    hasher.update(left);
    hasher.update(right);
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_items([b"only".as_ref()]);
        assert_eq!(tree.root(), sha256(b"only"));
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn empty_tree_has_empty_hash_root() {
        let tree = MerkleTree::from_items(std::iter::empty::<&[u8]>());
        assert_eq!(tree.root(), sha256(b""));
    }

    #[test]
    fn two_leaves_root_is_pair_hash() {
        let tree = MerkleTree::from_items([b"a".as_ref(), b"b".as_ref()]);
        assert_eq!(tree.root(), hash_pair(&sha256(b"a"), &sha256(b"b")));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let data = items(n);
            let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
            for (i, item) in data.iter().enumerate() {
                let proof = tree.proof(i).expect("index in range");
                assert!(
                    MerkleTree::verify_proof(tree.root(), item, i, &proof),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn proof_out_of_range_is_none() {
        let tree = MerkleTree::from_items([b"a".as_ref()]);
        assert!(tree.proof(1).is_none());
    }

    #[test]
    fn tampered_item_fails_verification() {
        let data = items(8);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        let proof = tree.proof(3).unwrap();
        assert!(!MerkleTree::verify_proof(tree.root(), b"tx-999", 3, &proof));
    }

    #[test]
    fn wrong_index_fails_verification() {
        let data = items(8);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        let proof = tree.proof(3).unwrap();
        assert!(!MerkleTree::verify_proof(tree.root(), &data[3], 4, &proof));
    }

    #[test]
    fn batch_proofs_verify_for_every_subset_shape() {
        for n in 1..=16 {
            let data = items(n);
            let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
            // Singles, pairs, the full set, and a strided subset.
            let mut subsets: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
            subsets.push((0..n).collect());
            subsets.push((0..n).step_by(3).collect());
            if n >= 2 {
                subsets.push(vec![0, n - 1]);
            }
            for subset in subsets {
                let proof = tree.proof_batch(&subset).expect("indices in range");
                let batch: Vec<(usize, &[u8])> =
                    subset.iter().map(|&i| (i, data[i].as_slice())).collect();
                assert!(
                    MerkleTree::verify_batch(tree.root(), &batch, &proof),
                    "n={n} subset={subset:?}"
                );
            }
        }
    }

    #[test]
    fn batch_of_all_leaves_ships_no_nodes() {
        let data = items(8);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        let all: Vec<usize> = (0..8).collect();
        let proof = tree.proof_batch(&all).unwrap();
        assert!(proof.nodes.is_empty(), "fully-proven tree is self-deriving");
    }

    #[test]
    fn batch_dedups_shared_nodes_against_single_proofs() {
        let data = items(16);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        let indices = [0usize, 1, 2, 3];
        let proof = tree.proof_batch(&indices).unwrap();
        let single_total: usize = indices.iter().map(|&i| tree.proof(i).unwrap().len()).sum();
        assert!(
            proof.nodes.len() < single_total,
            "batch ({}) must beat {} independent sibling paths ({single_total})",
            proof.nodes.len(),
            indices.len()
        );
        // Four adjacent leaves derive two levels internally: only the
        // subtree roots alongside the path remain.
        assert_eq!(proof.nodes.len(), 2);
    }

    #[test]
    fn batch_rejects_malformed_inputs() {
        let data = items(9);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        assert!(tree.proof_batch(&[]).is_none());
        assert!(tree.proof_batch(&[9]).is_none());
        let proof = tree.proof_batch(&[1, 5, 8]).unwrap();
        let good: Vec<(usize, &[u8])> = [1usize, 5, 8]
            .iter()
            .map(|&i| (i, data[i].as_slice()))
            .collect();
        assert!(MerkleTree::verify_batch(tree.root(), &good, &proof));
        // Item order must not matter: the verifier sorts by index.
        let shuffled: Vec<(usize, &[u8])> = vec![good[2], good[0], good[1]];
        assert!(MerkleTree::verify_batch(tree.root(), &shuffled, &proof));
        // Empty batches, duplicate indices, and out-of-range indices fail.
        assert!(!MerkleTree::verify_batch(tree.root(), &[], &proof));
        let dup = vec![good[0], good[0], good[1]];
        assert!(!MerkleTree::verify_batch(tree.root(), &dup, &proof));
        let oob = vec![good[0], good[1], (9, data[8].as_slice())];
        assert!(!MerkleTree::verify_batch(tree.root(), &oob, &proof));
        // Truncated, extended, reordered, and bit-flipped proofs fail.
        let mut truncated = proof.clone();
        truncated.nodes.pop();
        assert!(!MerkleTree::verify_batch(tree.root(), &good, &truncated));
        let mut extended = proof.clone();
        extended.nodes.push([0u8; 32]);
        assert!(!MerkleTree::verify_batch(tree.root(), &good, &extended));
        let mut reordered = proof.clone();
        reordered.nodes.swap(0, 1);
        assert!(!MerkleTree::verify_batch(tree.root(), &good, &reordered));
        let mut flipped = proof.clone();
        flipped.nodes[0][7] ^= 0x40;
        assert!(!MerkleTree::verify_batch(tree.root(), &good, &flipped));
        // A wrong item under a correct proof fails.
        let wrong = vec![(1usize, b"tx-999".as_ref()), good[1], good[2]];
        assert!(!MerkleTree::verify_batch(tree.root(), &wrong, &proof));
    }

    #[test]
    fn root_changes_when_any_leaf_changes() {
        let base = items(9);
        let tree = MerkleTree::from_items(base.iter().map(|v| v.as_slice()));
        for i in 0..base.len() {
            let mut changed = base.clone();
            changed[i] = b"mutated".to_vec();
            let other = MerkleTree::from_items(changed.iter().map(|v| v.as_slice()));
            assert_ne!(tree.root(), other.root(), "leaf {i}");
        }
    }
}
