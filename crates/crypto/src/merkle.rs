//! Binary Merkle trees over SHA-256.
//!
//! The chain substrate commits to a block's transactions with a Merkle root,
//! exactly as the PoW systems the paper targets (Bitcoin, Ethereum) do. Only
//! the block *header* flows through the HashCore PoW function, so the tree is
//! part of the surrounding blockchain machinery rather than of `H` itself.

use crate::sha256::{sha256, Digest256, Sha256};

/// A binary Merkle tree whose leaves are SHA-256 digests of the inserted
/// items.
///
/// Odd nodes at any level are paired with themselves (the Bitcoin
/// convention).
///
/// # Examples
///
/// ```
/// use hashcore_crypto::MerkleTree;
///
/// let tree = MerkleTree::from_items([b"tx-a".as_ref(), b"tx-b".as_ref()]);
/// let proof = tree.proof(0).unwrap();
/// assert!(MerkleTree::verify_proof(tree.root(), b"tx-a", 0, &proof));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` is the leaf level; the last level has exactly one node.
    levels: Vec<Vec<Digest256>>,
}

impl MerkleTree {
    /// Builds a tree from raw items, hashing each item to form a leaf.
    ///
    /// An empty iterator yields a tree whose root is `SHA256("")`, mirroring
    /// the convention of committing to the empty transaction list.
    pub fn from_items<'a, I>(items: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let leaves: Vec<Digest256> = items.into_iter().map(sha256).collect();
        Self::from_leaves(leaves)
    }

    /// Builds a tree from already-hashed leaves.
    pub fn from_leaves(leaves: Vec<Digest256>) -> Self {
        let leaves = if leaves.is_empty() {
            vec![sha256(b"")]
        } else {
            leaves
        };
        let mut levels = vec![leaves];
        while levels.last().expect("at least one level").len() > 1 {
            let prev = levels.last().expect("at least one level");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = pair[0];
                let right = if pair.len() == 2 { pair[1] } else { pair[0] };
                next.push(hash_pair(&left, &right));
            }
            levels.push(next);
        }
        Self { levels }
    }

    /// Returns the Merkle root.
    pub fn root(&self) -> Digest256 {
        self.levels.last().expect("at least one level")[0]
    }

    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Returns the inclusion proof (sibling path, leaf level upward) for the
    /// leaf at `index`, or `None` if `index` is out of range.
    pub fn proof(&self, index: usize) -> Option<Vec<Digest256>> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut proof = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if idx.is_multiple_of(2) {
                // Right sibling, or self-duplication when it does not exist.
                *level.get(idx + 1).unwrap_or(&level[idx])
            } else {
                level[idx - 1]
            };
            proof.push(sibling);
            idx /= 2;
        }
        Some(proof)
    }

    /// Verifies an inclusion proof produced by [`MerkleTree::proof`] for the
    /// raw (unhashed) `item` at leaf position `index`.
    pub fn verify_proof(root: Digest256, item: &[u8], index: usize, proof: &[Digest256]) -> bool {
        let mut node = sha256(item);
        let mut idx = index;
        for sibling in proof {
            node = if idx.is_multiple_of(2) {
                hash_pair(&node, sibling)
            } else {
                hash_pair(sibling, &node)
            };
            idx /= 2;
        }
        node == root
    }
}

fn hash_pair(left: &Digest256, right: &Digest256) -> Digest256 {
    let mut hasher = Sha256::new();
    hasher.update(left);
    hasher.update(right);
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_items([b"only".as_ref()]);
        assert_eq!(tree.root(), sha256(b"only"));
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn empty_tree_has_empty_hash_root() {
        let tree = MerkleTree::from_items(std::iter::empty::<&[u8]>());
        assert_eq!(tree.root(), sha256(b""));
    }

    #[test]
    fn two_leaves_root_is_pair_hash() {
        let tree = MerkleTree::from_items([b"a".as_ref(), b"b".as_ref()]);
        assert_eq!(tree.root(), hash_pair(&sha256(b"a"), &sha256(b"b")));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let data = items(n);
            let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
            for (i, item) in data.iter().enumerate() {
                let proof = tree.proof(i).expect("index in range");
                assert!(
                    MerkleTree::verify_proof(tree.root(), item, i, &proof),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn proof_out_of_range_is_none() {
        let tree = MerkleTree::from_items([b"a".as_ref()]);
        assert!(tree.proof(1).is_none());
    }

    #[test]
    fn tampered_item_fails_verification() {
        let data = items(8);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        let proof = tree.proof(3).unwrap();
        assert!(!MerkleTree::verify_proof(tree.root(), b"tx-999", 3, &proof));
    }

    #[test]
    fn wrong_index_fails_verification() {
        let data = items(8);
        let tree = MerkleTree::from_items(data.iter().map(|v| v.as_slice()));
        let proof = tree.proof(3).unwrap();
        assert!(!MerkleTree::verify_proof(tree.root(), &data[3], 4, &proof));
    }

    #[test]
    fn root_changes_when_any_leaf_changes() {
        let base = items(9);
        let tree = MerkleTree::from_items(base.iter().map(|v| v.as_slice()));
        for i in 0..base.len() {
            let mut changed = base.clone();
            changed[i] = b"mutated".to_vec();
            let other = MerkleTree::from_items(changed.iter().map(|v| v.as_slice()));
            assert_ne!(tree.root(), other.root(), "leaf {i}");
        }
    }
}
