//! 4-lane SHA-256: four independent messages hashed per compression pass.
//!
//! The scalar [`crate::Sha256`] is latency-bound: every round depends on the
//! previous one, so a modern core spends most of the compression waiting on
//! a single dependency chain. This module lays the hash state out as a
//! *struct of arrays* — each of the eight working variables is a `[u32; 4]`
//! holding one word per lane — so the four chains interleave and the
//! compiler can lower every round to 128-bit vector ops (or, failing that,
//! to four independent scalar chains that fill the pipeline). It is plain
//! safe Rust: no intrinsics, no `unsafe`, bit-identical per lane to the
//! scalar implementation (pinned by the FIPS vectors below and the
//! `proptest_sha256x4` equivalence sweep).
//!
//! Lanes are fully independent messages and may have different lengths: a
//! lane that runs out of blocks keeps compressing a dummy block but its
//! feed-forward is masked off, so its state — and therefore its digest —
//! is untouched. The hot callers (the nonce-scanning loops) hash four
//! equal-length `header ‖ nonce` inputs, where no masking ever triggers.
//!
//! Callers that assemble a lane from non-contiguous pieces (the mining
//! loops hash `header ‖ nonce` without materialising four separate
//! buffers) use [`sha256_x4_parts`], which treats each lane as the
//! concatenation of a slice list. Everything here is allocation-free:
//! state, schedules and staged blocks all live on the stack.

use crate::sha256::Digest256;

/// Number of independent messages one multi-lane evaluation hashes.
pub const SHA256_LANES: usize = 4;

/// One word across all four lanes.
type Lanes = [u32; 4];

/// Initial hash values, identical to the scalar path's.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants, identical to the scalar path's.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

#[inline(always)]
fn vadd(a: Lanes, b: Lanes) -> Lanes {
    [
        a[0].wrapping_add(b[0]),
        a[1].wrapping_add(b[1]),
        a[2].wrapping_add(b[2]),
        a[3].wrapping_add(b[3]),
    ]
}

#[inline(always)]
fn vxor(a: Lanes, b: Lanes) -> Lanes {
    [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
}

#[inline(always)]
fn vand(a: Lanes, b: Lanes) -> Lanes {
    [a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]]
}

#[inline(always)]
fn vnot(a: Lanes) -> Lanes {
    [!a[0], !a[1], !a[2], !a[3]]
}

#[inline(always)]
fn vrotr(a: Lanes, n: u32) -> Lanes {
    [
        a[0].rotate_right(n),
        a[1].rotate_right(n),
        a[2].rotate_right(n),
        a[3].rotate_right(n),
    ]
}

#[inline(always)]
fn vshr(a: Lanes, n: u32) -> Lanes {
    [a[0] >> n, a[1] >> n, a[2] >> n, a[3] >> n]
}

/// Splats one scalar across all lanes.
#[inline(always)]
fn splat(x: u32) -> Lanes {
    [x; SHA256_LANES]
}

/// Compresses one 64-byte block per lane into `state`, feeding forward only
/// the lanes flagged `active` — an inactive lane's state is untouched, as if
/// the block had never been presented.
#[inline(always)]
fn compress_x4(state: &mut [Lanes; 8], blocks: &[[u8; 64]; SHA256_LANES], active: [bool; 4]) {
    // Transpose the four blocks' big-endian words into the lane layout.
    let mut w = [[0u32; SHA256_LANES]; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        for (lane, block) in blocks.iter().enumerate() {
            word[lane] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
    }
    for i in 16..64 {
        let s0 = vxor(
            vxor(vrotr(w[i - 15], 7), vrotr(w[i - 15], 18)),
            vshr(w[i - 15], 3),
        );
        let s1 = vxor(
            vxor(vrotr(w[i - 2], 17), vrotr(w[i - 2], 19)),
            vshr(w[i - 2], 10),
        );
        w[i] = vadd(vadd(w[i - 16], s0), vadd(w[i - 7], s1));
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..64 {
        let s1 = vxor(vxor(vrotr(e, 6), vrotr(e, 11)), vrotr(e, 25));
        let ch = vxor(vand(e, f), vand(vnot(e), g));
        let temp1 = vadd(vadd(h, s1), vadd(vadd(ch, splat(K[i])), w[i]));
        let s0 = vxor(vxor(vrotr(a, 2), vrotr(a, 13)), vrotr(a, 22));
        let maj = vxor(vxor(vand(a, b), vand(a, c)), vand(b, c));
        let temp2 = vadd(s0, maj);

        h = g;
        g = f;
        f = e;
        e = vadd(d, temp1);
        d = c;
        c = b;
        b = a;
        a = vadd(temp1, temp2);
    }

    let sums = [a, b, c, d, e, f, g, h];
    for (word, sum) in state.iter_mut().zip(sums) {
        for lane in 0..SHA256_LANES {
            if active[lane] {
                word[lane] = word[lane].wrapping_add(sum[lane]);
            }
        }
    }
}

/// Writes block `block_index` of the padded stream for a message formed by
/// concatenating `parts` (total length `total_len`, spanning `blocks` padded
/// blocks) into `out`.
///
/// The padded stream is the FIPS 180-4 framing: the message bytes, one
/// `0x80` terminator, zeros, and the 64-bit big-endian bit length closing
/// the final block.
fn fill_block(
    parts: &[&[u8]],
    total_len: usize,
    blocks: usize,
    block_index: usize,
    out: &mut [u8; 64],
) {
    out.fill(0);
    let start = block_index * 64;
    let end = start + 64;

    // Message bytes overlapping this block, gathered across the parts.
    let mut offset = 0usize;
    for part in parts {
        let part_start = offset;
        let part_end = offset + part.len();
        if part_end > start && part_start < end {
            let from = start.max(part_start);
            let to = end.min(part_end);
            out[from - start..to - start]
                .copy_from_slice(&part[from - part_start..to - part_start]);
        }
        offset = part_end;
    }

    // The 0x80 terminator immediately follows the message.
    if (start..end).contains(&total_len) {
        out[total_len - start] = 0x80;
    }

    // The bit length closes the last block.
    if block_index + 1 == blocks {
        let bit_len = (total_len as u64) * 8;
        out[56..64].copy_from_slice(&bit_len.to_be_bytes());
    }
}

/// Hashes four independent messages, each given as a list of slices that are
/// treated as one concatenated message, returning the four digests.
///
/// Lane `i`'s digest is byte-identical to
/// [`crate::sha256()`](fn@crate::sha256)`(concat(lanes[i]))`. Lanes may have different total
/// lengths; the compression loop runs until the longest lane's final block
/// and masks finished lanes out of the feed-forward. No heap allocation is
/// performed.
///
/// This is the mining loops' entry point: a `header ‖ nonce` input is two
/// slices, so four nonce variants hash without materialising four buffers.
///
/// # Panics
///
/// Panics (in debug builds) if a lane exceeds the 2^61 − 1 byte FIPS length
/// bound — the same contract as the scalar [`crate::Sha256`].
pub fn sha256_x4_parts(lanes: [&[&[u8]]; SHA256_LANES]) -> [Digest256; SHA256_LANES] {
    let mut total_len = [0usize; SHA256_LANES];
    let mut blocks = [0usize; SHA256_LANES];
    for lane in 0..SHA256_LANES {
        total_len[lane] = lanes[lane].iter().map(|part| part.len()).sum();
        debug_assert!(
            (total_len[lane] as u64) < 1u64 << 61,
            "message exceeds the FIPS 180-4 64-bit length field"
        );
        blocks[lane] = (total_len[lane] + 9).div_ceil(64);
    }
    let max_blocks = blocks.iter().copied().max().unwrap_or(0);

    let mut state = [[0u32; SHA256_LANES]; 8];
    for (word, init) in state.iter_mut().zip(H0) {
        *word = splat(init);
    }

    let mut staged = [[0u8; 64]; SHA256_LANES];
    for block_index in 0..max_blocks {
        let mut active = [false; SHA256_LANES];
        for lane in 0..SHA256_LANES {
            if block_index < blocks[lane] {
                fill_block(
                    lanes[lane],
                    total_len[lane],
                    blocks[lane],
                    block_index,
                    &mut staged[lane],
                );
                active[lane] = true;
            }
        }
        compress_x4(&mut state, &staged, active);
    }

    let mut out = [[0u8; 32]; SHA256_LANES];
    for lane in 0..SHA256_LANES {
        for (i, word) in state.iter().enumerate() {
            out[lane][i * 4..i * 4 + 4].copy_from_slice(&word[lane].to_be_bytes());
        }
    }
    out
}

/// Hashes four independent messages in one 4-lane pass.
///
/// Lane `i`'s digest is byte-identical to [`crate::sha256()`](fn@crate::sha256)`(messages[i])`; see
/// [`sha256_x4_parts`] for the mixed-length semantics.
pub fn sha256_x4(messages: [&[u8]; SHA256_LANES]) -> [Digest256; SHA256_LANES] {
    sha256_x4_parts([
        &[messages[0]],
        &[messages[1]],
        &[messages[2]],
        &[messages[3]],
    ])
}

/// Double SHA-256 of four independent messages: lane `i` is byte-identical
/// to [`crate::sha256d`]`(messages[i])`. Both applications run 4-lane (the
/// second over four uniform 32-byte inputs, so no masking occurs there).
pub fn sha256d_x4(messages: [&[u8]; SHA256_LANES]) -> [Digest256; SHA256_LANES] {
    let first = sha256_x4(messages);
    sha256_x4([&first[0], &first[1], &first[2], &first[3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sha256, sha256d};

    #[test]
    fn fips_vectors_per_lane() {
        // The four canonical FIPS 180-4 vectors, one per lane — different
        // lengths, so the masked tail path runs too.
        let two_block = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        let four_block: &[u8] = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        let msgs: [&[u8]; 4] = [b"", b"abc", two_block, four_block];
        let digests = sha256_x4(msgs);
        for (lane, msg) in msgs.iter().enumerate() {
            assert_eq!(digests[lane], sha256(msg), "lane {lane}");
        }
    }

    #[test]
    fn equal_length_lanes_match_scalar() {
        let msgs: [&[u8]; 4] = [b"nonce-0", b"nonce-1", b"nonce-2", b"nonce-3"];
        let digests = sha256_x4(msgs);
        for (lane, msg) in msgs.iter().enumerate() {
            assert_eq!(digests[lane], sha256(msg), "lane {lane}");
        }
    }

    #[test]
    fn padding_boundary_lengths_match_scalar() {
        // Every interesting padding boundary, rotated across lanes so each
        // boundary exercises each lane position.
        let data = [0xa5u8; 256];
        let lengths = [55usize, 56, 57, 63, 64, 65, 119, 120, 121, 127, 128, 129];
        for window in lengths.windows(4) {
            let msgs: [&[u8]; 4] = [
                &data[..window[0]],
                &data[..window[1]],
                &data[..window[2]],
                &data[..window[3]],
            ];
            let digests = sha256_x4(msgs);
            for lane in 0..4 {
                assert_eq!(digests[lane], sha256(msgs[lane]), "length {}", window[lane]);
            }
        }
    }

    #[test]
    fn parts_concatenate_exactly() {
        let header = b"block-header-bytes";
        let nonces: [[u8; 8]; 4] = [0u64, 1, u64::MAX, 0xdead_beef].map(u64::to_le_bytes);
        let lanes: [[&[u8]; 2]; 4] = [
            [header, &nonces[0]],
            [header, &nonces[1]],
            [header, &nonces[2]],
            [header, &nonces[3]],
        ];
        let digests = sha256_x4_parts([&lanes[0], &lanes[1], &lanes[2], &lanes[3]]);
        for lane in 0..4 {
            let mut whole = header.to_vec();
            whole.extend_from_slice(&nonces[lane]);
            assert_eq!(digests[lane], sha256(&whole), "lane {lane}");
        }
    }

    #[test]
    fn empty_parts_and_empty_lanes() {
        let lanes: [[&[u8]; 3]; 4] = [
            [b"", b"", b""],
            [b"a", b"", b"bc"],
            [b"", b"abc", b""],
            [b"abc", b"def", b"g"],
        ];
        let digests = sha256_x4_parts([&lanes[0], &lanes[1], &lanes[2], &lanes[3]]);
        assert_eq!(digests[0], sha256(b""));
        assert_eq!(digests[1], sha256(b"abc"));
        assert_eq!(digests[2], sha256(b"abc"));
        assert_eq!(digests[3], sha256(b"abcdefg"));
    }

    #[test]
    fn double_sha_matches_scalar_double_sha() {
        let msgs: [&[u8]; 4] = [
            b"",
            b"hashcore",
            b"a longer message spanning one block",
            b"x",
        ];
        let digests = sha256d_x4(msgs);
        for (lane, msg) in msgs.iter().enumerate() {
            assert_eq!(digests[lane], sha256d(msg), "lane {lane}");
        }
    }

    #[test]
    fn multi_kilobyte_lanes_match_scalar() {
        let data: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        let msgs: [&[u8]; 4] = [&data[..8192], &data[..4097], &data[..63], &data[..1000]];
        let digests = sha256_x4(msgs);
        for (lane, msg) in msgs.iter().enumerate() {
            assert_eq!(digests[lane], sha256(msg), "lane {lane}");
        }
    }
}
