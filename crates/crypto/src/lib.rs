//! # hashcore-crypto
//!
//! Cryptographic primitives used by the HashCore Proof-of-Work reproduction.
//!
//! The paper's *hash gates* are instantiations of SHA-256 (Section IV). This
//! crate provides a from-scratch, dependency-free implementation of the
//! FIPS 180-4 secure hash family members used throughout the workspace:
//!
//! * [`Sha256`] / [`sha256()`](fn@sha256) — the hash-gate function `G` in the paper,
//! * [`sha256_x4`] / [`sha256d_x4`] — the 4-lane struct-of-arrays variant the
//!   nonce-scanning loops batch hash-gate evaluations through,
//! * [`Sha512`] / [`sha512()`](fn@sha512) — used by the memory-hard baseline,
//! * [`sha256d`] — double SHA-256 (the Bitcoin PoW baseline),
//! * [`hmac_sha256`] — keyed hashing used by the deterministic stream cipher
//!   in the widget-selection baseline,
//! * [`MerkleTree`] — transaction commitment trees for the chain substrate,
//! * [`hex`] — hexadecimal encoding/decoding helpers.
//!
//! Everything is pure, deterministic Rust with no `unsafe` code, so PoW
//! verification is bit-exact across platforms.
//!
//! # Examples
//!
//! ```
//! use hashcore_crypto::{sha256, hex};
//!
//! let digest = sha256(b"abc");
//! assert_eq!(
//!     hex::encode(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hex;
pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod sha256x4;
pub mod sha512;

pub use hmac::hmac_sha256;
pub use merkle::{BatchProof, MerkleTree};
pub use sha256::{sha256, sha256d, Digest256, Sha256};
pub use sha256x4::{sha256_x4, sha256_x4_parts, sha256d_x4, SHA256_LANES};
pub use sha512::{sha512, Digest512, Sha512};

/// Number of bytes in a SHA-256 digest (the hash-gate output width `n`).
pub const DIGEST256_LEN: usize = 32;

/// Number of bytes in a SHA-512 digest.
pub const DIGEST512_LEN: usize = 64;
