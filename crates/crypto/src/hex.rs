//! Hexadecimal encoding and decoding helpers.
//!
//! Used pervasively for digest display, golden-value tests, and textual
//! experiment output.

use std::fmt;

/// Error returned by [`decode`] when the input is not valid hexadecimal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeHexError {
    /// The input length is odd, so it cannot encode whole bytes.
    OddLength {
        /// The offending length.
        len: usize,
    },
    /// A character outside `[0-9a-fA-F]` was encountered.
    InvalidCharacter {
        /// The offending character.
        character: char,
        /// Byte index of the character in the input.
        index: usize,
    },
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeHexError::OddLength { len } => {
                write!(f, "hex string has odd length {len}")
            }
            DecodeHexError::InvalidCharacter { character, index } => {
                write!(f, "invalid hex character {character:?} at index {index}")
            }
        }
    }
}

impl std::error::Error for DecodeHexError {}

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes `bytes` as a lowercase hexadecimal string.
///
/// # Examples
///
/// ```
/// assert_eq!(hashcore_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hexadecimal string (upper or lower case) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError`] if the string has odd length or contains a
/// non-hexadecimal character.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), hashcore_crypto::hex::DecodeHexError> {
/// let bytes = hashcore_crypto::hex::decode("DEAD")?;
/// assert_eq!(bytes, vec![0xde, 0xad]);
/// # Ok(())
/// # }
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength { len: s.len() });
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let hi = nibble(bytes[i]).ok_or(DecodeHexError::InvalidCharacter {
            character: bytes[i] as char,
            index: i,
        })?;
        let lo = nibble(bytes[i + 1]).ok_or(DecodeHexError::InvalidCharacter {
            character: bytes[i + 1] as char,
            index: i + 1,
        })?;
        out.push((hi << 4) | lo);
        i += 2;
    }
    Ok(out)
}

fn nibble(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        let encoded = encode(&data);
        assert_eq!(decode(&encoded).unwrap(), data);
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("ABCDEF").unwrap(), vec![0xab, 0xcd, 0xef]);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(decode("abc"), Err(DecodeHexError::OddLength { len: 3 }));
    }

    #[test]
    fn invalid_character_rejected() {
        match decode("zz") {
            Err(DecodeHexError::InvalidCharacter { character, index }) => {
                assert_eq!(character, 'z');
                assert_eq!(index, 0);
            }
            other => panic!("expected invalid character error, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let err = decode("abc").unwrap_err();
        assert!(err.to_string().contains("odd length"));
    }
}
