//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used to derive independent, keyed pseudo-random streams from the hash seed
//! (for example the widget-selection baseline derives its pool indices with
//! `HMAC(seed, counter)`), keeping every derived stream inside the same
//! security assumption as the hash gate.

use crate::sha256::{sha256, Digest256, Sha256};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use hashcore_crypto::{hmac_sha256, hex};
///
/// // RFC 4231 test case 2.
/// let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(
///     hex::encode(&tag),
///     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest256 {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = sha256(key);
        key_block[..digest.len()].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// A deterministic byte stream derived from a key via counter-mode HMAC.
///
/// Block `i` of the stream is `HMAC-SHA256(key, i_le_bytes)`. The stream is
/// infinite and reproducible; it is used wherever the reproduction needs
/// "more pseudo-random bytes than the 256-bit seed provides" without stepping
/// outside the hash-gate security assumption.
///
/// # Examples
///
/// ```
/// use hashcore_crypto::hmac::HmacStream;
///
/// let mut s1 = HmacStream::new(b"seed");
/// let mut s2 = HmacStream::new(b"seed");
/// assert_eq!(s1.next_u64(), s2.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct HmacStream {
    key: Vec<u8>,
    counter: u64,
    buffer: Digest256,
    offset: usize,
}

impl HmacStream {
    /// Creates a stream keyed by `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut stream = Self {
            key: key.to_vec(),
            counter: 0,
            buffer: [0u8; 32],
            offset: 32,
        };
        stream.refill();
        stream
    }

    fn refill(&mut self) {
        self.buffer = hmac_sha256(&self.key, &self.counter.to_le_bytes());
        self.counter = self.counter.wrapping_add(1);
        self.offset = 0;
    }

    /// Returns the next byte of the stream.
    pub fn next_byte(&mut self) -> u8 {
        if self.offset >= self.buffer.len() {
            self.refill();
        }
        let b = self.buffer[self.offset];
        self.offset += 1;
        b
    }

    /// Returns the next 8 bytes of the stream as a little-endian `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        for b in bytes.iter_mut() {
            *b = self.next_byte();
        }
        u64::from_le_bytes(bytes)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses rejection sampling so the result is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Fills `out` with stream bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            *b = self.next_byte();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn stream_is_deterministic_and_key_separated() {
        let mut a = HmacStream::new(b"key-a");
        let mut b = HmacStream::new(b"key-a");
        let mut c = HmacStream::new(b"key-b");
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut s = HmacStream::new(b"range");
        for bound in [1u64, 2, 3, 7, 100, 1_000_003] {
            for _ in 0..100 {
                assert!(s.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        HmacStream::new(b"x").next_bounded(0);
    }

    #[test]
    fn fill_matches_next_byte() {
        let mut a = HmacStream::new(b"fill");
        let mut b = HmacStream::new(b"fill");
        let mut buf = [0u8; 100];
        a.fill(&mut buf);
        let individual: Vec<u8> = (0..100).map(|_| b.next_byte()).collect();
        assert_eq!(buf.to_vec(), individual);
    }
}
