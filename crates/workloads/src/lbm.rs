//! An lbm-like floating-point stencil kernel.
//!
//! SPEC's lbm (lattice Boltzmann) streams over a regular grid performing
//! dense double-precision arithmetic with essentially perfectly predictable
//! branches. This kernel sweeps a 1-D grid of f64 cells, combining each cell
//! with its two neighbours through a weighted relaxation step and writing the
//! result to a second grid, then swapping roles on the next time step.
//! Memory layout: `[0, 0x4000)` grid A, `[0x4000, 0x8000)` grid B.

use crate::WorkloadParams;
use hashcore_isa::{
    BranchCond, FpOp, FpReg, IntAluOp, IntReg, Program, ProgramBuilder, Terminator,
};

const CELLS: i64 = 1024;
const GRID_B_OFFSET: i32 = 0x4000;

const R_STEPS: IntReg = IntReg(0);
const R_ZERO: IntReg = IntReg(1);
const R_CELL: IntReg = IntReg(2);
const R_LIMIT: IntReg = IntReg(3);
const R_ADDR: IntReg = IntReg(4);

const F_CENTER: FpReg = FpReg(0);
const F_LEFT: FpReg = FpReg(1);
const F_RIGHT: FpReg = FpReg(2);
const F_SUM: FpReg = FpReg(3);
const F_OMEGA: FpReg = FpReg(4);
const F_NEW: FpReg = FpReg(5);
const F_THIRD: FpReg = FpReg(6);

/// Builds the lbm-like stencil kernel at the given scale.
pub fn build(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new(1 << 15);

    let entry = b.begin_block();
    b.load_imm(R_STEPS, params.outer_iterations.max(1) as i64);
    b.load_imm(R_ZERO, 0);
    b.load_imm(R_LIMIT, CELLS);
    // omega = 3 / 16, third = 5 / 16 built from integer conversions so the
    // kernel stays self-contained.
    b.load_imm(R_ADDR, 3);
    b.fp_from_int(F_OMEGA, R_ADDR);
    b.load_imm(R_ADDR, 16);
    b.fp_from_int(F_THIRD, R_ADDR);
    b.fp(FpOp::Div, F_OMEGA, F_OMEGA, F_THIRD);
    b.load_imm(R_ADDR, 5);
    b.fp_from_int(F_THIRD, R_ADDR);
    b.load_imm(R_CELL, 16);
    b.fp_from_int(F_NEW, R_CELL);
    b.fp(FpOp::Div, F_THIRD, F_THIRD, F_NEW);
    let step_head = b.reserve_block();
    b.terminate(Terminator::Jump(step_head));

    let cell_loop = b.reserve_block();
    let cell_latch = b.reserve_block();
    let step_latch = b.reserve_block();
    let exit = b.reserve_block();

    // step_head: rewind the cell cursor.
    b.begin_reserved(step_head);
    b.load_imm(R_CELL, 1);
    b.terminate(Terminator::Jump(cell_loop));

    // cell_loop: the relaxation stencil.
    b.begin_reserved(cell_loop);
    b.int_alu_imm(IntAluOp::Shl, R_ADDR, R_CELL, 3);
    b.fp_load(F_CENTER, R_ADDR, 0);
    b.fp_load(F_LEFT, R_ADDR, -8);
    b.fp_load(F_RIGHT, R_ADDR, 8);
    b.fp(FpOp::Add, F_SUM, F_LEFT, F_RIGHT);
    b.fp(FpOp::Mul, F_SUM, F_SUM, F_THIRD);
    b.fp(FpOp::Mul, F_NEW, F_CENTER, F_OMEGA);
    b.fp(FpOp::Add, F_NEW, F_NEW, F_SUM);
    b.fp(FpOp::Min, F_NEW, F_NEW, F_CENTER);
    b.fp(FpOp::Max, F_NEW, F_NEW, F_SUM);
    b.fp_store(F_NEW, R_ADDR, GRID_B_OFFSET);
    b.terminate(Terminator::Jump(cell_latch));

    // cell_latch: next cell.
    b.begin_reserved(cell_latch);
    b.int_alu_imm(IntAluOp::Add, R_CELL, R_CELL, 1);
    b.branch(BranchCond::Ltu, R_CELL, R_LIMIT, cell_loop, step_latch);

    // step_latch: snapshot and run the next time step.
    b.begin_reserved(step_latch);
    b.snapshot();
    b.int_alu_imm(IntAluOp::Sub, R_STEPS, R_STEPS, 1);
    b.branch(BranchCond::Ne, R_STEPS, R_ZERO, step_head, exit);

    b.begin_reserved(exit);
    b.snapshot();
    b.terminate(Terminator::Halt);

    b.finish(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_isa::OpClass;
    use hashcore_vm::{ExecConfig, Executor};

    #[test]
    fn kernel_is_fp_dominated_and_terminates() {
        let program = build(&WorkloadParams {
            outer_iterations: 2,
            memory_seed: 4,
        });
        let exec = Executor::new(ExecConfig {
            max_steps: 10_000_000,
            collect_trace: true,
            memory_seed: 4,
        })
        .execute(&program)
        .expect("kernel runs");
        assert_eq!(exec.snapshot_count, 3);
        let counts = exec.trace.class_counts();
        let fp = counts.get(&OpClass::FpAlu).copied().unwrap_or(0);
        let branches = counts.get(&OpClass::Branch).copied().unwrap_or(0);
        assert!(fp > branches * 3, "fp {fp} branches {branches}");
    }

    #[test]
    fn fp_results_stay_finite_and_canonical() {
        let program = build(&WorkloadParams {
            outer_iterations: 3,
            memory_seed: 77,
        });
        let exec = Executor::new(ExecConfig {
            max_steps: 10_000_000,
            collect_trace: false,
            memory_seed: 77,
        })
        .execute(&program)
        .expect("run");
        for f in exec.final_state.fp_regs {
            assert!(!f.is_nan(), "NaN leaked into architectural state");
        }
    }
}
