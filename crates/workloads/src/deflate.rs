//! A deflate-like compression kernel.
//!
//! The inner loop of LZ-style compressors (SPEC's xz / the classic deflate
//! loop) hashes a small input window, probes a hash table for a previous
//! occurrence, branches on match/no-match, and updates the table. The memory
//! layout here is `[0, 0x8000)` input stream, `[0x8000, 0xc000)` hash table,
//! `0xe000` the output cursor slot.

use crate::WorkloadParams;
use hashcore_isa::{BranchCond, IntAluOp, IntMulOp, IntReg, Program, ProgramBuilder, Terminator};

const POSITIONS_PER_BLOCK: i64 = 512;
const TABLE_BASE: i64 = 0x8000;
const TABLE_MASK: i32 = 0x3ff; // 1024 entries
const OUT_SLOT: i32 = 0xe000;

const R_BLOCKS: IntReg = IntReg(0);
const R_ZERO: IntReg = IntReg(1);
const R_POS: IntReg = IntReg(2);
const R_LIMIT: IntReg = IntReg(3);
const R_ADDR: IntReg = IntReg(4);
const R_WINDOW: IntReg = IntReg(5);
const R_HASH: IntReg = IntReg(6);
const R_HASHK: IntReg = IntReg(7);
const R_TBLADDR: IntReg = IntReg(8);
const R_PROBE: IntReg = IntReg(9);
const R_MATCHES: IntReg = IntReg(10);
const R_TBLBASE: IntReg = IntReg(11);
const R_LITERALS: IntReg = IntReg(12);

/// Builds the deflate-like kernel at the given scale.
pub fn build(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new(1 << 16);

    let entry = b.begin_block();
    b.load_imm(R_BLOCKS, params.outer_iterations.max(1) as i64);
    b.load_imm(R_ZERO, 0);
    b.load_imm(R_LIMIT, POSITIONS_PER_BLOCK);
    b.load_imm(R_HASHK, 0x9e37_79b9_7f4a_7c15u64 as i64);
    b.load_imm(R_TBLBASE, TABLE_BASE);
    b.load_imm(R_MATCHES, 0);
    b.load_imm(R_LITERALS, 0);
    let block_head = b.reserve_block();
    b.terminate(Terminator::Jump(block_head));

    let pos_loop = b.reserve_block();
    let on_match = b.reserve_block();
    let on_literal = b.reserve_block();
    let pos_latch = b.reserve_block();
    let block_latch = b.reserve_block();
    let exit = b.reserve_block();

    // block_head: rewind the position cursor.
    b.begin_reserved(block_head);
    b.load_imm(R_POS, 0);
    b.terminate(Terminator::Jump(pos_loop));

    // pos_loop: hash the window at the current position and probe the table.
    b.begin_reserved(pos_loop);
    b.int_alu_imm(IntAluOp::Shl, R_ADDR, R_POS, 3);
    b.load(R_WINDOW, R_ADDR, 0);
    b.int_mul(IntMulOp::Mul, R_HASH, R_WINDOW, R_HASHK);
    b.int_alu_imm(IntAluOp::Shr, R_HASH, R_HASH, 52);
    b.int_alu_imm(IntAluOp::And, R_HASH, R_HASH, TABLE_MASK);
    b.int_alu_imm(IntAluOp::Shl, R_TBLADDR, R_HASH, 3);
    b.int_alu(IntAluOp::Add, R_TBLADDR, R_TBLADDR, R_TBLBASE);
    b.load(R_PROBE, R_TBLADDR, 0);
    b.branch(BranchCond::Eq, R_PROBE, R_WINDOW, on_match, on_literal);

    // on_match: record a back-reference.
    b.begin_reserved(on_match);
    b.int_alu_imm(IntAluOp::Add, R_MATCHES, R_MATCHES, 1);
    b.store(R_POS, R_ZERO, OUT_SLOT);
    b.terminate(Terminator::Jump(pos_latch));

    // on_literal: emit a literal and update the hash table.
    b.begin_reserved(on_literal);
    b.int_alu_imm(IntAluOp::Add, R_LITERALS, R_LITERALS, 1);
    b.store(R_WINDOW, R_TBLADDR, 0);
    b.terminate(Terminator::Jump(pos_latch));

    // pos_latch: advance to the next position.
    b.begin_reserved(pos_latch);
    b.int_alu_imm(IntAluOp::Add, R_POS, R_POS, 1);
    b.branch(BranchCond::Ltu, R_POS, R_LIMIT, pos_loop, block_latch);

    // block_latch: snapshot the compressor state and start the next block.
    b.begin_reserved(block_latch);
    b.snapshot();
    b.int_alu_imm(IntAluOp::Sub, R_BLOCKS, R_BLOCKS, 1);
    b.branch(BranchCond::Ne, R_BLOCKS, R_ZERO, block_head, exit);

    b.begin_reserved(exit);
    b.snapshot();
    b.terminate(Terminator::Halt);

    b.finish(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_vm::{ExecConfig, Executor};

    fn run(iterations: u32, seed: u64) -> hashcore_vm::Execution {
        let program = build(&WorkloadParams {
            outer_iterations: iterations,
            memory_seed: seed,
        });
        Executor::new(ExecConfig {
            max_steps: 10_000_000,
            collect_trace: false,
            memory_seed: seed,
        })
        .execute(&program)
        .expect("kernel runs")
    }

    #[test]
    fn kernel_terminates_with_expected_snapshots() {
        let exec = run(3, 5);
        assert_eq!(exec.snapshot_count, 4);
        assert!(exec.dynamic_instructions as i64 > POSITIONS_PER_BLOCK * 3 * 8);
    }

    #[test]
    fn positions_are_classified_as_match_or_literal() {
        let exec = run(2, 9);
        let matches = exec.final_state.int_regs[R_MATCHES.0 as usize];
        let literals = exec.final_state.int_regs[R_LITERALS.0 as usize];
        assert_eq!(matches + literals, 2 * POSITIONS_PER_BLOCK as u64);
        // With the second block revisiting the same input the table is warm,
        // so at least some matches must occur.
        assert!(matches > 0, "expected some matches, got {matches}");
        assert!(literals > 0);
    }
}
