//! An mcf-like pointer-chasing network kernel.
//!
//! SPEC's mcf (network simplex) is dominated by irregular pointer chasing
//! over arc/node structures with data-dependent branching on costs. This
//! kernel walks a pseudo-random successor chain over a node table, keeping a
//! running reduced-cost accumulator and occasionally writing back updated
//! potentials. Memory layout: `[0, 0x8000)` the node table (4096 nodes of
//! 8 bytes), `0xa000` the spill slot for updated potentials.

use crate::WorkloadParams;
use hashcore_isa::{BranchCond, IntAluOp, IntReg, Program, ProgramBuilder, Terminator};

const STEPS_PER_PIVOT: i64 = 1024;
const NODE_MASK: i32 = 0x7ff8; // 4096 nodes, 8-byte aligned
const SPILL_SLOT: i32 = 0xa000;

const R_PIVOTS: IntReg = IntReg(0);
const R_ZERO: IntReg = IntReg(1);
const R_STEP: IntReg = IntReg(2);
const R_LIMIT: IntReg = IntReg(3);
const R_NODEADDR: IntReg = IntReg(4);
const R_NODE: IntReg = IntReg(5);
const R_COST: IntReg = IntReg(6);
const R_DELTA: IntReg = IntReg(7);
const R_UPDATES: IntReg = IntReg(8);

/// Builds the mcf-like kernel at the given scale.
pub fn build(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new(1 << 16);

    let entry = b.begin_block();
    b.load_imm(R_PIVOTS, params.outer_iterations.max(1) as i64);
    b.load_imm(R_ZERO, 0);
    b.load_imm(R_LIMIT, STEPS_PER_PIVOT);
    b.load_imm(R_NODEADDR, 64);
    b.load_imm(R_COST, 0);
    b.load_imm(R_UPDATES, 0);
    let pivot_head = b.reserve_block();
    b.terminate(Terminator::Jump(pivot_head));

    let chase_loop = b.reserve_block();
    let improve = b.reserve_block();
    let no_improve = b.reserve_block();
    let chase_latch = b.reserve_block();
    let pivot_latch = b.reserve_block();
    let exit = b.reserve_block();

    // pivot_head: restart the chase for this pivot.
    b.begin_reserved(pivot_head);
    b.load_imm(R_STEP, 0);
    b.terminate(Terminator::Jump(chase_loop));

    // chase_loop: follow the successor pointer and compute the reduced cost.
    b.begin_reserved(chase_loop);
    b.load(R_NODE, R_NODEADDR, 0);
    b.int_alu_imm(IntAluOp::And, R_NODEADDR, R_NODE, NODE_MASK);
    b.int_alu_imm(IntAluOp::Shr, R_DELTA, R_NODE, 32);
    b.int_alu(IntAluOp::Add, R_COST, R_COST, R_DELTA);
    b.int_alu_imm(IntAluOp::And, R_DELTA, R_NODE, 7);
    b.branch(BranchCond::Eq, R_DELTA, R_ZERO, improve, no_improve);

    // improve: write back an updated potential (rare path).
    b.begin_reserved(improve);
    b.int_alu_imm(IntAluOp::Add, R_UPDATES, R_UPDATES, 1);
    b.store(R_COST, R_ZERO, SPILL_SLOT);
    b.terminate(Terminator::Jump(chase_latch));

    // no_improve: rotate the cost accumulator to keep it live.
    b.begin_reserved(no_improve);
    b.int_alu_imm(IntAluOp::Rotl, R_COST, R_COST, 7);
    b.terminate(Terminator::Jump(chase_latch));

    // chase_latch: next step of this pivot.
    b.begin_reserved(chase_latch);
    b.int_alu_imm(IntAluOp::Add, R_STEP, R_STEP, 1);
    b.branch(BranchCond::Ltu, R_STEP, R_LIMIT, chase_loop, pivot_latch);

    // pivot_latch: snapshot and start the next pivot.
    b.begin_reserved(pivot_latch);
    b.snapshot();
    b.int_alu_imm(IntAluOp::Sub, R_PIVOTS, R_PIVOTS, 1);
    b.branch(BranchCond::Ne, R_PIVOTS, R_ZERO, pivot_head, exit);

    b.begin_reserved(exit);
    b.snapshot();
    b.terminate(Terminator::Halt);

    b.finish(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_vm::{ExecConfig, Executor};

    #[test]
    fn kernel_terminates_and_chases() {
        let program = build(&WorkloadParams {
            outer_iterations: 2,
            memory_seed: 3,
        });
        let exec = Executor::new(ExecConfig {
            max_steps: 10_000_000,
            collect_trace: true,
            memory_seed: 3,
        })
        .execute(&program)
        .expect("kernel runs");
        assert_eq!(exec.snapshot_count, 3);
        // Every chase step issues exactly one load.
        let loads = exec
            .trace
            .class_counts()
            .get(&hashcore_isa::OpClass::Load)
            .copied()
            .unwrap_or(0);
        assert!(loads as i64 >= STEPS_PER_PIVOT * 2);
    }

    #[test]
    fn cost_depends_on_graph_data() {
        let program = build(&WorkloadParams {
            outer_iterations: 1,
            memory_seed: 0,
        });
        let run = |seed: u64| {
            Executor::new(ExecConfig {
                max_steps: 10_000_000,
                collect_trace: false,
                memory_seed: seed,
            })
            .execute(&program)
            .expect("run")
            .final_state
            .int_regs[R_COST.0 as usize]
        };
        assert_ne!(run(10), run(11));
    }
}
