//! A Leela-like Go-engine kernel.
//!
//! SPEC CPU 2017's 641.leela_s spends its time in board evaluation: sweeping
//! a 19×19 board, classifying stones, counting liberties of neighbouring
//! points, and maintaining Zobrist-style incremental hashes. All of that is
//! integer ALU work, short data-dependent branches, and small-working-set
//! loads/stores — which is exactly what this kernel reproduces:
//!
//! * an outer loop over *playouts*,
//! * an inner loop over the 361 board points,
//! * per point: load the cell, branch on "empty vs occupied" (data
//!   dependent, since the board content comes from the seeded memory image),
//!   inspect two neighbours with further data-dependent branches, update a
//!   Zobrist hash (multiply + xor with a key-table load), and store the
//!   liberty count to an auxiliary array.
//!
//! The kernel's memory layout (all inside the seeded data segment):
//! `[0, 0x0b50)` board cells, `[0x1000, 0x2000)` auxiliary liberty array,
//! `[0x2000, 0x2200)` Zobrist key table, `0x3000` the hash accumulator slot.

use crate::WorkloadParams;
use hashcore_isa::{BranchCond, IntAluOp, IntMulOp, IntReg, Program, ProgramBuilder, Terminator};

const BOARD_POINTS: i64 = 361;
const AUX_BASE: i32 = 0x1000;
const KEY_BASE: i64 = 0x2000;
const HASH_SLOT: i32 = 0x3000;

// Register conventions.
const R_PLAYOUTS: IntReg = IntReg(0);
const R_ZERO: IntReg = IntReg(1);
const R_POINTS: IntReg = IntReg(5);
const R_POINT: IntReg = IntReg(6);
const R_ADDR: IntReg = IntReg(7);
const R_CELL: IntReg = IntReg(8);
const R_KEYBASE: IntReg = IntReg(9);
const R_HASH: IntReg = IntReg(10);
const R_COLOR: IntReg = IntReg(11);
const R_NEIGHBOR: IntReg = IntReg(12);
const R_LIBERTIES: IntReg = IntReg(13);
const R_KEYADDR: IntReg = IntReg(14);
const R_TMP: IntReg = IntReg(15);

/// Builds the Go-engine kernel at the given scale.
pub fn build(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new(1 << 14);

    // ---- entry ----------------------------------------------------------
    let entry = b.begin_block();
    b.load_imm(R_PLAYOUTS, params.outer_iterations.max(1) as i64);
    b.load_imm(R_ZERO, 0);
    b.load_imm(R_POINTS, BOARD_POINTS);
    b.load_imm(R_KEYBASE, KEY_BASE);
    b.load_imm(R_HASH, 0x9e37_79b9);
    let playout_head = b.reserve_block();
    b.terminate(Terminator::Jump(playout_head));

    // ---- playout head: reset the point cursor ---------------------------
    b.begin_reserved(playout_head);
    b.load_imm(R_POINT, 0);
    b.load_imm(R_LIBERTIES, 0);
    let point_loop = b.reserve_block();
    b.terminate(Terminator::Jump(point_loop));

    // ---- per-point evaluation -------------------------------------------
    let occupied = b.reserve_block();
    let check_second = b.reserve_block();
    let lib_first = b.reserve_block();
    let lib_second = b.reserve_block();
    let zobrist = b.reserve_block();
    let point_latch = b.reserve_block();
    let playout_latch = b.reserve_block();
    let exit = b.reserve_block();

    // point_loop: load the cell and classify it.
    b.begin_reserved(point_loop);
    b.int_alu_imm(IntAluOp::Shl, R_ADDR, R_POINT, 3);
    b.load(R_CELL, R_ADDR, 0);
    b.int_alu_imm(IntAluOp::And, R_COLOR, R_CELL, 3);
    b.branch(BranchCond::Eq, R_COLOR, R_ZERO, point_latch, occupied);

    // occupied: inspect the first neighbour.
    b.begin_reserved(occupied);
    b.load(R_NEIGHBOR, R_ADDR, 8);
    b.int_alu_imm(IntAluOp::And, R_TMP, R_NEIGHBOR, 3);
    b.branch(BranchCond::Eq, R_TMP, R_ZERO, lib_first, check_second);

    // lib_first: the first neighbour is empty — count a liberty.
    b.begin_reserved(lib_first);
    b.int_alu_imm(IntAluOp::Add, R_LIBERTIES, R_LIBERTIES, 1);
    b.terminate(Terminator::Jump(check_second));

    // check_second: inspect the second neighbour.
    b.begin_reserved(check_second);
    b.load(R_NEIGHBOR, R_ADDR, -8);
    b.int_alu_imm(IntAluOp::And, R_TMP, R_NEIGHBOR, 3);
    b.branch(BranchCond::Eq, R_TMP, R_ZERO, lib_second, zobrist);

    // lib_second: the second neighbour is empty — count a liberty.
    b.begin_reserved(lib_second);
    b.int_alu_imm(IntAluOp::Add, R_LIBERTIES, R_LIBERTIES, 1);
    b.terminate(Terminator::Jump(zobrist));

    // zobrist: update the incremental hash and record the liberty count.
    b.begin_reserved(zobrist);
    b.int_alu_imm(IntAluOp::And, R_KEYADDR, R_POINT, 63);
    b.int_alu_imm(IntAluOp::Shl, R_KEYADDR, R_KEYADDR, 3);
    b.int_alu(IntAluOp::Add, R_KEYADDR, R_KEYADDR, R_KEYBASE);
    b.load(R_TMP, R_KEYADDR, 0);
    b.int_mul(IntMulOp::Mul, R_TMP, R_TMP, R_CELL);
    b.int_alu(IntAluOp::Xor, R_HASH, R_HASH, R_TMP);
    b.int_alu_imm(IntAluOp::Rotl, R_HASH, R_HASH, 13);
    b.store(R_LIBERTIES, R_ADDR, AUX_BASE);
    b.terminate(Terminator::Jump(point_latch));

    // point_latch: next board point.
    b.begin_reserved(point_latch);
    b.int_alu_imm(IntAluOp::Add, R_POINT, R_POINT, 1);
    b.branch(
        BranchCond::Ltu,
        R_POINT,
        R_POINTS,
        point_loop,
        playout_latch,
    );

    // playout_latch: commit the playout's hash, snapshot, next playout.
    b.begin_reserved(playout_latch);
    b.store(R_HASH, R_ZERO, HASH_SLOT);
    b.snapshot();
    b.int_alu_imm(IntAluOp::Sub, R_PLAYOUTS, R_PLAYOUTS, 1);
    b.branch(BranchCond::Ne, R_PLAYOUTS, R_ZERO, playout_head, exit);

    // exit.
    b.begin_reserved(exit);
    b.snapshot();
    b.terminate(Terminator::Halt);

    b.finish(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_vm::{ExecConfig, Executor};

    #[test]
    fn kernel_terminates_and_visits_every_point() {
        let params = WorkloadParams {
            outer_iterations: 3,
            memory_seed: 11,
        };
        let program = build(&params);
        let exec = Executor::new(ExecConfig {
            max_steps: 1_000_000,
            collect_trace: true,
            memory_seed: params.memory_seed,
        })
        .execute(&program)
        .expect("kernel runs");
        // At minimum the point latch executes points × playouts times.
        assert!(exec.dynamic_instructions as i64 > BOARD_POINTS * 3 * 4);
        // One snapshot per playout plus the final one.
        assert_eq!(exec.snapshot_count, 4);
    }

    #[test]
    fn hash_depends_on_board_content() {
        let program = build(&WorkloadParams {
            outer_iterations: 2,
            memory_seed: 0,
        });
        let run = |seed: u64| {
            Executor::new(ExecConfig {
                max_steps: 1_000_000,
                collect_trace: false,
                memory_seed: seed,
            })
            .execute(&program)
            .expect("run")
            .final_state
            .int_regs[R_HASH.0 as usize]
        };
        assert_ne!(run(1), run(2));
        assert_eq!(run(3), run(3));
    }
}
