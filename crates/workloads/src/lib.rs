//! # hashcore-workloads
//!
//! Reference workloads for the HashCore reproduction.
//!
//! The paper profiles SPEC CPU 2017's **641.leela_s** (an integer Go engine)
//! and generates widgets that mimic its execution profile. SPEC CPU 2017 is
//! proprietary, so this crate provides from-scratch kernels *written in the
//! widget ISA itself* that stand in for the benchmark categories the paper's
//! argument rests on (see DESIGN.md §2):
//!
//! * [`Workload::GoEngine`] — a Leela-like integer workload: repeated
//!   liberty-counting / flood-fill style sweeps over a Go board with
//!   Zobrist-style hashing, data-dependent branching and modest working set,
//! * [`Workload::Deflate`] — an LZ-style compressor inner loop: rolling hash,
//!   hash-table probes, match/no-match branches,
//! * [`Workload::Mcf`] — a pointer-chasing network-simplex style kernel with
//!   irregular memory access,
//! * [`Workload::LbmStencil`] — a floating-point stencil sweep with long
//!   dependency-free FP chains and very regular branches.
//!
//! Because the kernels are ordinary [`hashcore_isa::Program`]s, they run on
//! the same functional executor and micro-architecture model as the widgets,
//! and [`reference_profile`] turns any of them into the PerfProx-style
//! [`hashcore_profile::PerformanceProfile`] that the widget generator
//! consumes. This closes the inverted-benchmarking loop end to end:
//! *workload → profile → widgets → comparison against the workload*.
//!
//! # Examples
//!
//! ```
//! use hashcore_workloads::{Workload, WorkloadParams};
//!
//! let params = WorkloadParams::tiny();
//! let program = Workload::GoEngine.build(&params);
//! assert!(program.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deflate;
mod go_engine;
mod lbm;
mod mcf;

use hashcore_isa::Program;
use hashcore_profile::PerformanceProfile;
use hashcore_sim::{CoreConfig, WorkloadProfiler};
use hashcore_vm::{ExecConfig, ExecError, Executor};

/// Scale parameters shared by all reference workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Number of outer iterations (playouts, input blocks, pivots, or time
    /// steps depending on the kernel).
    pub outer_iterations: u32,
    /// Memory seed used when executing the workload.
    pub memory_seed: u64,
}

impl WorkloadParams {
    /// Paper-scale parameters (tens of thousands of dynamic instructions per
    /// kernel, comparable to one widget execution).
    pub fn reference() -> Self {
        Self {
            outer_iterations: 16,
            memory_seed: 0x1ee1a,
        }
    }

    /// Very small parameters for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            outer_iterations: 4,
            memory_seed: 7,
        }
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self::reference()
    }
}

/// The available reference workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Leela-like integer Go-engine kernel (the paper's profiled workload).
    GoEngine,
    /// LZ/deflate-like compression kernel.
    Deflate,
    /// mcf-like pointer-chasing network kernel.
    Mcf,
    /// lbm-like floating-point stencil kernel.
    LbmStencil,
}

impl Workload {
    /// All reference workloads.
    pub const ALL: [Workload; 4] = [
        Workload::GoEngine,
        Workload::Deflate,
        Workload::Mcf,
        Workload::LbmStencil,
    ];

    /// The workload's short name (used in reports and profiles).
    pub fn name(self) -> &'static str {
        match self {
            Workload::GoEngine => "go_engine_leela_like",
            Workload::Deflate => "deflate_like",
            Workload::Mcf => "mcf_like",
            Workload::LbmStencil => "lbm_stencil_like",
        }
    }

    /// Builds the workload program at the given scale.
    pub fn build(self, params: &WorkloadParams) -> Program {
        match self {
            Workload::GoEngine => go_engine::build(params),
            Workload::Deflate => deflate::build(params),
            Workload::Mcf => mcf::build(params),
            Workload::LbmStencil => lbm::build(params),
        }
    }

    /// Executes the workload and returns its measured performance profile on
    /// the given core configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the kernel fails to execute (which would
    /// indicate a bug in the kernel construction, not user error).
    pub fn reference_profile(
        self,
        params: &WorkloadParams,
        core: CoreConfig,
    ) -> Result<PerformanceProfile, ExecError> {
        reference_profile(self, params, core)
    }
}

/// Executes `workload` and extracts its performance profile.
///
/// This is the "profile the reference workload" stage of the paper's
/// pipeline; the returned profile is what the `hashcore-gen` crate's
/// `WidgetGenerator` consumes.
///
/// # Errors
///
/// Returns [`ExecError`] if execution fails.
pub fn reference_profile(
    workload: Workload,
    params: &WorkloadParams,
    core: CoreConfig,
) -> Result<PerformanceProfile, ExecError> {
    let program = workload.build(params);
    let exec = Executor::new(ExecConfig {
        max_steps: 50_000_000,
        collect_trace: true,
        memory_seed: params.memory_seed,
    })
    .execute(&program)?;
    let profiler = WorkloadProfiler::new(core);
    Ok(profiler.profile(workload.name(), &program, &exec.trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_isa::OpClass;

    #[test]
    fn all_workloads_build_validate_and_execute() {
        let params = WorkloadParams::tiny();
        for workload in Workload::ALL {
            let program = workload.build(&params);
            assert!(program.validate().is_ok(), "{}", workload.name());
            let exec = Executor::new(ExecConfig {
                max_steps: 10_000_000,
                collect_trace: false,
                memory_seed: params.memory_seed,
            })
            .execute(&program)
            .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name()));
            assert!(
                exec.dynamic_instructions > 500,
                "{} too small: {}",
                workload.name(),
                exec.dynamic_instructions
            );
        }
    }

    #[test]
    fn workloads_scale_with_iterations() {
        let small = WorkloadParams {
            outer_iterations: 2,
            memory_seed: 1,
        };
        let large = WorkloadParams {
            outer_iterations: 8,
            memory_seed: 1,
        };
        for workload in Workload::ALL {
            let run = |p: &WorkloadParams| {
                Executor::new(ExecConfig {
                    max_steps: 50_000_000,
                    collect_trace: false,
                    memory_seed: 1,
                })
                .execute(&workload.build(p))
                .expect("run")
                .dynamic_instructions
            };
            let a = run(&small);
            let b = run(&large);
            assert!(b > a * 2, "{}: {a} vs {b}", workload.name());
        }
    }

    #[test]
    fn go_engine_profile_is_integer_and_branch_heavy() {
        let profile = Workload::GoEngine
            .reference_profile(&WorkloadParams::tiny(), CoreConfig::ivy_bridge_like())
            .expect("profile");
        assert!(profile.mix.fraction(OpClass::IntAlu) > 0.3);
        assert!(profile.mix.fraction(OpClass::Branch) > 0.08);
        assert!(profile.mix.fraction(OpClass::FpAlu) < 0.05);
        assert!(profile.reference_ipc > 0.2);
        assert_eq!(profile.name, "go_engine_leela_like");
    }

    #[test]
    fn lbm_profile_is_fp_heavy_and_branch_light() {
        let lbm = Workload::LbmStencil
            .reference_profile(&WorkloadParams::tiny(), CoreConfig::ivy_bridge_like())
            .expect("profile");
        let go = Workload::GoEngine
            .reference_profile(&WorkloadParams::tiny(), CoreConfig::ivy_bridge_like())
            .expect("profile");
        assert!(lbm.mix.fraction(OpClass::FpAlu) > 0.2);
        assert!(lbm.mix.fraction(OpClass::Branch) < go.mix.fraction(OpClass::Branch));
        assert!(lbm.branch.taken_fraction > 0.8);
    }

    #[test]
    fn mcf_has_pointer_chasing_and_poorer_locality_than_lbm() {
        let mcf = Workload::Mcf
            .reference_profile(&WorkloadParams::tiny(), CoreConfig::ivy_bridge_like())
            .expect("profile");
        let lbm = Workload::LbmStencil
            .reference_profile(&WorkloadParams::tiny(), CoreConfig::ivy_bridge_like())
            .expect("profile");
        assert!(mcf.memory.pointer_chase_fraction > lbm.memory.pointer_chase_fraction);
        assert!(mcf.reference_ipc < lbm.reference_ipc);
    }

    #[test]
    fn deflate_profile_has_branches_and_stores() {
        let profile = Workload::Deflate
            .reference_profile(&WorkloadParams::tiny(), CoreConfig::ivy_bridge_like())
            .expect("profile");
        assert!(profile.mix.fraction(OpClass::Branch) > 0.05);
        assert!(profile.mix.fraction(OpClass::Store) > 0.02);
        assert!(profile.mix.fraction(OpClass::Load) > 0.1);
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = Workload::GoEngine
            .reference_profile(&WorkloadParams::tiny(), CoreConfig::ivy_bridge_like())
            .unwrap();
        let b = Workload::GoEngine
            .reference_profile(&WorkloadParams::tiny(), CoreConfig::ivy_bridge_like())
            .unwrap();
        assert_eq!(a, b);
    }
}
