//! # hashcore-gen
//!
//! The HashCore widget generator: the *inverted benchmarking* engine that
//! turns a (seed-noised) performance profile into an executable widget
//! program.
//!
//! Section IV-B of the paper describes the pipeline: PerfProx-style proxy
//! generation is driven by a performance profile of a reference workload
//! (instruction mix, branch behaviour, memory access patterns, data
//! dependencies, basic-block structure), modified in two ways —
//!
//! 1. the 256-bit hash seed is folded into the profile (Table I), adding
//!    positive noise to the instruction-class counts and seeding the
//!    basic-block-vector and memory PRNGs, and
//! 2. the generated program is instrumented to emit register snapshots
//!    throughout execution, so the output depends on complete execution
//!    (irreducibility).
//!
//! [`WidgetGenerator`] implements exactly this: from a base
//! [`hashcore_profile::PerformanceProfile`] and a
//! [`hashcore_profile::HashSeed`] it deterministically constructs a
//! [`GeneratedWidget`] whose control-flow skeleton, instruction mix, memory
//! streams, dependency chains and branch predictability track the noised
//! profile.
//!
//! # Examples
//!
//! ```
//! use hashcore_gen::WidgetGenerator;
//! use hashcore_profile::{HashSeed, PerformanceProfile};
//! use hashcore_vm::Executor;
//!
//! let generator = WidgetGenerator::new(PerformanceProfile::leela_like());
//! let widget = generator.generate(&HashSeed::new([9u8; 32]));
//! let execution = Executor::new(widget.exec_config()).execute(&widget.program)?;
//! assert!(execution.snapshot_count > 0);
//! # Ok::<(), hashcore_vm::ExecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod rng;

pub use generator::{
    GenScratch, GeneratedWidget, GenerationBounds, GeneratorConfig, PipelineScratch,
    WidgetGenerator,
};
pub use rng::WidgetRng;
