//! The seed-driven widget generator.
//!
//! The generator follows the PerfProx recipe the paper adapts (Section IV-B):
//!
//! 1. start from the reference workload's performance profile,
//! 2. fold in the hash seed (Table I): positive noise on the per-class
//!    instruction counts, a perturbation of the branch behaviour, and two
//!    PRNG seeds (basic-block vector, memory),
//! 3. build a control-flow skeleton (an outer loop of *segments*, each a
//!    branch "diamond") whose dynamic branch count, basic-block sizes and
//!    loop trip counts track the profile,
//! 4. fill the blocks with instructions selected to match the noised mix,
//!    with operand selection reproducing the dependency-distance profile and
//!    address generation reproducing the memory profile (strided streams,
//!    pointer chasing, working-set size),
//! 5. instrument the program with register snapshots so the output string
//!    depends on complete execution (irreducibility).

use crate::rng::WidgetRng;
use hashcore_isa::{
    BlockId, BranchCond, FpOp, FpReg, IntAluOp, IntMulOp, IntReg, OpClass, Program, ProgramBuilder,
    Terminator, VecOp, VecReg,
};
use hashcore_profile::{apply_seed_into, HashSeed, NoiseConfig, PerformanceProfile, SeededProfile};
use hashcore_vm::{
    ExecConfig, ExecError, ExecScratch, ExecStats, Executor, PreparedProgram, SNAPSHOT_BYTES,
};

/// Tunable parameters of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Seed-noise configuration (Table-I noise magnitudes).
    pub noise: NoiseConfig,
    /// Approximate number of dynamic instructions between register
    /// snapshots ("every few thousand instructions", Section V).
    pub snapshot_cadence: u64,
    /// Fraction of diamonds whose branch condition is data-dependent
    /// (hard to predict) as opposed to counter-based (easy to predict),
    /// expressed as a multiplier on the profile's transition rate.
    pub unpredictable_branch_gain: f64,
    /// Lower bound on the program's data segment, in bytes.
    pub min_memory_bytes: usize,
    /// Upper bound on the program's data segment, in bytes.
    pub max_memory_bytes: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            noise: NoiseConfig::default(),
            snapshot_cadence: 2000,
            unpredictable_branch_gain: 1.0,
            min_memory_bytes: 1 << 12,
            max_memory_bytes: 1 << 26,
        }
    }
}

/// Reusable widget-generation state.
///
/// One scratch serves a stream of seeds: the program builder's block table,
/// instruction buffers and spare pool, the per-segment bookkeeping vectors
/// and the class-budget table are all retained between
/// [`WidgetGenerator::generate_into`] calls, so generation performs no heap
/// allocation once the buffers reach their steady-state sizes. A scratch is
/// the per-worker unit of the mining fan-out (each thread owns exactly one);
/// it is not shared between threads.
#[derive(Debug, Clone, Default)]
pub struct GenScratch {
    builder: ProgramBuilder,
    seg_heads: Vec<BlockId>,
    seg_arms: Vec<(BlockId, BlockId)>,
    diamond_unpredictable: Vec<bool>,
    budget: Vec<(OpClass, f64)>,
    /// Set once the scratch has been pre-sized to the generator's
    /// worst-case [`GenerationBounds`]; the first `generate_into` call does
    /// it, so every later call is allocation-free.
    warmed: bool,
}

impl GenScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Worst-case generation sizes over *every possible seed*, derived from the
/// generator's configuration.
///
/// The Table-I noise is positive-only and capped
/// ([`hashcore_profile::NoiseConfig::max_relative_count_noise`]), so the
/// segment count, block sizes, memory footprint and output size of any
/// widget the generator can ever emit are bounded by arithmetic over the
/// base profile — no seed needs to be sampled. Scratch buffers pre-sized to
/// these bounds never grow again, which is what turns "allocation-free
/// after an empirical warm-up visited the worst case" (an unbounded-tail
/// property) into "allocation-free after the first call" (a guarantee).
/// Every bound is an over-approximation; tightness is not required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationBounds {
    /// Maximum number of basic blocks in a generated program.
    pub max_blocks: usize,
    /// Maximum number of instructions in any single basic block.
    pub max_block_len: usize,
    /// Maximum number of diamond segments.
    pub max_segments: usize,
    /// Maximum data-segment size in bytes.
    pub max_memory_bytes: usize,
    /// Maximum widget output size in bytes.
    pub max_output_bytes: usize,
}

/// One reusable generate→prepare→execute pipeline: the generation scratch,
/// the generated widget, its pre-decoded form, and the execution buffers.
///
/// This is the common composition every batch consumer of widgets needs —
/// the HashCore hash scratch, the RandomX-lite baseline, the measurement
/// harnesses — factored out so the pipeline contract (buffer cycling,
/// worst-case pre-sizing, the two-buffer-set pool rule) lives in one place.
/// Fields are public so callers with extra stages (hash gates between
/// widgets, profilers over the trace) can drive them individually; most
/// callers just use [`PipelineScratch::run`]. One scratch belongs to one
/// worker; it is never shared between threads.
#[derive(Debug, Clone, Default)]
pub struct PipelineScratch {
    /// Generation state (program builder, bookkeeping vectors).
    pub gen: GenScratch,
    /// The most recently generated widget.
    pub widget: GeneratedWidget,
    /// The widget's pre-decoded, validate-once form.
    pub prepared: PreparedProgram,
    /// Execution state: machine, widget output, dynamic trace.
    pub exec: ExecScratch,
}

impl PipelineScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates the widget for `seed` with `generator`, pre-decodes it and
    /// executes it, returning the execution stats.
    ///
    /// The widget output — and, when `collect_trace` is set, the dynamic
    /// trace — is left in [`PipelineScratch::exec`]; the widget itself stays
    /// in [`PipelineScratch::widget`]. Allocation-free at steady state, like
    /// the stages it composes.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepLimitExceeded`] if the widget does not halt
    /// within its step limit (generated widgets never fail validation).
    pub fn run(
        &mut self,
        generator: &WidgetGenerator,
        seed: &HashSeed,
        collect_trace: bool,
    ) -> Result<ExecStats, ExecError> {
        generator.generate_into(seed, &mut self.gen, &mut self.widget);
        self.prepared.prepare(&self.widget.program)?;
        Executor::new(ExecConfig {
            collect_trace,
            ..self.widget.exec_config()
        })
        .execute_prepared(&self.prepared, &mut self.exec)
    }
}

/// A widget produced by the generator.
#[derive(Debug, Clone)]
pub struct GeneratedWidget {
    /// The executable widget program.
    pub program: Program,
    /// The hash seed the widget was generated from.
    pub seed: HashSeed,
    /// The noised profile the generator targeted (the centre of the
    /// distribution the widget should land on).
    pub target: SeededProfile,
    /// Expected number of register snapshots (and therefore output size).
    pub expected_snapshots: u64,
}

impl Default for GeneratedWidget {
    /// An empty placeholder widget (invalid program, zero seed) meant to be
    /// filled in place by [`WidgetGenerator::generate_into`].
    fn default() -> Self {
        Self {
            program: Program::default(),
            seed: HashSeed::new([0u8; 32]),
            target: SeededProfile::default(),
            expected_snapshots: 0,
        }
    }
}

impl GeneratedWidget {
    /// Expected widget output size in bytes.
    pub fn expected_output_bytes(&self) -> usize {
        self.expected_snapshots as usize * SNAPSHOT_BYTES
    }

    /// An execution configuration suitable for running this widget: the
    /// memory seed comes from the Table-I memory field and the step limit
    /// leaves generous head-room above the expected dynamic instruction
    /// count so honest widgets never hit it.
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            max_steps: self.target.profile.target_dynamic_instructions * 4 + 100_000,
            collect_trace: true,
            memory_seed: ((self.target.memory_seed as u64) << 32) | self.target.bbv_seed as u64,
        }
    }
}

/// Generates widgets from a base performance profile.
///
/// The generator is deterministic: the same base profile, configuration and
/// seed always produce the byte-identical program, which is what allows every
/// verifier to regenerate and re-execute a widget from the block header
/// alone.
#[derive(Debug, Clone)]
pub struct WidgetGenerator {
    base: PerformanceProfile,
    config: GeneratorConfig,
}

// Register conventions used by generated widgets.
const REG_LOOP: IntReg = IntReg(0); // outer loop counter
const REG_ZERO: IntReg = IntReg(1); // always zero
const REG_RAND_THRESH: IntReg = IntReg(2); // threshold for data-dependent branches
const REG_LOOP_THRESH: IntReg = IntReg(3); // threshold for counter-based branches
const REG_STRIDE_CURSOR: IntReg = IntReg(13);
const REG_CHASE_CURSOR: IntReg = IntReg(14);
const POOL: [IntReg; 10] = [
    IntReg(4),
    IntReg(5),
    IntReg(6),
    IntReg(7),
    IntReg(8),
    IntReg(9),
    IntReg(10),
    IntReg(11),
    IntReg(12),
    IntReg(15),
];

impl WidgetGenerator {
    /// Creates a generator targeting `base` with the default configuration.
    pub fn new(base: PerformanceProfile) -> Self {
        Self::with_config(base, GeneratorConfig::default())
    }

    /// Creates a generator with an explicit configuration.
    pub fn with_config(base: PerformanceProfile, config: GeneratorConfig) -> Self {
        Self { base, config }
    }

    /// The base (un-noised) profile the generator targets.
    pub fn base_profile(&self) -> &PerformanceProfile {
        &self.base
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Computes the worst-case generation sizes over every possible seed.
    ///
    /// See [`GenerationBounds`]; the arithmetic mirrors
    /// [`WidgetGenerator::generate_into`] with every noise factor at its cap
    /// (and conservative rounding), so each bound dominates the value any
    /// actual seed can produce.
    pub fn bounds(&self) -> GenerationBounds {
        let cadence = self.config.snapshot_cadence.max(1) as f64;
        let noise_cap = 1.0 + self.config.noise.max_relative_count_noise.max(0.0);
        let base = self.base.target_count_array();
        let t0 = base.iter().sum::<u64>().max(1) as f64;
        let t1: f64 = base.iter().map(|&b| (b as f64 * noise_cap).ceil()).sum();
        let outer = |t: f64| (t.max(1000.0) / cadence).round().max(1.0);
        let (o0, o1) = (outer(t0), outer(t1));
        // budget_c = noised_c / total * max(total, 1000) / outer, with
        // noised_c ≤ ceil(base_c · cap), max(total, 1000)/total ≤ scale and
        // outer ≥ o0 — so `upper` dominates any seed's per-iteration budget.
        let scale = (1000.0 / t0).max(1.0);
        let upper = |b: u64| (b as f64 * noise_cap).ceil() * scale / o0;
        let class_index = |class: OpClass| {
            OpClass::ALL
                .iter()
                .position(|&c| c == class)
                .expect("known class")
        };

        let branch_base = base[class_index(OpClass::Branch)];
        let max_segments = (upper(branch_base).ceil() as i64 + 1).clamp(1, 1024) as usize;
        let min_segments = ((branch_base as f64 / o1).floor() as i64 - 2).clamp(1, 1024) as usize;
        // A work block emits at most ceil(share/2) items per class, two
        // instructions per item; the entry block is 6 set-ups plus the pool
        // initialisers.
        let work_upper: f64 = OpClass::ALL
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c, OpClass::Branch | OpClass::Control))
            .map(|(i, _)| upper(base[i]))
            .sum();
        let entry_len = 6 + POOL.len();
        let max_block_len =
            ((work_upper / min_segments as f64).ceil() as usize + 16).max(entry_len + 4);
        let max_blocks = 3 * max_segments + 3;

        // Memory geometry (the memory-profile knobs are not seed-noised, so
        // only the load/store budgets and iteration count vary).
        let stride = (((self.base.memory.average_stride.max(8) as i32) & !7).max(8)) as f64;
        let loads_stores =
            upper(base[class_index(OpClass::Load)]) + upper(base[class_index(OpClass::Store)]);
        let strided_max =
            loads_stores * o1 * self.base.memory.strided_fraction.clamp(0.0, 1.0) * stride;
        let max_memory_bytes = ((strided_max / 4.0) as usize + (32 << 10))
            .min(self.base.memory.working_set_bytes)
            .clamp(self.config.min_memory_bytes, self.config.max_memory_bytes)
            .next_power_of_two();
        let max_output_bytes = (o1 as usize + 1) * SNAPSHOT_BYTES;

        GenerationBounds {
            max_blocks,
            max_block_len,
            max_segments,
            max_memory_bytes,
            max_output_bytes,
        }
    }

    /// Pre-sizes `scratch` to this generator's [`GenerationBounds`].
    fn warm_scratch(&self, scratch: &mut GenScratch) {
        let bounds = self.bounds();
        // Two full buffer sets: while a program is being built, the
        // previous program still owns its instruction buffers — they only
        // return to the pool when `finish_into` replaces it.
        scratch
            .builder
            .prime(2 * bounds.max_blocks, bounds.max_block_len);
        scratch.seg_heads.reserve(bounds.max_segments);
        scratch.seg_arms.reserve(bounds.max_segments);
        scratch.diamond_unpredictable.reserve(bounds.max_segments);
        scratch.budget.reserve(OpClass::ALL.len());
    }

    /// Generates the widget for `seed`.
    ///
    /// Convenience wrapper over [`WidgetGenerator::generate_into`] with
    /// fresh scratch state; callers generating many widgets (every miner —
    /// one widget per nonce) should reuse long-lived state instead.
    pub fn generate(&self, seed: &HashSeed) -> GeneratedWidget {
        let mut scratch = GenScratch::new();
        let mut out = GeneratedWidget::default();
        self.generate_into(seed, &mut scratch, &mut out);
        out
    }

    /// Generates the widget for `seed` into `out`, reusing `scratch`.
    ///
    /// Byte-identical to [`WidgetGenerator::generate`] — the same seed
    /// always produces the same program, whichever path built it — but the
    /// program builder, the per-segment bookkeeping vectors and the output
    /// widget's own storage are all reused, so generation performs no heap
    /// allocation once the buffers reach their steady-state sizes.
    pub fn generate_into(
        &self,
        seed: &HashSeed,
        scratch: &mut GenScratch,
        out: &mut GeneratedWidget,
    ) {
        if !scratch.warmed {
            scratch.warmed = true;
            self.warm_scratch(scratch);
        }
        let GenScratch {
            builder,
            seg_heads,
            seg_arms,
            diamond_unpredictable,
            budget,
            warmed: _,
        } = scratch;

        apply_seed_into(&self.base, seed, &self.config.noise, &mut out.target);
        let profile = &out.target.profile;

        // Two PRNG streams, exactly as Table I prescribes: one shapes the
        // control-flow / instruction selection, the other shapes memory
        // behaviour.
        let mut code_rng = WidgetRng::new(out.target.bbv_seed as u64);
        let mut mem_rng = WidgetRng::new(out.target.memory_seed as u64);

        let total = profile.target_dynamic_instructions.max(1000) as f64;
        let outer_iters = (total / self.config.snapshot_cadence as f64)
            .round()
            .max(1.0) as u64;
        let per_iter = total / outer_iters as f64;

        // Per-iteration class budgets (branches handled structurally).
        budget.clear();
        budget.extend(
            OpClass::ALL
                .iter()
                .map(|&class| (class, profile.mix.fraction(class) * per_iter)),
        );
        let branch_budget = budget
            .iter()
            .find(|(c, _)| *c == OpClass::Branch)
            .map(|(_, b)| *b)
            .unwrap_or(1.0);
        // One branch per segment plus the loop latch.
        let segments = (branch_budget.round() as i64 - 1).clamp(1, 1024) as usize;

        // Decide each diamond's flavour (counter-based and predictable vs
        // data-dependent and hard to predict) up front. The flavour mix is
        // steered by the profile's branch transition rate, which is the knob
        // the Branch-Behaviour seed field perturbs.
        let unpredictable_fraction = (profile.branch.transition_rate
            * self.config.unpredictable_branch_gain)
            .clamp(0.0, 1.0);
        diamond_unpredictable.clear();
        diamond_unpredictable
            .extend((0..segments).map(|_| code_rng.chance(unpredictable_fraction)));

        // Memory geometry. The strided stream keeps the profile's natural
        // stride so spatial locality survives; the data segment is sized so
        // the stream revisits its footprint a few times during the run
        // (temporal locality), as the reference workload does with its
        // resident data structures. Pointer-chase accesses are confined to a
        // small hot region, mirroring chasing within a resident game tree.
        let stride = ((profile.memory.average_stride.max(8) as i32) & !7).max(8);
        let loads_per_iter = class_budget(budget, OpClass::Load);
        let stores_per_iter = class_budget(budget, OpClass::Store);
        let expected_strided_bytes = (loads_per_iter + stores_per_iter)
            * outer_iters as f64
            * profile.memory.strided_fraction
            * stride as f64;
        let reuse_target_bytes = (expected_strided_bytes / 4.0) as usize + (32 << 10);
        let memory_size = reuse_target_bytes
            .min(profile.memory.working_set_bytes)
            .clamp(self.config.min_memory_bytes, self.config.max_memory_bytes)
            .next_power_of_two();
        let hot_region_mask = (memory_size.min(1 << 13) - 1) as i32 & !7;

        // Structural overhead charged against the work budgets before the
        // filler runs: cursor maintenance for strided and pointer-chase
        // accesses, plus the loop-latch decrement. Branch conditions are free
        // (they compare live registers against thresholds set up once in the
        // entry block).
        let support_per_load = profile.memory.pointer_chase_fraction
            + (1.0 - profile.memory.pointer_chase_fraction) * profile.memory.strided_fraction;
        let support_per_store = profile.memory.strided_fraction * 0.0; // stores reuse the cursor
        let overhead_int_alu =
            loads_per_iter * support_per_load + stores_per_iter * support_per_store + 1.0;
        for (class, value) in budget.iter_mut() {
            match class {
                OpClass::IntAlu => *value = (*value - overhead_int_alu).max(0.0),
                OpClass::Branch | OpClass::Control => *value = 0.0,
                _ => {}
            }
        }

        // Taken-probability target for diamond branches.
        let taken_fraction = profile.branch.taken_fraction.clamp(0.05, 0.95);

        builder.reset(memory_size);
        let mut emitter = Emitter {
            builder,
            profile,
            stride,
            hot_region_mask,
            last_int: None,
            last_fp: None,
        };

        // ---- entry block -------------------------------------------------
        let entry = emitter.builder.begin_block();
        emitter.builder.load_imm(REG_LOOP, outer_iters as i64);
        emitter.builder.load_imm(REG_ZERO, 0);
        // Threshold for data-dependent branches: a uniformly random 64-bit
        // operand is below this value with probability `taken_fraction`.
        emitter.builder.load_imm(
            REG_RAND_THRESH,
            (taken_fraction * u64::MAX as f64) as u64 as i64,
        );
        // Threshold for counter-based branches: the loop counter stays above
        // it for `taken_fraction` of the iterations.
        emitter.builder.load_imm(
            REG_LOOP_THRESH,
            ((1.0 - taken_fraction) * outer_iters as f64).round() as i64,
        );
        emitter.builder.load_imm(REG_STRIDE_CURSOR, 0);
        emitter
            .builder
            .load_imm(REG_CHASE_CURSOR, (memory_size as i64) / 2);
        for (i, reg) in POOL.iter().enumerate() {
            emitter
                .builder
                .load_imm(*reg, (mem_rng.next_u64() >> (i as u32 % 8)) as i64);
        }

        // Reserve the per-segment blocks: head + two arms each, then latch
        // and exit.
        seg_heads.clear();
        seg_heads.extend((0..segments).map(|_| emitter.builder.reserve_block()));
        seg_arms.clear();
        seg_arms.extend((0..segments).map(|_| {
            (
                emitter.builder.reserve_block(),
                emitter.builder.reserve_block(),
            )
        }));
        let latch = emitter.builder.reserve_block();
        let exit = emitter.builder.reserve_block();

        emitter.builder.terminate(Terminator::Jump(seg_heads[0]));

        // Per-segment work budgets (main block gets half, each arm a
        // quarter; one arm executes per iteration, so the expected dynamic
        // contribution matches the budget).
        let work_classes = [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::FpAlu,
            OpClass::Load,
            OpClass::Store,
            OpClass::Vector,
        ];

        for s in 0..segments {
            let next = if s + 1 == segments {
                latch
            } else {
                seg_heads[s + 1]
            };
            let share = |b: f64| b / segments as f64;

            // Head block: half of the segment's work (the other half lives in
            // the diamond arms, of which exactly one executes).
            emitter.builder.begin_reserved(seg_heads[s]);
            for &class in &work_classes {
                let per_segment = share(class_budget(budget, class));
                let count = stochastic_round(per_segment * 0.5, &mut code_rng);
                for _ in 0..count {
                    emitter.emit_work(class, &mut code_rng, &mut mem_rng);
                }
            }
            let (cond, src1, src2) = emitter.condition(diamond_unpredictable[s], &mut code_rng);
            emitter.builder.terminate(Terminator::Branch {
                cond,
                src1,
                src2,
                taken: seg_arms[s].0,
                not_taken: seg_arms[s].1,
            });

            // Arms: half of the segment's work each; exactly one arm executes
            // per iteration, so the expected dynamic contribution of the
            // segment equals its budget.
            for arm in [seg_arms[s].0, seg_arms[s].1] {
                emitter.builder.begin_reserved(arm);
                for &class in &work_classes {
                    let per_segment = share(class_budget(budget, class));
                    let count = stochastic_round(per_segment * 0.5, &mut code_rng);
                    for _ in 0..count {
                        emitter.emit_work(class, &mut code_rng, &mut mem_rng);
                    }
                }
                emitter.builder.terminate(Terminator::Jump(next));
            }
        }

        // ---- latch -------------------------------------------------------
        emitter.builder.begin_reserved(latch);
        emitter.builder.snapshot();
        emitter
            .builder
            .int_alu_imm(IntAluOp::Sub, REG_LOOP, REG_LOOP, 1);
        emitter.builder.terminate(Terminator::Branch {
            cond: BranchCond::Ne,
            src1: REG_LOOP,
            src2: REG_ZERO,
            taken: seg_heads[0],
            not_taken: exit,
        });

        // ---- exit --------------------------------------------------------
        emitter.builder.begin_reserved(exit);
        emitter.builder.snapshot();
        emitter.builder.terminate(Terminator::Halt);

        emitter.builder.finish_into(entry, &mut out.program);
        debug_assert!(out.program.validate().is_ok());

        out.seed = *seed;
        out.expected_snapshots = outer_iters + 1;
    }
}

fn class_budget(budget: &[(OpClass, f64)], class: OpClass) -> f64 {
    budget
        .iter()
        .find(|(c, _)| *c == class)
        .map(|(_, b)| *b)
        .unwrap_or(0.0)
}

/// Rounds `value` to an integer, using the RNG to dither the fractional part
/// so expectations are preserved across many segments.
fn stochastic_round(value: f64, rng: &mut WidgetRng) -> u64 {
    let floor = value.floor();
    let frac = value - floor;
    floor as u64 + u64::from(rng.chance(frac))
}

/// Internal instruction-emission state.
struct Emitter<'a> {
    builder: &'a mut ProgramBuilder,
    profile: &'a PerformanceProfile,
    stride: i32,
    /// Mask confining pointer-chase and scattered accesses to a hot region.
    hot_region_mask: i32,
    last_int: Option<IntReg>,
    last_fp: Option<FpReg>,
}

impl Emitter<'_> {
    fn pool_reg(&self, rng: &mut WidgetRng) -> IntReg {
        POOL[rng.next_bounded(POOL.len() as u64) as usize]
    }

    fn fp_reg(&self, rng: &mut WidgetRng) -> FpReg {
        FpReg(rng.next_bounded(hashcore_isa::NUM_FP_REGS as u64) as u8)
    }

    fn vec_reg(&self, rng: &mut WidgetRng) -> VecReg {
        VecReg(rng.next_bounded(hashcore_isa::NUM_VEC_REGS as u64) as u8)
    }

    /// Picks an integer source register honouring the dependency profile:
    /// with probability `serial_fraction` reuse the most recently written
    /// register (a tight chain), otherwise draw from the pool.
    fn int_src(&self, rng: &mut WidgetRng) -> IntReg {
        match self.last_int {
            Some(reg) if rng.chance(self.profile.dependency.serial_fraction) => reg,
            _ => self.pool_reg(rng),
        }
    }

    fn fp_src(&self, rng: &mut WidgetRng) -> FpReg {
        match self.last_fp {
            Some(reg) if rng.chance(self.profile.dependency.serial_fraction) => reg,
            _ => self.fp_reg(rng),
        }
    }

    /// Emits one work instruction of the requested class.
    fn emit_work(&mut self, class: OpClass, code_rng: &mut WidgetRng, mem_rng: &mut WidgetRng) {
        match class {
            OpClass::IntAlu => {
                let op = IntAluOp::ALL[code_rng.next_bounded(IntAluOp::ALL.len() as u64) as usize];
                let dst = self.pool_reg(code_rng);
                let src1 = self.int_src(code_rng);
                if code_rng.chance(0.3) {
                    let imm = (code_rng.next_u64() & 0xffff) as i32 - 0x8000;
                    self.builder.int_alu_imm(op, dst, src1, imm);
                } else {
                    let src2 = self.pool_reg(code_rng);
                    self.builder.int_alu(op, dst, src1, src2);
                }
                self.last_int = Some(dst);
            }
            OpClass::IntMul => {
                let op = IntMulOp::ALL[code_rng.next_bounded(IntMulOp::ALL.len() as u64) as usize];
                let dst = self.pool_reg(code_rng);
                let src1 = self.int_src(code_rng);
                let src2 = self.pool_reg(code_rng);
                self.builder.int_mul(op, dst, src1, src2);
                self.last_int = Some(dst);
            }
            OpClass::FpAlu => {
                if code_rng.chance(0.15) {
                    let dst = self.fp_reg(code_rng);
                    let src = self.pool_reg(code_rng);
                    self.builder.fp_from_int(dst, src);
                    self.last_fp = Some(dst);
                } else {
                    let op = FpOp::ALL[code_rng.next_bounded(FpOp::ALL.len() as u64) as usize];
                    let dst = self.fp_reg(code_rng);
                    let src1 = self.fp_src(code_rng);
                    let src2 = self.fp_reg(code_rng);
                    self.builder.fp(op, dst, src1, src2);
                    self.last_fp = Some(dst);
                }
            }
            OpClass::Load => {
                let chase = mem_rng.chance(self.profile.memory.pointer_chase_fraction);
                if chase {
                    // A pointer-chase step: the loaded value becomes the next
                    // address. The chase is confined to a hot region (as the
                    // reference workload's pointer chasing is confined to its
                    // resident data structure) by masking the cursor.
                    let offset = (mem_rng.next_bounded(8) * 8) as i32;
                    self.builder
                        .load(REG_CHASE_CURSOR, REG_CHASE_CURSOR, offset);
                    self.builder.int_alu_imm(
                        IntAluOp::And,
                        REG_CHASE_CURSOR,
                        REG_CHASE_CURSOR,
                        self.hot_region_mask,
                    );
                } else if mem_rng.chance(self.profile.memory.strided_fraction) {
                    let dst = self.pool_reg(code_rng);
                    let offset = (mem_rng.next_bounded(4) * 8) as i32;
                    self.builder.load(dst, REG_STRIDE_CURSOR, offset);
                    self.builder.int_alu_imm(
                        IntAluOp::Add,
                        REG_STRIDE_CURSOR,
                        REG_STRIDE_CURSOR,
                        self.stride,
                    );
                    self.last_int = Some(dst);
                } else {
                    // A scattered access in the neighbourhood of the strided
                    // cursor (moderate locality).
                    let dst = self.pool_reg(code_rng);
                    let offset = (mem_rng.next_bounded(512) * 8) as i32 - 2048;
                    self.builder.load(dst, REG_STRIDE_CURSOR, offset);
                    self.last_int = Some(dst);
                }
            }
            OpClass::Store => {
                let src = self.int_src(code_rng);
                if mem_rng.chance(self.profile.memory.strided_fraction) {
                    let offset = (mem_rng.next_bounded(4) * 8) as i32;
                    self.builder.store(src, REG_STRIDE_CURSOR, offset);
                } else {
                    let offset = (mem_rng.next_bounded(512) * 8) as i32 - 2048;
                    self.builder.store(src, REG_CHASE_CURSOR, offset);
                }
            }
            OpClass::Vector => {
                let op = VecOp::ALL[code_rng.next_bounded(VecOp::ALL.len() as u64) as usize];
                let dst = self.vec_reg(code_rng);
                let src1 = self.vec_reg(code_rng);
                let src2 = self.vec_reg(code_rng);
                self.builder.vec(op, dst, src1, src2);
            }
            OpClass::Branch | OpClass::Control => {
                // Branches are emitted structurally as terminators and
                // control instructions as latch snapshots; nothing to do.
            }
        }
    }

    /// Chooses the condition for one diamond branch. Conditions compare live
    /// registers against thresholds that were set up once in the entry
    /// block, so diamonds carry no per-execution setup cost (matching the
    /// fact that real compare-and-branch sequences are one or two fused
    /// micro-operations on x86).
    ///
    /// * Unpredictable diamonds compare a pool register — whose value is the
    ///   churn of the surrounding data-dependent work — against the random
    ///   threshold, so the direction is effectively data-dependent with
    ///   probability ≈ `taken_fraction`.
    /// * Predictable diamonds compare the outer loop counter against a fixed
    ///   threshold, so the direction is constant for long runs (taken for a
    ///   `taken_fraction` share of the iterations) and trivially learned by
    ///   the predictor.
    fn condition(
        &mut self,
        unpredictable: bool,
        code_rng: &mut WidgetRng,
    ) -> (BranchCond, IntReg, IntReg) {
        if unpredictable {
            let operand = self.pool_reg(code_rng);
            (BranchCond::Ltu, operand, REG_RAND_THRESH)
        } else {
            (BranchCond::Geu, REG_LOOP, REG_LOOP_THRESH)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_isa::encode;
    use hashcore_profile::ProfileDistance;
    use hashcore_sim::{CoreConfig, CoreModel, WorkloadProfiler};
    use hashcore_vm::Executor;

    fn seed(fill: u8) -> HashSeed {
        HashSeed::new([fill; 32])
    }

    fn small_generator() -> WidgetGenerator {
        // A reduced instruction target keeps the unit tests fast while
        // exercising the full pipeline; the benches use the paper-scale
        // targets.
        let mut profile = PerformanceProfile::leela_like();
        profile.target_dynamic_instructions = 20_000;
        WidgetGenerator::new(profile)
    }

    #[test]
    fn generated_widgets_validate_and_execute() {
        let generator = small_generator();
        for fill in [0u8, 1, 7, 100, 255] {
            let widget = generator.generate(&seed(fill));
            assert!(widget.program.validate().is_ok(), "seed fill {fill}");
            let exec = Executor::new(widget.exec_config())
                .execute(&widget.program)
                .expect("widget must halt");
            assert!(exec.snapshot_count >= 1);
            assert!(!exec.output.is_empty());
        }
    }

    #[test]
    fn generate_into_with_reused_scratch_matches_generate() {
        let generator = small_generator();
        let mut scratch = GenScratch::new();
        let mut widget = GeneratedWidget::default();
        // One scratch and one output widget serve a stream of different
        // seeds (the mining usage); every field must match the fresh path.
        for fill in [0u8, 42, 42, 7, 255, 0] {
            let fresh = generator.generate(&seed(fill));
            generator.generate_into(&seed(fill), &mut scratch, &mut widget);
            assert_eq!(widget.program, fresh.program, "fill {fill}");
            assert_eq!(encode(&widget.program), encode(&fresh.program));
            assert_eq!(widget.seed, fresh.seed);
            assert_eq!(widget.target, fresh.target);
            assert_eq!(widget.expected_snapshots, fresh.expected_snapshots);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let generator = small_generator();
        let a = generator.generate(&seed(0x5a));
        let b = generator.generate(&seed(0x5a));
        assert_eq!(encode(&a.program), encode(&b.program));
        assert_eq!(a.expected_snapshots, b.expected_snapshots);
    }

    #[test]
    fn different_seeds_give_different_programs() {
        let generator = small_generator();
        let a = generator.generate(&seed(1));
        let b = generator.generate(&seed(2));
        assert_ne!(encode(&a.program), encode(&b.program));
    }

    #[test]
    fn dynamic_instruction_count_tracks_target() {
        let generator = small_generator();
        let widget = generator.generate(&seed(42));
        let exec = Executor::new(widget.exec_config())
            .execute(&widget.program)
            .unwrap();
        let target = widget.target.profile.target_dynamic_instructions as f64;
        let actual = exec.dynamic_instructions as f64;
        let ratio = actual / target;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "dynamic instructions {actual} vs target {target}"
        );
    }

    #[test]
    fn measured_mix_is_close_to_noised_target() {
        let generator = small_generator();
        let widget = generator.generate(&seed(9));
        let exec = Executor::new(widget.exec_config())
            .execute(&widget.program)
            .unwrap();
        let measured = WorkloadProfiler::default().profile("widget", &widget.program, &exec.trace);
        let distance = ProfileDistance::between(&measured, &widget.target.profile);
        assert!(
            distance.mix_l1 < 0.30,
            "mix L1 distance too large: {} (measured {:?})",
            distance.mix_l1,
            measured.mix
        );
        assert!(distance.taken_fraction_delta < 0.25, "{distance}");
    }

    #[test]
    fn output_size_matches_expectation_and_cadence() {
        let generator = small_generator();
        let widget = generator.generate(&seed(17));
        let exec = Executor::new(widget.exec_config())
            .execute(&widget.program)
            .unwrap();
        assert_eq!(exec.snapshot_count, widget.expected_snapshots);
        assert_eq!(exec.output.len(), widget.expected_output_bytes());
        // Snapshots land roughly every `snapshot_cadence` instructions.
        let cadence = exec.dynamic_instructions / exec.snapshot_count.max(1);
        assert!(
            (300..=4000).contains(&cadence),
            "snapshot cadence {cadence}"
        );
    }

    #[test]
    fn widgets_execute_on_the_simulated_core() {
        let generator = small_generator();
        let widget = generator.generate(&seed(33));
        let exec = Executor::new(widget.exec_config())
            .execute(&widget.program)
            .unwrap();
        let sim =
            CoreModel::new(CoreConfig::ivy_bridge_like()).simulate(&widget.program, &exec.trace);
        let ipc = sim.counters.ipc();
        assert!(ipc > 0.15 && ipc < 4.0, "ipc {ipc}");
        assert!(sim.counters.branch_hit_rate() > 0.5);
    }

    #[test]
    fn widget_output_depends_on_memory_seed() {
        // The same program executed with a different memory seed produces a
        // different snapshot stream: the output really does depend on the
        // seeded data, not just the code path.
        let generator = small_generator();
        let widget = generator.generate(&seed(71));
        let mut config = widget.exec_config();
        let a = Executor::new(config).execute(&widget.program).unwrap();
        config.memory_seed ^= 1;
        let b = Executor::new(config).execute(&widget.program).unwrap();
        assert_ne!(a.output, b.output);
    }

    #[test]
    fn positive_noise_means_no_widget_below_base_instruction_count() {
        let base = {
            let mut p = PerformanceProfile::leela_like();
            p.target_dynamic_instructions = 20_000;
            p
        };
        let base_total: u64 = base.target_counts().values().sum();
        let generator = WidgetGenerator::new(base);
        for fill in 0..16u8 {
            let widget = generator.generate(&seed(fill * 16 + 3));
            assert!(
                widget.target.profile.target_dynamic_instructions >= base_total,
                "noised target shrank for fill {fill}"
            );
        }
    }

    #[test]
    fn config_accessors() {
        let generator = small_generator();
        assert_eq!(generator.config().snapshot_cadence, 2000);
        assert_eq!(generator.base_profile().name, "leela_like");
    }
}
