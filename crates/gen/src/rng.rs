//! The deterministic pseudo-random generator used during widget generation.
//!
//! Table I dedicates two 32-bit seed fields to "pseudo-random number
//! generators" — one for the basic-block vector and one for memory behaviour.
//! The generator must be identical on every platform (widget generation is
//! part of PoW verification), so this is a self-contained xoshiro256**
//! implementation seeded via splitmix64 rather than an external RNG crate.

/// A deterministic xoshiro256** PRNG.
#[derive(Debug, Clone)]
pub struct WidgetRng {
    state: [u64; 4],
}

impl WidgetRng {
    /// Creates a generator from a 64-bit seed (expanded via splitmix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling keeps the distribution unbiased.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a value in `[0.0, 1.0)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or all weights are zero/negative.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = WidgetRng::new(7);
        let mut b = WidgetRng::new(7);
        let mut c = WidgetRng::new(8);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut rng = WidgetRng::new(1);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = WidgetRng::new(3);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = WidgetRng::new(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn weighted_choice_matches_weights() {
        let mut rng = WidgetRng::new(11);
        let weights = [1.0, 3.0, 0.0, 6.0];
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[2], 0);
        let f1 = counts[1] as f64 / 20_000.0;
        let f3 = counts[3] as f64 / 20_000.0;
        assert!((f1 - 0.3).abs() < 0.03, "f1 {f1}");
        assert!((f3 - 0.6).abs() < 0.03, "f3 {f3}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        WidgetRng::new(0).next_bounded(0);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn zero_weights_panic() {
        WidgetRng::new(0).pick_weighted(&[0.0, 0.0]);
    }
}
