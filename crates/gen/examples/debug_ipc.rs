use hashcore_gen::WidgetGenerator;
use hashcore_profile::HashSeed;
use hashcore_sim::{CoreConfig, CoreModel, WorkloadProfiler};
use hashcore_vm::Executor;

fn main() {
    // Build the real reference profile from the Go-engine kernel.
    let params = hashcore_workloads::WorkloadParams::reference();
    let reference = hashcore_workloads::Workload::GoEngine
        .reference_profile(&params, CoreConfig::ivy_bridge_like())
        .unwrap();
    println!("reference: ipc={:.3} bhit={:.4} dyn={} ws={} strided={:.2} chase={:.2} taken={:.2} branch_frac={:.3}",
        reference.reference_ipc, reference.reference_branch_hit_rate,
        reference.target_dynamic_instructions, reference.memory.working_set_bytes,
        reference.memory.strided_fraction, reference.memory.pointer_chase_fraction,
        reference.branch.taken_fraction, reference.branch.branch_fraction);
    let generator = WidgetGenerator::new(reference);
    for fill in [1u8, 50, 120, 200, 255] {
        let widget = generator.generate(&HashSeed::new([fill; 32]));
        let exec = Executor::new(widget.exec_config())
            .execute(&widget.program)
            .unwrap();
        let sim =
            CoreModel::new(CoreConfig::ivy_bridge_like()).simulate(&widget.program, &exec.trace);
        let measured = WorkloadProfiler::default().profile("w", &widget.program, &exec.trace);
        println!(
            "widget {fill:3}: ipc={:.3} bhit={:.4} dyn={} out={}B mixL1={:.3}",
            sim.counters.ipc(),
            sim.counters.branch_hit_rate(),
            exec.dynamic_instructions,
            exec.output.len(),
            hashcore_profile::ProfileDistance::between(&measured, &widget.target.profile).mix_l1
        );
    }
}
