//! Property-based equivalence of the scratch-reuse generation path: for any
//! stream of seeds, `generate_into` driven through one long-lived scratch
//! and output widget must produce exactly what fresh-allocation `generate`
//! produces — program bytes, target profile, snapshot expectation, all of it.

use hashcore_gen::{GenScratch, GeneratedWidget, WidgetGenerator};
use hashcore_isa::encode;
use hashcore_profile::{HashSeed, PerformanceProfile};
use proptest::prelude::*;

fn small_generator(target_instructions: u64) -> WidgetGenerator {
    let mut profile = PerformanceProfile::leela_like();
    profile.target_dynamic_instructions = target_instructions.clamp(2_000, 30_000);
    WidgetGenerator::new(profile)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `generate_into` ≡ `generate`: identical `Program` for an identical
    /// seed, even when the scratch and output widget are reused across a
    /// stream of different seeds (the mining-loop usage).
    #[test]
    fn generate_into_matches_generate_for_seed_streams(
        seeds in prop::collection::vec(prop::collection::vec(any::<u8>(), 32..33), 1..5),
        target in 2_000u64..30_000,
    ) {
        let generator = small_generator(target);
        let mut scratch = GenScratch::new();
        let mut widget = GeneratedWidget::default();
        for bytes in &seeds {
            let mut raw = [0u8; 32];
            raw.copy_from_slice(bytes);
            let seed = HashSeed::new(raw);

            let fresh = generator.generate(&seed);
            generator.generate_into(&seed, &mut scratch, &mut widget);

            prop_assert_eq!(&widget.program, &fresh.program);
            prop_assert_eq!(encode(&widget.program), encode(&fresh.program));
            prop_assert_eq!(&widget.target, &fresh.target);
            prop_assert_eq!(widget.seed, fresh.seed);
            prop_assert_eq!(widget.expected_snapshots, fresh.expected_snapshots);
            prop_assert!(widget.program.validate().is_ok());
        }
    }

    /// The generator's worst-case bounds dominate every actual widget.
    #[test]
    fn generation_bounds_dominate_actual_widgets(
        fill in any::<u8>(),
        target in 2_000u64..30_000,
    ) {
        let generator = small_generator(target);
        let bounds = generator.bounds();
        let widget = generator.generate(&HashSeed::new([fill; 32]));
        prop_assert!(widget.program.blocks().len() <= bounds.max_blocks);
        let longest = widget
            .program
            .blocks()
            .iter()
            .map(|b| b.instructions.len())
            .max()
            .unwrap_or(0);
        prop_assert!(longest <= bounds.max_block_len, "{longest} > {}", bounds.max_block_len);
        prop_assert!(widget.program.memory_size() <= bounds.max_memory_bytes);
        prop_assert!(widget.expected_output_bytes() <= bounds.max_output_bytes);
    }
}
