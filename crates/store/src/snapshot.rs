//! Compressed snapshot files and the atomic write-rename-fsync commit
//! protocol.
//!
//! ## File format
//!
//! ```text
//! ┌──────────────┬────────────┬────────────┬────────────┬────────────┐
//! │ magic (8B)   │ raw: u64   │ packed:u32 │ crc: u32   │ LZSS bytes │
//! │ "HCSNAP01"   │ LE         │ LE         │ LE         │ (packed)   │
//! └──────────────┴────────────┴────────────┴────────────┴────────────┘
//! ```
//!
//! `raw` is the uncompressed payload length, `packed` the compressed
//! length, `crc` the CRC-32 of the compressed bytes. The payload is a
//! [`codec::encode_snapshot`] encoding, LZSS-compressed. Loading verifies,
//! in order: magic, header plausibility, exact file length, CRC, LZSS
//! structure, codec structure — any failure is a [`SnapshotFault`], never a
//! panic, so the recovery ladder can fall back to an older snapshot.
//!
//! ## Commit protocol
//!
//! [`write_atomic`] makes a snapshot durable in three ordered steps:
//!
//! 1. write the full image to a `*.tmp` sibling and `fsync` the file,
//! 2. `rename` the tmp over the final name (atomic on POSIX filesystems:
//!    readers see either the old file or the complete new one, never a
//!    partial write),
//! 3. `fsync` the containing directory so the rename itself survives a
//!    crash.
//!
//! A crash before step 2 leaves only a `*.tmp` orphan, which recovery
//! ignores (and [`ChainStore::open`](crate::ChainStore::open) sweeps); a
//! crash after step 2 but before step 3 may lose the rename but never
//! produces a half-written file under the final name.

use crate::codec::{self, DecodeError};
use crate::compress::{compress, decompress, CompressError};
use crate::crc32::crc32;
use hashcore_chain::TreeSnapshot;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Leading magic identifying a snapshot file and its format version.
pub const MAGIC: &[u8; 8] = b"HCSNAP01";

/// Fixed-size prefix before the compressed payload.
pub const SNAPSHOT_HEADER_LEN: usize = 8 + 8 + 4 + 4;

/// Why a snapshot file was rejected. Every variant is recoverable: the
/// ladder in [`ChainStore::open`](crate::ChainStore::open) tries the next-older snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotFault {
    /// The file is shorter than the fixed header, or its magic is wrong.
    BadMagic,
    /// The header's lengths disagree with the actual file size (torn
    /// write).
    Torn,
    /// The compressed payload's CRC-32 does not match the header.
    ChecksumMismatch,
    /// The CRC passed but the LZSS stream is malformed.
    BadCompression(CompressError),
    /// The decompressed payload failed to decode as a snapshot.
    Undecodable(DecodeError),
}

/// Serializes, compresses and frames `snapshot` into a complete file image.
pub fn encode_file(snapshot: &TreeSnapshot) -> Vec<u8> {
    let mut raw = Vec::new();
    codec::encode_snapshot(snapshot, &mut raw);
    let packed = compress(&raw);
    let mut file = Vec::with_capacity(SNAPSHOT_HEADER_LEN + packed.len());
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&(raw.len() as u64).to_le_bytes());
    file.extend_from_slice(&(packed.len() as u32).to_le_bytes());
    file.extend_from_slice(&crc32(&packed).to_le_bytes());
    file.extend_from_slice(&packed);
    file
}

/// Validates and decodes a complete file image — the pure inverse of
/// [`encode_file`], used directly by the fault-injection proptests.
///
/// # Errors
///
/// [`SnapshotFault`] describing the first check that failed.
pub fn decode_file(bytes: &[u8]) -> Result<TreeSnapshot, SnapshotFault> {
    if bytes.len() < SNAPSHOT_HEADER_LEN || &bytes[..8] != MAGIC {
        return Err(SnapshotFault::BadMagic);
    }
    let raw_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let packed_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    if bytes.len() != SNAPSHOT_HEADER_LEN + packed_len {
        return Err(SnapshotFault::Torn);
    }
    let packed = &bytes[SNAPSHOT_HEADER_LEN..];
    if crc32(packed) != crc {
        return Err(SnapshotFault::ChecksumMismatch);
    }
    let raw = decompress(packed, raw_len).map_err(SnapshotFault::BadCompression)?;
    codec::decode_snapshot(&raw).map_err(SnapshotFault::Undecodable)
}

/// Loads and validates the snapshot at `path`.
///
/// # Errors
///
/// `Err(io_error)` for real I/O failures; `Ok(Err(fault))` when the file
/// was readable but rejected — the distinction the recovery ladder needs
/// (corruption falls back, I/O errors propagate).
pub fn load(path: &Path) -> io::Result<Result<TreeSnapshot, SnapshotFault>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => file.read_to_end(&mut bytes).map(|_| ())?,
        Err(error) => return Err(error),
    }
    Ok(decode_file(&bytes))
}

/// Commits `snapshot` under `path` via the write-rename-fsync protocol
/// described in the module docs.
///
/// # Errors
///
/// Any I/O error from the write, fsyncs or rename.
pub fn write_atomic(path: &Path, snapshot: &TreeSnapshot) -> io::Result<()> {
    let image = encode_file(snapshot);
    let tmp = path.with_extension("tmp");
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&image)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap_or_else(|| Path::new(".")))?;
    Ok(())
}

/// Fsyncs a directory so a just-committed rename/create within it survives
/// a crash. Directory fsync is POSIX-specific; on platforms where opening
/// a directory for sync is unsupported the error is swallowed (the rename
/// itself remains atomic, only its durability window widens).
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(handle) => match handle.sync_all() {
            Ok(()) => Ok(()),
            // e.g. EISDIR/EBADF on filesystems without dir-fsync support.
            Err(_) => Ok(()),
        },
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_chain::{Block, BlockHeader};

    fn sample_snapshot() -> TreeSnapshot {
        let transactions = vec![vec![1, 2, 3]];
        let block = Block {
            header: BlockHeader {
                version: 1,
                prev_hash: [0; 32],
                merkle_root: Block::merkle_root(&transactions),
                timestamp: 1,
                target: [0xFF; 32],
                nonce: 0,
            },
            transactions,
        };
        TreeSnapshot {
            root: [0; 32],
            root_height: 0,
            root_work: 0.0,
            rule: None,
            blocks: vec![block],
        }
    }

    #[test]
    fn file_image_roundtrips_and_rejects_damage() {
        let snapshot = sample_snapshot();
        let image = encode_file(&snapshot);
        assert_eq!(decode_file(&image).unwrap(), snapshot);
        // Every truncation point is rejected.
        for cut in 0..image.len() {
            assert!(decode_file(&image[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Every single-byte corruption is rejected (the header fields and
        // payload are all covered by magic/length/CRC checks).
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x01;
            assert!(decode_file(&bad).is_err(), "flip at {i} accepted");
        }
    }
}
