//! Canonical byte codecs for [`Block`] and [`TreeSnapshot`].
//!
//! Everything is little-endian and length-prefixed; headers reuse the exact
//! 116-byte layout [`BlockHeader::write_bytes`] hashes, so the stored bytes
//! are the PoW input bytes — a decoded block re-hashes to the same digest
//! by construction. Decoders validate every length against the remaining
//! input and return [`DecodeError`] instead of panicking: corrupt records
//! must surface as recoverable errors so the log scanner can truncate a
//! torn tail and the snapshot ladder can fall back.

use hashcore::Target;
use hashcore_chain::{
    Block, BlockHeader, CostAwareRetarget, DifficultyRule, EmaRetarget, TreeSnapshot,
};
use std::fmt;

/// Serialized [`BlockHeader`] size: version `u32` + two 32-byte digests +
/// timestamp `u64` + 32-byte target + nonce `u64`.
pub const HEADER_LEN: usize = 4 + 32 + 32 + 8 + 32 + 8;

/// A record or snapshot payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the structure it declared.
    Truncated,
    /// Trailing bytes followed a complete structure.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A declared length is implausible for the remaining input.
    BadLength,
    /// An enum tag byte is outside the known range.
    BadTag {
        /// The offending tag value.
        tag: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input ends mid-structure"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete structure")
            }
            DecodeError::BadLength => write!(f, "declared length exceeds remaining input"),
            DecodeError::BadTag { tag } => write!(f, "unknown tag byte {tag:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(input: &'a [u8]) -> Self {
        Reader { input, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.input.len() - self.pos < n {
            return Err(DecodeError::Truncated);
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn digest(&mut self) -> Result<[u8; 32], DecodeError> {
        Ok(self.take(32)?.try_into().unwrap())
    }

    /// A length prefix that must still fit in the remaining input —
    /// rejects absurd values before any allocation is sized by them.
    fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if self.input.len() - self.pos < n {
            return Err(DecodeError::BadLength);
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), DecodeError> {
        let extra = self.input.len() - self.pos;
        if extra != 0 {
            return Err(DecodeError::TrailingBytes { extra });
        }
        Ok(())
    }
}

/// Appends the canonical encoding of `block` to `out`.
pub fn encode_block(block: &Block, out: &mut Vec<u8>) {
    let header = &block.header;
    out.extend_from_slice(&header.version.to_le_bytes());
    out.extend_from_slice(&header.prev_hash);
    out.extend_from_slice(&header.merkle_root);
    out.extend_from_slice(&header.timestamp.to_le_bytes());
    out.extend_from_slice(&header.target);
    out.extend_from_slice(&header.nonce.to_le_bytes());
    out.extend_from_slice(&(block.transactions.len() as u32).to_le_bytes());
    for tx in &block.transactions {
        out.extend_from_slice(&(tx.len() as u32).to_le_bytes());
        out.extend_from_slice(tx);
    }
}

fn read_block(reader: &mut Reader<'_>) -> Result<Block, DecodeError> {
    let version = reader.u32()?;
    let prev_hash = reader.digest()?;
    let merkle_root = reader.digest()?;
    let timestamp = reader.u64()?;
    let target = reader.digest()?;
    let nonce = reader.u64()?;
    let tx_count = reader.len()?;
    let mut transactions = Vec::with_capacity(tx_count.min(1024));
    for _ in 0..tx_count {
        let len = reader.len()?;
        transactions.push(reader.take(len)?.to_vec());
    }
    Ok(Block {
        header: BlockHeader {
            version,
            prev_hash,
            merkle_root,
            timestamp,
            target,
            nonce,
        },
        transactions,
    })
}

/// Decodes a [`Block`] from exactly `input` — trailing bytes are an error.
///
/// # Errors
///
/// [`DecodeError`] on truncation, bad lengths or trailing bytes.
pub fn decode_block(input: &[u8]) -> Result<Block, DecodeError> {
    let mut reader = Reader::new(input);
    let block = read_block(&mut reader)?;
    reader.finish()?;
    Ok(block)
}

fn encode_rule(rule: Option<&DifficultyRule>, out: &mut Vec<u8>) {
    match rule {
        None => out.push(0),
        Some(DifficultyRule::Fixed(target)) => {
            out.push(1);
            out.extend_from_slice(target.threshold());
        }
        Some(DifficultyRule::Ema(ema)) => {
            out.push(2);
            out.extend_from_slice(ema.initial.threshold());
            out.extend_from_slice(&ema.target_block_time.to_bits().to_le_bytes());
            out.extend_from_slice(&ema.gain.to_bits().to_le_bytes());
        }
        Some(DifficultyRule::CostAware(cost)) => {
            out.push(3);
            out.extend_from_slice(cost.time.initial.threshold());
            out.extend_from_slice(&cost.time.target_block_time.to_bits().to_le_bytes());
            out.extend_from_slice(&cost.time.gain.to_bits().to_le_bytes());
            out.extend_from_slice(&cost.cost_gain.to_bits().to_le_bytes());
            out.extend_from_slice(&cost.response.to_bits().to_le_bytes());
        }
    }
}

fn read_rule(reader: &mut Reader<'_>) -> Result<Option<DifficultyRule>, DecodeError> {
    let tag = reader.take(1)?[0];
    match tag {
        0 => Ok(None),
        1 => Ok(Some(DifficultyRule::Fixed(Target::from_threshold(
            reader.digest()?,
        )))),
        2 => Ok(Some(DifficultyRule::Ema(EmaRetarget {
            initial: Target::from_threshold(reader.digest()?),
            target_block_time: reader.f64()?,
            gain: reader.f64()?,
        }))),
        3 => Ok(Some(DifficultyRule::CostAware(CostAwareRetarget {
            time: EmaRetarget {
                initial: Target::from_threshold(reader.digest()?),
                target_block_time: reader.f64()?,
                gain: reader.f64()?,
            },
            cost_gain: reader.f64()?,
            response: reader.f64()?,
        }))),
        tag => Err(DecodeError::BadTag { tag }),
    }
}

/// Appends the canonical encoding of `snapshot` to `out`.
pub fn encode_snapshot(snapshot: &TreeSnapshot, out: &mut Vec<u8>) {
    out.extend_from_slice(&snapshot.root);
    out.extend_from_slice(&snapshot.root_height.to_le_bytes());
    out.extend_from_slice(&snapshot.root_work.to_bits().to_le_bytes());
    encode_rule(snapshot.rule.as_ref(), out);
    out.extend_from_slice(&(snapshot.blocks.len() as u32).to_le_bytes());
    for block in &snapshot.blocks {
        encode_block(block, out);
    }
}

/// Decodes a [`TreeSnapshot`] from exactly `input`.
///
/// # Errors
///
/// [`DecodeError`] on truncation, bad lengths, an unknown rule tag or
/// trailing bytes.
pub fn decode_snapshot(input: &[u8]) -> Result<TreeSnapshot, DecodeError> {
    let mut reader = Reader::new(input);
    let root = reader.digest()?;
    let root_height = reader.u64()?;
    let root_work = reader.f64()?;
    let rule = read_rule(&mut reader)?;
    let block_count = reader.u32()? as usize;
    let mut blocks = Vec::with_capacity(block_count.min(4096));
    for _ in 0..block_count {
        blocks.push(read_block(&mut reader)?);
    }
    reader.finish()?;
    Ok(TreeSnapshot {
        root,
        root_height,
        root_work,
        rule,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(tag: u8) -> Block {
        let transactions = vec![vec![tag; 3], Vec::new(), vec![tag ^ 0xFF; 40]];
        Block {
            header: BlockHeader {
                version: 7,
                prev_hash: [tag; 32],
                merkle_root: Block::merkle_root(&transactions),
                timestamp: 123_456,
                target: [0x0F; 32],
                nonce: 42,
            },
            transactions,
        }
    }

    #[test]
    fn block_roundtrip_and_header_len() {
        let block = sample_block(9);
        let mut bytes = Vec::new();
        encode_block(&block, &mut bytes);
        assert_eq!(bytes.len(), HEADER_LEN + 4 + (4 + 3) + 4 + (4 + 40));
        assert_eq!(decode_block(&bytes).unwrap(), block);
        // Truncation at every prefix errors; never panics.
        for cut in 0..bytes.len() {
            assert!(decode_block(&bytes[..cut]).is_err());
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            decode_block(&padded).unwrap_err(),
            DecodeError::TrailingBytes { extra: 1 }
        );
    }

    #[test]
    fn snapshot_roundtrip_with_every_rule_shape() {
        for rule in [
            None,
            Some(DifficultyRule::Fixed(Target::from_leading_zero_bits(2))),
            Some(DifficultyRule::Ema(EmaRetarget {
                initial: Target::from_leading_zero_bits(3),
                target_block_time: 12.5,
                gain: 0.25,
            })),
            Some(DifficultyRule::CostAware(CostAwareRetarget {
                time: EmaRetarget {
                    initial: Target::from_leading_zero_bits(4),
                    target_block_time: 1_000.0,
                    gain: 0.5,
                },
                cost_gain: 0.5,
                response: 2.0,
            })),
        ] {
            let snapshot = TreeSnapshot {
                root: [3; 32],
                root_height: 17,
                root_work: 1234.5,
                rule,
                blocks: vec![sample_block(1), sample_block(2)],
            };
            let mut bytes = Vec::new();
            encode_snapshot(&snapshot, &mut bytes);
            assert_eq!(decode_snapshot(&bytes).unwrap(), snapshot);
            for cut in 0..bytes.len() {
                assert!(decode_snapshot(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn bogus_tags_and_lengths_are_rejected() {
        let snapshot = TreeSnapshot {
            root: [0; 32],
            root_height: 0,
            root_work: 0.0,
            rule: None,
            blocks: Vec::new(),
        };
        let mut bytes = Vec::new();
        encode_snapshot(&snapshot, &mut bytes);
        // The rule tag sits right after root digest + height + work.
        let tag_at = 32 + 8 + 8;
        bytes[tag_at] = 9;
        assert_eq!(
            decode_snapshot(&bytes).unwrap_err(),
            DecodeError::BadTag { tag: 9 }
        );
        // A block whose tx count claims more than the input holds.
        let block = sample_block(5);
        let mut encoded = Vec::new();
        encode_block(&block, &mut encoded);
        encoded[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_block(&encoded).unwrap_err(), DecodeError::BadLength);
    }
}
