//! The append-only segment log: one CRC-framed record per accepted block.
//!
//! ## Record framing
//!
//! ```text
//! ┌──────────┬──────────┬───────────────┐
//! │ len: u32 │ crc: u32 │ payload (len) │   all little-endian
//! └──────────┴──────────┴───────────────┘
//! ```
//!
//! `crc` is the CRC-32 of the payload bytes. The payload is a
//! [`codec::encode_block`] encoding. A record is *committed* once all
//! `8 + len` bytes are durable; a crash mid-append leaves a *torn tail* —
//! a partial header, a partial payload, or a payload whose CRC does not
//! match — which [`scan`] detects and reports so recovery can truncate it.
//!
//! ## Recovery semantics
//!
//! [`scan`] decodes records front-to-back and stops at the **first**
//! damaged one, treating everything from that offset on as lost. This is
//! deliberately prefix-only: a bit flip in record *k* makes every later
//! record suspect (appends are sequential, so damage at *k* with intact
//! records after it means the storage lied about durability ordering), and
//! prefix semantics are what makes recovery reproducible — the recovered
//! state is exactly "the chain as of the last durable append".

use crate::codec::{self, DecodeError};
use crate::crc32::crc32;
use hashcore_chain::Block;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Bytes of framing before each payload (`len` + `crc`).
pub const RECORD_HEADER_LEN: usize = 8;

/// An open, append-only segment log file.
///
/// Appends are crash-ordered: the payload is framed in memory, written with
/// a single `write_all`, then (by default) fsynced before `append` returns —
/// so a record for block *n+1* can never be durable while block *n*'s is
/// not. Disabling [`SegmentLog::set_sync`] trades that guarantee for append
/// throughput; a crash may then lose any suffix of recent appends, which
/// recovery handles identically to a torn tail.
#[derive(Debug)]
pub struct SegmentLog {
    file: File,
    path: PathBuf,
    /// Bytes durably framed so far (committed length).
    len: u64,
    sync: bool,
}

impl SegmentLog {
    /// Creates the log file (truncating any existing file at `path`) and
    /// opens it for appending.
    ///
    /// # Errors
    ///
    /// Any I/O error from creation.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(SegmentLog {
            file,
            path: path.to_path_buf(),
            len: 0,
            sync: true,
        })
    }

    /// Opens an existing log for appending at `committed_len` — the valid
    /// prefix a [`scan`] reported. Any torn tail beyond it is truncated
    /// away first, so the next append lands at the committed boundary.
    ///
    /// # Errors
    ///
    /// Any I/O error from opening or truncating.
    pub fn open_at(path: &Path, committed_len: u64) -> io::Result<Self> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(committed_len)?;
        file.sync_all()?;
        let mut log = SegmentLog {
            file,
            path: path.to_path_buf(),
            len: committed_len,
            sync: true,
        };
        log.seek_to_end()?;
        Ok(log)
    }

    fn seek_to_end(&mut self) -> io::Result<()> {
        use std::io::Seek;
        self.file.seek(io::SeekFrom::Start(self.len))?;
        Ok(())
    }

    /// Whether every append fsyncs before returning (default `true`).
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// The current per-append fsync policy.
    pub fn sync(&self) -> bool {
        self.sync
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Committed byte length of the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no record has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one block record and (when sync is on) makes it durable
    /// before returning.
    ///
    /// # Errors
    ///
    /// Any I/O error from the write or fsync.
    pub fn append(&mut self, block: &Block) -> io::Result<()> {
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + 256);
        frame.extend_from_slice(&[0u8; RECORD_HEADER_LEN]);
        codec::encode_block(block, &mut frame);
        let payload_len = (frame.len() - RECORD_HEADER_LEN) as u32;
        let crc = crc32(&frame[RECORD_HEADER_LEN..]);
        frame[..4].copy_from_slice(&payload_len.to_le_bytes());
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&frame)?;
        if self.sync {
            self.file.sync_data()?;
        }
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Fsyncs any unsynced appends (a no-op when sync-per-append is on).
    ///
    /// # Errors
    ///
    /// Any I/O error from the fsync.
    pub fn flush(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Why a [`scan`] stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailFault {
    /// Fewer than [`RECORD_HEADER_LEN`] bytes remained — a torn frame
    /// header.
    TornHeader,
    /// The frame declared more payload bytes than the file holds — a torn
    /// payload.
    TornPayload,
    /// The payload's CRC-32 does not match the frame — bit rot or a torn
    /// overwrite.
    ChecksumMismatch,
    /// The CRC passed but the payload failed to decode as a block — a
    /// format violation the checksum cannot see (e.g. written by newer
    /// code).
    Undecodable(DecodeError),
}

/// The result of scanning a segment log: every committed record, the byte
/// length of the valid prefix, and what (if anything) stopped the scan.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Blocks decoded from the committed prefix, in append order.
    pub blocks: Vec<Block>,
    /// Byte length of the valid prefix — `open_at` this to truncate the
    /// tail.
    pub committed_len: u64,
    /// `None` when the whole file scanned cleanly; otherwise the first
    /// fault, with everything after `committed_len` treated as lost.
    pub fault: Option<TailFault>,
}

impl ScanOutcome {
    /// Bytes of torn/corrupt tail the scan discarded.
    pub fn lost_bytes(&self, file_len: u64) -> u64 {
        file_len.saturating_sub(self.committed_len)
    }
}

/// Scans a log file front-to-back, decoding every committed record and
/// stopping at the first damaged one (see the module docs for why prefix
/// semantics).
///
/// # Errors
///
/// Only real I/O errors (open/read failures). Corruption is *not* an
/// error — it is reported in [`ScanOutcome::fault`].
pub fn scan(path: &Path) -> io::Result<ScanOutcome> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(scan_bytes(&bytes))
}

/// [`scan`] over an in-memory image — the pure core, used directly by the
/// fault-injection proptests to crash-test every byte offset without
/// touching disk.
pub fn scan_bytes(bytes: &[u8]) -> ScanOutcome {
    let mut blocks = Vec::new();
    let mut pos = 0usize;
    let fault = loop {
        if pos == bytes.len() {
            break None;
        }
        if bytes.len() - pos < RECORD_HEADER_LEN {
            break Some(TailFault::TornHeader);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + RECORD_HEADER_LEN;
        if bytes.len() - start < len {
            break Some(TailFault::TornPayload);
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            break Some(TailFault::ChecksumMismatch);
        }
        match codec::decode_block(payload) {
            Ok(block) => blocks.push(block),
            Err(error) => break Some(TailFault::Undecodable(error)),
        }
        pos = start + len;
    };
    ScanOutcome {
        blocks,
        committed_len: pos as u64,
        fault,
    }
}
