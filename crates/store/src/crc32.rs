//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! framing every log record and snapshot payload, implemented here because
//! the build environment is offline and the workspace vendors no
//! compression/checksum crates.
//!
//! A CRC is the right tool for this job: it detects the corruption classes
//! a crashing disk actually produces (torn tails, zeroed pages, single-bit
//! flips) with a 2^-32 false-accept rate, and it is cheap enough to run on
//! every append. It is *not* an integrity MAC — an adversary who can write
//! the store's files can forge records; the fork tree re-validates PoW and
//! Merkle commitments on every replayed block, so forged payloads still
//! cannot smuggle an invalid block past recovery.

/// The 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time so the checksum has no runtime initialisation state.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (IEEE, reflected, init and final XOR `0xFFFF_FFFF`) —
/// matches the checksum used by zlib, PNG and Ethernet, so the on-disk
/// format is checkable with standard external tools.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let data = b"hashcore store record payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
