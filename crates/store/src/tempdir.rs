//! Self-cleaning scratch directories for tests and benches.
//!
//! The workspace is offline and vendors no `tempfile` crate, so this is
//! the minimal subset the persistence tests and `sim_persistence` bench
//! need: a uniquely named directory under the system temp root that is
//! removed (best-effort) on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs, io, process};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named scratch directory, recursively deleted on drop.
///
/// Uniqueness combines the process id with a process-wide counter, so
/// concurrent tests in one binary and concurrent test binaries both get
/// distinct directories without any randomness (the store's determinism
/// tests forbid nondeterministic inputs).
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `<system-temp>/hashcore-store-<pid>-<n>-<label>/`.
    ///
    /// # Errors
    ///
    /// Any I/O error from the directory creation.
    pub fn new(label: &str) -> io::Result<Self> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            env::temp_dir().join(format!("hashcore-store-{}-{}-{}", process::id(), n, label));
        // A stale directory from a killed previous run with the same pid is
        // possible; start clean either way.
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}
