//! Dependency-free LZSS compression for snapshot payloads.
//!
//! Snapshots serialise every retained block, and chain data is highly
//! repetitive — 32-byte parent digests recur as the next header's
//! `prev_hash`, targets repeat across flat-difficulty stretches, and
//! transaction payloads share prefixes — so even a simple LZ pass shrinks
//! snapshots substantially. The build environment is offline and the
//! workspace vendors no compression crates, so this module implements the
//! classic LZSS token stream directly:
//!
//! * the output is a sequence of groups: one control byte whose bits
//!   (LSB-first) flag the following eight tokens,
//! * flag `0` → a literal byte, copied verbatim,
//! * flag `1` → a back-reference: `offset` (`u16` LE, `1..=65535` bytes back
//!   into the already-decoded output) and `length` (`u8`, storing
//!   `length - MIN_MATCH`, so matches span `3..=258` bytes). Overlapping
//!   matches (`offset < length`) are legal and reproduce run-length
//!   encoding, exactly as in LZ77.
//!
//! Compression is deterministic (a fixed hash-chain match finder with a
//! bounded probe depth — no randomised data structures), which the
//! byte-identical `save → restore → fingerprint` proofs rely on. The
//! decompressor validates every token against the declared output length
//! and rejects malformed streams instead of panicking: a corrupt snapshot
//! must surface as a recoverable error so the recovery ladder can fall back
//! to an older snapshot.

use std::fmt;

/// Shortest back-reference worth emitting: a match token costs 3 bytes plus
/// a flag bit, so 3-byte matches are the break-even point.
const MIN_MATCH: usize = 3;
/// Longest back-reference a length byte can express (`255 + MIN_MATCH`).
const MAX_MATCH: usize = 258;
/// How far back an offset can reach (`u16` range, zero excluded).
const WINDOW: usize = 65_535;
/// Match-finder probe depth: how many previous positions with the same
/// 3-byte prefix each step considers. Bounds worst-case compression time on
/// pathological inputs while finding long matches on chain data.
const MAX_PROBES: usize = 32;

/// A compressed stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// A token was cut off mid-stream (torn write inside the payload).
    TruncatedStream,
    /// A back-reference pointed before the start of the decoded output.
    BadOffset,
    /// The stream decoded to a different length than it declared.
    LengthMismatch {
        /// Bytes the caller asked for.
        want: usize,
        /// Bytes the stream actually produced.
        got: usize,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::TruncatedStream => write!(f, "compressed stream is truncated"),
            CompressError::BadOffset => write!(f, "back-reference reaches before output start"),
            CompressError::LengthMismatch { want, got } => {
                write!(f, "stream decoded to {got} bytes, expected {want}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// Compresses `input` into an LZSS token stream decodable by
/// [`decompress`]. Deterministic: equal inputs always produce equal output.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    if input.is_empty() {
        return out;
    }
    // Hash-chain match finder: `head[h]` is the most recent position whose
    // 3-byte prefix hashes to `h`; `chain[i & mask]` links position `i` to
    // the previous position with the same hash.
    const HASH_BITS: usize = 15;
    let mask = WINDOW; // chain is indexed modulo a 64Ki ring
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut chain = vec![usize::MAX; WINDOW + 1];
    let hash = |window: &[u8]| -> usize {
        let v = u32::from_le_bytes([window[0], window[1], window[2], 0]);
        (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
    };

    let mut pos = 0;
    // One control byte governs the next eight tokens; tokens accumulate in
    // `group` until the byte is full, then both flush together.
    let mut flags = 0u8;
    let mut flag_count = 0;
    let mut group: Vec<u8> = Vec::with_capacity(8 * 3);

    while pos < input.len() {
        let mut best_len = 0;
        let mut best_offset = 0;
        if pos + MIN_MATCH <= input.len() {
            let h = hash(&input[pos..]);
            let mut candidate = head[h];
            let mut probes = 0;
            while candidate != usize::MAX
                && candidate < pos
                && pos - candidate <= WINDOW
                && probes < MAX_PROBES
            {
                let limit = (input.len() - pos).min(MAX_MATCH);
                let mut len = 0;
                while len < limit && input[candidate + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_offset = pos - candidate;
                    if len == MAX_MATCH {
                        break;
                    }
                }
                candidate = chain[candidate & mask];
                probes += 1;
            }
        }

        let advance = if best_len >= MIN_MATCH {
            flags |= 1 << flag_count;
            group.extend_from_slice(&(best_offset as u16).to_le_bytes());
            group.push((best_len - MIN_MATCH) as u8);
            best_len
        } else {
            group.push(input[pos]);
            1
        };
        flag_count += 1;
        if flag_count == 8 {
            out.push(flags);
            out.extend_from_slice(&group);
            flags = 0;
            flag_count = 0;
            group.clear();
        }
        // Index every position the token covered so later matches can
        // reach into it.
        for p in pos..(pos + advance).min(input.len().saturating_sub(MIN_MATCH - 1)) {
            let h = hash(&input[p..]);
            chain[p & mask] = head[h];
            head[h] = p;
        }
        pos += advance;
    }
    if flag_count > 0 {
        out.push(flags);
        out.extend_from_slice(&group);
    }
    out
}

/// Decompresses a [`compress`]-produced stream into exactly
/// `output_len` bytes.
///
/// # Errors
///
/// [`CompressError`] when the stream is truncated, a back-reference is out
/// of range, or the decoded length disagrees with `output_len` — all signs
/// of on-disk corruption, reported (never panicked) so the recovery ladder
/// can fall back.
pub fn decompress(input: &[u8], output_len: usize) -> Result<Vec<u8>, CompressError> {
    // `output_len` may come from a corrupt header: never let it size an
    // allocation directly. A token expands to at most MAX_MATCH bytes, so
    // the true output is bounded by the input size; growth past the cap is
    // organic and the final length check still enforces `output_len`.
    let mut out = Vec::with_capacity(output_len.min(input.len().saturating_mul(MAX_MATCH)));
    let mut pos = 0;
    while pos < input.len() && out.len() < output_len {
        let flags = input[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() >= output_len {
                break;
            }
            if pos >= input.len() {
                return Err(CompressError::TruncatedStream);
            }
            if flags & (1 << bit) == 0 {
                out.push(input[pos]);
                pos += 1;
            } else {
                if pos + 3 > input.len() {
                    return Err(CompressError::TruncatedStream);
                }
                let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                let len = input[pos + 2] as usize + MIN_MATCH;
                pos += 3;
                if offset == 0 || offset > out.len() {
                    return Err(CompressError::BadOffset);
                }
                // Byte-at-a-time copy: overlapping matches must re-read
                // bytes this very copy produced.
                let start = out.len() - offset;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
        }
    }
    if out.len() != output_len {
        return Err(CompressError::LengthMismatch {
            want: output_len,
            got: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) {
        let packed = compress(input);
        let unpacked = decompress(&packed, input.len()).expect("valid stream");
        assert_eq!(unpacked, input);
    }

    #[test]
    fn roundtrips_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(&[0u8; 10_000]); // long run → overlapping matches
        roundtrip(b"abcabcabcabcabcabcabcabc");
        let mixed: Vec<u8> = (0..5_000).map(|i| (i % 251) as u8).collect();
        roundtrip(&mixed);
    }

    #[test]
    fn chain_like_data_actually_shrinks() {
        // Repeated 32-byte "digests" with small variations, like headers.
        let mut data = Vec::new();
        for i in 0u32..200 {
            let mut digest = [0xABu8; 32];
            digest[..4].copy_from_slice(&i.to_le_bytes());
            data.extend_from_slice(&digest);
            data.extend_from_slice(&digest); // prev_hash repeats
        }
        let packed = compress(&data);
        assert!(
            packed.len() * 2 < data.len(),
            "expected >2x compression, got {} -> {}",
            data.len(),
            packed.len()
        );
        assert_eq!(decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_error_instead_of_panicking() {
        let data = b"abcabcabcabcabcabcabcabcabcabc";
        let packed = compress(data);
        // Truncation at every prefix length.
        for cut in 0..packed.len() {
            let _ = decompress(&packed[..cut], data.len());
        }
        // Single-byte corruption at every offset.
        for i in 0..packed.len() {
            let mut bad = packed.clone();
            bad[i] ^= 0xFF;
            let _ = decompress(&bad, data.len());
        }
        // An offset pointing before the output start is rejected.
        let bogus = [0x01, 0x10, 0x00, 0x00]; // match at offset 16, empty out
        assert_eq!(decompress(&bogus, 3).unwrap_err(), CompressError::BadOffset);
    }
}
