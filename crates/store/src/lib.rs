//! # hashcore-store
//!
//! Crash-consistent persistence for a [`ForkTree`]: an append-only,
//! CRC-framed segment log (one record per accepted block) plus periodic
//! compressed snapshots of the whole tree, committed with a
//! write-rename-fsync protocol and recovered through a strict ladder.
//!
//! ## On-disk layout
//!
//! A store directory contains:
//!
//! * `log-<seq>.log` — block records appended while snapshot `<seq>` was
//!   the newest ([`log`] documents the record framing). `log-0.log` exists
//!   from creation; each committed snapshot rotates to a fresh log.
//! * `snapshot-<seq>.snap` — compressed [`TreeSnapshot`] images, `seq`
//!   starting at 1 ([`snapshot`] documents the format and the atomic
//!   commit protocol).
//! * transient `*.tmp` files — in-flight snapshot writes; orphans from a
//!   crash are swept on open.
//!
//! ## Recovery ladder
//!
//! [`ChainStore::open`] rebuilds state in strictly decreasing trust order:
//!
//! 1. the newest snapshot that validates end-to-end (magic, lengths, CRC,
//!    compression, codec), then
//! 2. each older snapshot in turn when newer ones are damaged, then
//! 3. genesis — an empty tree — when no snapshot survives.
//!
//! From the chosen base, every log with `seq >=` the base's sequence
//! replays in order. Log scanning is prefix-only: the first damaged record
//! (torn header, torn payload, CRC mismatch, undecodable payload) ends the
//! replay, and `open` repairs the directory to exactly the recovered state
//! — the torn log is truncated at its last committed record, later logs
//! and rejected snapshots are deleted — so a second crash cannot observe a
//! state newer than the one just recovered. Every decision is reported in
//! [`RecoveryReport`].
//!
//! The result is the crash guarantee the fault-injection proptests pin
//! down: whatever prefix of the write stream reached the disk, recovery
//! yields a tree whose [`ForkTree::fingerprint`] equals the reference tree
//! built from that durably-committed prefix.

#![warn(missing_docs)]

pub mod codec;
pub mod compress;
pub mod crc32;
pub mod log;
pub mod snapshot;
pub mod tempdir;

pub use codec::DecodeError;
pub use compress::CompressError;
pub use log::{ScanOutcome, SegmentLog, TailFault};
pub use snapshot::SnapshotFault;
pub use tempdir::TempDir;

use hashcore_chain::{Block, DifficultyRule, ForkTree, PreparedPow, RestoreError, TreeSnapshot};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Filename of the segment log rotated in when snapshot `seq` committed.
fn log_name(seq: u64) -> String {
    format!("log-{seq}.log")
}

/// Filename of the snapshot image with sequence `seq`.
fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq}.snap")
}

/// Parses `prefix-<seq>.<ext>` back into `seq`.
fn parse_seq(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(ext)?
        .parse::<u64>()
        .ok()
}

/// Everything [`ChainStore::open`] recovered from disk: the base snapshot
/// (if any), the blocks to replay on top of it, and the report of every
/// fault the ladder stepped over. Feed it to [`rebuild`] to get the tree.
#[derive(Debug)]
pub struct Recovered {
    /// The newest snapshot that validated, or `None` for a genesis start.
    pub snapshot: Option<TreeSnapshot>,
    /// Committed log records from the base onward, in append order.
    pub replay: Vec<Block>,
    /// What the ladder saw: rejected snapshots, log faults, lost bytes.
    pub report: RecoveryReport,
}

/// The recovery ladder's audit trail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence of the snapshot recovery based on (0 = genesis).
    pub base_seq: u64,
    /// Snapshots that failed validation, newest first, with why.
    pub snapshots_rejected: Vec<(u64, SnapshotFault)>,
    /// The first log fault hit during replay (log sequence + fault), if
    /// any; replay stopped there.
    pub log_fault: Option<(u64, TailFault)>,
    /// Torn/corrupt log bytes discarded by the truncation repair.
    pub lost_bytes: u64,
    /// Orphan `*.tmp` files swept on open.
    pub tmp_swept: usize,
}

impl RecoveryReport {
    /// `true` when recovery used the newest snapshot and every log record:
    /// nothing on disk was damaged.
    pub fn clean(&self) -> bool {
        self.snapshots_rejected.is_empty() && self.log_fault.is_none() && self.lost_bytes == 0
    }
}

/// A crash-consistent persistent store for one node's [`ForkTree`].
///
/// Appends go to the active segment log (fsynced per record by default);
/// [`ChainStore::snapshot_now`] commits a full-tree snapshot atomically and
/// rotates the log. Reopening a directory with [`ChainStore::open`] runs
/// the recovery ladder documented at the crate root.
#[derive(Debug)]
pub struct ChainStore {
    dir: PathBuf,
    /// Sequence of the newest committed snapshot (0 = none yet); the
    /// active log shares this sequence.
    seq: u64,
    log: SegmentLog,
}

impl ChainStore {
    /// Creates a fresh store in `dir` (creating the directory if needed).
    /// Pre-existing store files in `dir` are an error — recovery must go
    /// through [`ChainStore::open`], and a fresh store must never silently
    /// shadow a previous chain's history.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `dir` already holds store files; otherwise any
    /// I/O error from directory or log creation.
    pub fn create(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        if !list_seqs(dir, "snapshot-", ".snap")?.is_empty()
            || !list_seqs(dir, "log-", ".log")?.is_empty()
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{} already contains a chain store", dir.display()),
            ));
        }
        let log = SegmentLog::create(&dir.join(log_name(0)))?;
        snapshot::sync_dir(dir)?;
        Ok(ChainStore {
            dir: dir.to_path_buf(),
            seq: 0,
            log,
        })
    }

    /// Opens an existing store, running the recovery ladder and repairing
    /// the directory to exactly the recovered state (truncating any torn
    /// log tail, deleting rejected snapshots and unreachable later logs,
    /// sweeping `*.tmp` orphans).
    ///
    /// # Errors
    ///
    /// Real I/O errors only — corruption is recovered from and reported in
    /// the returned [`Recovered::report`].
    pub fn open(dir: &Path) -> io::Result<(Self, Recovered)> {
        let mut report = RecoveryReport::default();

        // Sweep snapshot-write orphans: a crash mid-commit leaves a *.tmp
        // that never got renamed and must not shadow real files.
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|ext| ext == "tmp") {
                fs::remove_file(&path)?;
                report.tmp_swept += 1;
            }
        }

        // Ladder step 1-2: newest validating snapshot wins; rejected ones
        // are reported and deleted (they can never be trusted again).
        let mut snapshot_seqs = list_seqs(dir, "snapshot-", ".snap")?;
        snapshot_seqs.sort_unstable_by(|a, b| b.cmp(a));
        let mut base: Option<(u64, TreeSnapshot)> = None;
        for seq in snapshot_seqs {
            let path = dir.join(snapshot_name(seq));
            if base.is_some() {
                // Older than the chosen base: stale but harmless; keep it
                // as the fallback for the *next* recovery.
                continue;
            }
            match snapshot::load(&path)? {
                Ok(snap) => base = Some((seq, snap)),
                Err(fault) => {
                    report.snapshots_rejected.push((seq, fault));
                    fs::remove_file(&path)?;
                }
            }
        }
        let base_seq = base.as_ref().map_or(0, |(seq, _)| *seq);
        report.base_seq = base_seq;

        // Ladder step 3: replay logs from the base onward, strictly
        // prefix-only across the whole sequence.
        let mut log_seqs = list_seqs(dir, "log-", ".log")?;
        log_seqs.sort_unstable();
        let mut replay = Vec::new();
        // (seq, committed_len) of the log the next append continues in.
        let mut active: Option<(u64, u64)> = None;
        for &seq in log_seqs.iter().filter(|&&seq| seq >= base_seq) {
            if report.log_fault.is_some() {
                // Past the first fault: unreachable history, delete.
                fs::remove_file(dir.join(log_name(seq)))?;
                continue;
            }
            let path = dir.join(log_name(seq));
            let file_len = fs::metadata(&path)?.len();
            let outcome = log::scan(&path)?;
            if let Some(fault) = outcome.fault.clone() {
                report.lost_bytes += outcome.lost_bytes(file_len);
                report.log_fault = Some((seq, fault));
            }
            replay.extend(outcome.blocks);
            active = Some((seq, outcome.committed_len));
        }

        // Repair: reopen the newest surviving log truncated to its
        // committed prefix, or create the log a crash-during-rotation
        // prevented (snapshot committed, fresh log didn't).
        let log = match active {
            Some((seq, committed_len)) => {
                SegmentLog::open_at(&dir.join(log_name(seq)), committed_len)?
            }
            None => SegmentLog::create(&dir.join(log_name(base_seq)))?,
        };
        snapshot::sync_dir(dir)?;

        let store = ChainStore {
            dir: dir.to_path_buf(),
            seq: base_seq,
            log,
        };
        Ok((
            store,
            Recovered {
                snapshot: base.map(|(_, snap)| snap),
                replay,
                report,
            },
        ))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence of the newest committed snapshot (0 before the first).
    pub fn snapshot_seq(&self) -> u64 {
        self.seq
    }

    /// Whether every append fsyncs before returning (default `true`).
    /// Turning it off trades the per-record durability guarantee for
    /// throughput; a crash may lose a suffix of recent appends, which
    /// recovery treats exactly like a torn tail.
    pub fn set_sync(&mut self, sync: bool) {
        self.log.set_sync(sync);
    }

    /// The current per-append fsync policy (see [`ChainStore::set_sync`]).
    pub fn synced_appends(&self) -> bool {
        self.log.sync()
    }

    /// Appends one accepted block to the active segment log.
    ///
    /// # Errors
    ///
    /// Any I/O error from the write or fsync.
    pub fn append_block(&mut self, block: &Block) -> io::Result<()> {
        self.log.append(block)
    }

    /// Commits a full-tree snapshot atomically and rotates to a fresh
    /// segment log. Older snapshots and their logs are left in place as
    /// the recovery ladder's fallback rungs.
    ///
    /// # Errors
    ///
    /// Any I/O error from the snapshot commit or log rotation.
    pub fn snapshot_now(&mut self, snapshot: &TreeSnapshot) -> io::Result<()> {
        let seq = self.seq + 1;
        snapshot::write_atomic(&self.dir.join(snapshot_name(seq)), snapshot)?;
        self.log = SegmentLog::create(&self.dir.join(log_name(seq)))?;
        snapshot::sync_dir(&self.dir)?;
        self.seq = seq;
        Ok(())
    }

    /// Bytes currently committed in the active segment log.
    pub fn log_len(&self) -> u64 {
        self.log.len()
    }
}

/// Deterministic fault injection for crash tests and benches: shears
/// `bytes` off the end of the active (highest-sequence) segment log in
/// `dir`, simulating appends that never became durable before a crash.
/// Returns how many bytes were actually removed (capped at the file
/// length; 0 when the directory holds no log).
///
/// # Errors
///
/// Any I/O error from listing, opening or truncating the log.
pub fn inject_torn_tail(dir: &Path, bytes: u64) -> io::Result<u64> {
    let mut seqs = list_seqs(dir, "log-", ".log")?;
    seqs.sort_unstable();
    let Some(&seq) = seqs.last() else {
        return Ok(0);
    };
    let path = dir.join(log_name(seq));
    let len = fs::metadata(&path)?.len();
    let cut = bytes.min(len);
    let file = fs::OpenOptions::new().write(true).open(&path)?;
    file.set_len(len - cut)?;
    file.sync_all()?;
    Ok(cut)
}

/// Lists the sequences of `prefix-<seq><ext>` files in `dir`.
fn list_seqs(dir: &Path, prefix: &str, ext: &str) -> io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_seq(name, prefix, ext) {
                seqs.push(seq);
            }
        }
    }
    Ok(seqs)
}

/// Rebuilds a [`ForkTree`] from a recovery result: restore the base
/// snapshot (or start at genesis with `genesis_rule`), then re-apply every
/// replayed block through the tree's full validation. Replayed blocks that
/// no longer attach (their parent fell below a pruned snapshot's retention
/// root, or sat in a lost log suffix) are skipped and counted — recovery
/// must degrade to "the durable prefix", never fail outright on them.
///
/// Returns the tree and the number of skipped replay blocks.
///
/// # Errors
///
/// [`RestoreError`] only when the base snapshot itself cannot be restored
/// (tampered root or a block that fails validation) — the caller should
/// treat this like a corrupt snapshot and reopen after deleting it.
pub fn rebuild<P: PreparedPow>(
    pow: P,
    genesis_rule: Option<DifficultyRule>,
    recovered: &Recovered,
) -> Result<(ForkTree<P>, usize), RestoreError> {
    let mut tree = match (&recovered.snapshot, genesis_rule) {
        (Some(snap), _) => ForkTree::from_snapshot(pow, snap)?,
        (None, Some(rule)) => ForkTree::with_rule(pow, rule),
        (None, None) => ForkTree::new(pow),
    };
    let mut skipped = 0usize;
    for block in &recovered.replay {
        if tree.apply(block.clone()).is_err() {
            skipped += 1;
        }
    }
    Ok((tree, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore::Target;
    use hashcore_baselines::{PowFunction, Sha256dPow};
    use hashcore_chain::BlockHeader;

    fn mine_child(prev: [u8; 32], tag: &str) -> Block {
        let txs = vec![tag.as_bytes().to_vec()];
        let target = Target::from_leading_zero_bits(2);
        let mut header = BlockHeader {
            version: 1,
            prev_hash: prev,
            merkle_root: Block::merkle_root(&txs),
            timestamp: 0,
            target: *target.threshold(),
            nonce: 0,
        };
        loop {
            if target.is_met_by(&Sha256dPow.pow_hash(&header.bytes())) {
                return Block {
                    header,
                    transactions: txs,
                };
            }
            header.nonce += 1;
        }
    }

    fn digest(block: &Block) -> [u8; 32] {
        Sha256dPow.pow_hash(&block.header.bytes())
    }

    fn mined_line(n: usize) -> Vec<Block> {
        let mut prev = hashcore_chain::GENESIS_HASH;
        (0..n)
            .map(|i| {
                let block = mine_child(prev, &format!("b{i}"));
                prev = digest(&block);
                block
            })
            .collect()
    }

    #[test]
    fn create_append_reopen_roundtrips() {
        let dir = TempDir::new("roundtrip").unwrap();
        let chain = mined_line(5);
        let mut live = ForkTree::new(Sha256dPow);
        {
            let mut store = ChainStore::create(dir.path()).unwrap();
            for block in &chain {
                live.apply(block.clone()).unwrap();
                store.append_block(block).unwrap();
            }
        }
        let (_store, recovered) = ChainStore::open(dir.path()).unwrap();
        assert!(recovered.report.clean());
        assert!(recovered.snapshot.is_none());
        assert_eq!(recovered.replay.len(), 5);
        let (tree, skipped) = rebuild(Sha256dPow, None, &recovered).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(tree.fingerprint(), live.fingerprint());
    }

    #[test]
    fn snapshot_rotates_log_and_recovery_prefers_it() {
        let dir = TempDir::new("rotate").unwrap();
        let chain = mined_line(8);
        let mut live = ForkTree::new(Sha256dPow);
        let mut store = ChainStore::create(dir.path()).unwrap();
        for block in &chain[..5] {
            live.apply(block.clone()).unwrap();
            store.append_block(block).unwrap();
        }
        store.snapshot_now(&live.snapshot()).unwrap();
        assert_eq!(store.snapshot_seq(), 1);
        assert_eq!(store.log_len(), 0);
        for block in &chain[5..] {
            live.apply(block.clone()).unwrap();
            store.append_block(block).unwrap();
        }
        drop(store);

        let (store, recovered) = ChainStore::open(dir.path()).unwrap();
        assert!(recovered.report.clean());
        assert_eq!(recovered.report.base_seq, 1);
        assert_eq!(recovered.snapshot.as_ref().unwrap().blocks.len(), 5);
        assert_eq!(recovered.replay.len(), 3);
        let (tree, skipped) = rebuild(Sha256dPow, None, &recovered).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(tree.fingerprint(), live.fingerprint());
        assert_eq!(store.snapshot_seq(), 1);
    }

    #[test]
    fn create_refuses_a_dir_with_store_files() {
        let dir = TempDir::new("refuse").unwrap();
        let _store = ChainStore::create(dir.path()).unwrap();
        let err = ChainStore::create(dir.path()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_then_genesis() {
        let dir = TempDir::new("ladder").unwrap();
        let chain = mined_line(9);
        let mut live = ForkTree::new(Sha256dPow);
        let mut store = ChainStore::create(dir.path()).unwrap();
        for (i, block) in chain.iter().enumerate() {
            live.apply(block.clone()).unwrap();
            store.append_block(block).unwrap();
            if i == 2 || i == 5 {
                store.snapshot_now(&live.snapshot()).unwrap();
            }
        }
        drop(store);

        // Damage snapshot 2: recovery steps down to snapshot 1 and still
        // reaches the identical tree by replaying log-1 and log-2.
        let snap2 = dir.path().join(snapshot_name(2));
        let mut bytes = fs::read(&snap2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&snap2, &bytes).unwrap();

        let (_s, recovered) = ChainStore::open(dir.path()).unwrap();
        assert_eq!(recovered.report.base_seq, 1);
        assert_eq!(recovered.report.snapshots_rejected.len(), 1);
        let (tree, _) = rebuild(Sha256dPow, None, &recovered).unwrap();
        assert_eq!(tree.fingerprint(), live.fingerprint());
        // The rejected snapshot was deleted by the repair.
        assert!(!snap2.exists());

        // Damage snapshot 1 too: genesis + full replay from log-0.
        let snap1 = dir.path().join(snapshot_name(1));
        let mut bytes = fs::read(&snap1).unwrap();
        bytes.truncate(bytes.len() / 3);
        fs::write(&snap1, &bytes).unwrap();

        let (_s, recovered) = ChainStore::open(dir.path()).unwrap();
        assert_eq!(recovered.report.base_seq, 0);
        let (tree, _) = rebuild(Sha256dPow, None, &recovered).unwrap();
        assert_eq!(tree.fingerprint(), live.fingerprint());
    }

    #[test]
    fn torn_log_tail_is_truncated_and_appends_continue() {
        let dir = TempDir::new("torn").unwrap();
        let chain = mined_line(6);
        let mut store = ChainStore::create(dir.path()).unwrap();
        for block in &chain[..4] {
            store.append_block(block).unwrap();
        }
        let full_len = store.log_len();
        drop(store);

        // Tear the last record: cut 3 bytes off the file.
        let log0 = dir.path().join(log_name(0));
        let bytes = fs::read(&log0).unwrap();
        fs::write(&log0, &bytes[..bytes.len() - 3]).unwrap();

        let (mut store, recovered) = ChainStore::open(dir.path()).unwrap();
        assert_eq!(recovered.replay.len(), 3);
        assert!(matches!(
            recovered.report.log_fault,
            Some((0, TailFault::TornPayload))
        ));
        assert!(recovered.report.lost_bytes > 0);
        assert!(store.log_len() < full_len);
        // The file was physically truncated; appending continues cleanly.
        store.append_block(&chain[3]).unwrap();
        store.append_block(&chain[4]).unwrap();
        drop(store);
        let (_s, recovered) = ChainStore::open(dir.path()).unwrap();
        assert!(recovered.report.clean());
        assert_eq!(recovered.replay.len(), 5);
    }
}
