//! Warm start under the cost-aware difficulty rule: mine a chain with
//! [`DifficultyRule::CostAware`], snapshot mid-way, append the rest to the
//! segment log, reopen the store cold via [`ChainStore::open`], rebuild
//! the tree, and keep mining — every block mined after the restart must be
//! byte-identical to the never-persisted reference run, and the final
//! trees must share a fingerprint.
//!
//! This pins the property the cost machinery makes non-trivial: the
//! per-entry observed cost ratios that drive the commitment recurrence are
//! *not* serialized (they are a pure function of header bytes), so
//! recovery must re-derive them exactly or the first post-restart template
//! would carry the wrong version word and fork the chain.

use hashcore::Target;
use hashcore_baselines::Sha256dPow;
use hashcore_chain::{
    Block, BlockHeader, CostAwareRetarget, DifficultyRule, EmaRetarget, ForkTree,
};
use hashcore_store::{rebuild, ChainStore, TempDir};

fn cost_rule() -> DifficultyRule {
    DifficultyRule::CostAware(CostAwareRetarget::new(
        EmaRetarget {
            initial: Target::from_leading_zero_bits(2),
            target_block_time: 1_000.0,
            gain: 0.5,
        },
        0.5,
        2.0,
    ))
}

/// Mines the rule-consistent next block on the tree's best tip: expected
/// version word (cost commitment) and target from the branch state, nonce
/// search skipping seeds the admission bound rejects. Deterministic given
/// the tree state, so two trees in the same state mine the same block.
fn mine_next(tree: &mut ForkTree<Sha256dPow>, timestamp: u64) -> Block {
    let parent = tree.tip();
    let version = tree
        .expected_child_version(&parent)
        .expect("cost-aware rules always expect a version");
    let expected = tree
        .expected_child_target(&parent, timestamp)
        .expect("tip is stored");
    let rule = cost_rule();
    let transactions = vec![timestamp.to_le_bytes().to_vec()];
    let mut header = BlockHeader {
        version,
        prev_hash: parent,
        merkle_root: Block::merkle_root(&transactions),
        timestamp,
        target: *expected.threshold(),
        nonce: 0,
    };
    loop {
        let (digest, cost_ratio) = tree.digest_and_cost_of_header(&header);
        if expected.is_met_by(&digest) && rule.admits(expected, &digest, cost_ratio) {
            return Block {
                header,
                transactions,
            };
        }
        header.nonce += 1;
    }
}

#[test]
fn cost_aware_mining_warm_starts_bit_identically() {
    // The never-persisted reference: 12 blocks with uneven gaps, so the
    // targets and cost commitments actually move.
    let gaps = [
        900u64, 2_400, 300, 1_100, 1_000, 1_700, 600, 1_300, 950, 2_000, 450, 1_050,
    ];
    let mut reference = ForkTree::with_rule(Sha256dPow, cost_rule());
    let mut reference_blocks = Vec::new();
    let mut timestamp = 0u64;
    for gap in gaps {
        timestamp += gap;
        let block = mine_next(&mut reference, timestamp);
        reference_blocks.push(block.clone());
        reference.apply(block).expect("reference block is valid");
    }

    // The persisted run mines the same schedule: 4 blocks into the first
    // log, a snapshot, 4 more into the rotated log — then the process
    // "exits" (store and tree dropped).
    let dir = TempDir::new("warm-start-cost").expect("temp dir");
    let mut tree = ForkTree::with_rule(Sha256dPow, cost_rule());
    let mut store = ChainStore::create(dir.path()).expect("create store");
    let mut timestamp = 0u64;
    for (i, gap) in gaps[..8].iter().enumerate() {
        timestamp += *gap;
        let block = mine_next(&mut tree, timestamp);
        store.append_block(&block).expect("append");
        tree.apply(block).expect("mined block is valid");
        if i == 3 {
            store
                .snapshot_now(&tree.snapshot())
                .expect("snapshot commits");
        }
    }
    drop(store);
    drop(tree);

    // Cold reopen: the recovery ladder hands back the snapshot plus the
    // post-snapshot log records, and rebuild() re-applies them — which
    // re-derives every entry's cost ratio from its header bytes.
    let (_store, recovered) = ChainStore::open(dir.path()).expect("reopen");
    assert!(recovered.report.clean(), "clean shutdown, clean recovery");
    assert!(
        recovered.snapshot.is_some(),
        "the mid-run snapshot is the recovery base"
    );
    let (mut warm, skipped) =
        rebuild(Sha256dPow, Some(cost_rule()), &recovered).expect("rebuild succeeds");
    assert_eq!(skipped, 0, "every logged block re-applies cleanly");
    assert_eq!(warm.tip(), {
        let mut check = ForkTree::with_rule(Sha256dPow, cost_rule());
        for block in &reference_blocks[..8] {
            check.apply(block.clone()).expect("prefix re-applies");
        }
        check.tip()
    });

    // Continue mining on the warm-started tree: blocks 9..=12 must be
    // byte-identical to the reference run's — same version words, same
    // targets, same nonces — because the recovered branch state (cost
    // commitments included) is exact.
    for (block, gap) in reference_blocks[8..].iter().zip(&gaps[8..]) {
        timestamp += *gap;
        let mined = mine_next(&mut warm, timestamp);
        assert_eq!(
            mined, *block,
            "post-restart mining must replay the never-crashed run"
        );
        warm.apply(mined).expect("continued block is valid");
    }
    assert_eq!(
        warm.fingerprint(),
        reference.fingerprint(),
        "warm-started and never-persisted trees are indistinguishable"
    );
    assert_eq!(warm.tip(), reference.tip());
    assert_eq!(warm.tip_height(), 12);
    assert!(warm.validate_best_chain().is_ok());
}
