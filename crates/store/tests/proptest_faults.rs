//! Crash-consistency proofs for the persistent chain store.
//!
//! The contract under test: **whatever prefix of the write stream reached
//! the disk, recovery rebuilds a tree whose `fingerprint()` equals the
//! reference tree built from that durably-committed prefix.** Faults are
//! injected at every byte offset of a small store (exhaustively) and at
//! proptest-sampled offsets of larger, branchier stores: torn log tails,
//! truncated files, bit-flipped records, corrupt or missing snapshots, and
//! partially written snapshot tmp files.

use hashcore::Target;
use hashcore_baselines::{PowFunction, Sha256dPow};
use hashcore_chain::{Block, BlockHeader, ForkTree, TreeSnapshot, GENESIS_HASH};
use hashcore_crypto::Digest256;
use hashcore_store::{rebuild, ChainStore, TempDir};
use proptest::prelude::*;
use std::fs;
use std::path::Path;

/// Mines a child of `prev` tagged by `tag` at two leading-zero bits.
fn mine_child(prev: Digest256, tag: &str) -> Block {
    let txs = vec![tag.as_bytes().to_vec()];
    let target = Target::from_leading_zero_bits(2);
    let mut header = BlockHeader {
        version: 1,
        prev_hash: prev,
        merkle_root: Block::merkle_root(&txs),
        timestamp: 0,
        target: *target.threshold(),
        nonce: 0,
    };
    while !target.is_met_by(&Sha256dPow.pow_hash(&header.bytes())) {
        header.nonce += 1;
    }
    Block {
        header,
        transactions: txs,
    }
}

fn digest(block: &Block) -> Digest256 {
    Sha256dPow.pow_hash(&block.header.bytes())
}

/// Builds a block tree: entry `i` extends the block chosen by
/// `parent_picks[i]` among genesis and the blocks built so far.
fn build_blocks(parent_picks: &[usize]) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut digests = vec![GENESIS_HASH];
    for (i, pick) in parent_picks.iter().enumerate() {
        let prev = digests[pick % digests.len()];
        let block = mine_child(prev, &format!("block-{i}"));
        digests.push(digest(&block));
        blocks.push(block);
    }
    blocks
}

/// Everything a run of the store wrote, remembered in memory so tests can
/// compute the expected recovery outcome for any injected fault without
/// consulting the (damaged) disk.
struct Journal {
    /// `snapshots[s - 1]` is the snapshot committed with sequence `s`.
    snapshots: Vec<TreeSnapshot>,
    /// `logs[s]` is every block appended to `log-<s>.log`, in order.
    logs: Vec<Vec<Block>>,
    /// Live tree at the end of the run (the undamaged reference).
    final_fingerprint: Digest256,
}

/// Drives a real `ChainStore` through `blocks`, snapshotting after the
/// block indices in `snapshot_after`, and journals what was written.
fn run_store(dir: &Path, blocks: &[Block], snapshot_after: &[usize]) -> Journal {
    let mut store = ChainStore::create(dir).unwrap();
    let mut tree = ForkTree::new(Sha256dPow);
    let mut journal = Journal {
        snapshots: Vec::new(),
        logs: vec![Vec::new()],
        final_fingerprint: [0; 32],
    };
    for (i, block) in blocks.iter().enumerate() {
        tree.apply(block.clone()).expect("mined block applies");
        store.append_block(block).unwrap();
        journal.logs.last_mut().unwrap().push(block.clone());
        if snapshot_after.contains(&i) {
            let snap = tree.snapshot();
            store.snapshot_now(&snap).unwrap();
            journal.snapshots.push(snap);
            journal.logs.push(Vec::new());
        }
    }
    journal.final_fingerprint = tree.fingerprint();
    journal
}

/// Byte offsets at which each committed record of a log ends, computed
/// from the journal (not the disk): `8 + payload_len` per frame.
fn record_ends(blocks: &[Block]) -> Vec<u64> {
    let mut ends = Vec::new();
    let mut pos = 0u64;
    for block in blocks {
        let mut payload = Vec::new();
        hashcore_store::codec::encode_block(block, &mut payload);
        pos += 8 + payload.len() as u64;
        ends.push(pos);
    }
    ends
}

/// The reference fingerprint for a recovery that based on snapshot
/// `base_seq` (0 = genesis) and replayed, per log sequence, the given
/// number of committed records — everything recovery is *supposed* to see.
fn reference_fingerprint(journal: &Journal, base_seq: u64, records_per_log: &[usize]) -> Digest256 {
    let mut tree = match base_seq {
        0 => ForkTree::new(Sha256dPow),
        s => ForkTree::from_snapshot(Sha256dPow, &journal.snapshots[s as usize - 1])
            .expect("journal snapshot restores"),
    };
    for (seq, &count) in records_per_log.iter().enumerate() {
        if (seq as u64) < base_seq {
            continue;
        }
        for block in &journal.logs[seq][..count] {
            // Replay mirrors `rebuild`: skips (e.g. already-known) allowed.
            let _ = tree.apply(block.clone());
        }
    }
    tree.fingerprint()
}

/// Recovery outcome for a pristine copy of the store: every record of
/// every log on top of the newest snapshot.
fn full_recovery_plan(journal: &Journal) -> (u64, Vec<usize>) {
    (
        journal.snapshots.len() as u64,
        journal.logs.iter().map(Vec::len).collect(),
    )
}

/// Copies every regular file of `src` into `dst`.
fn copy_dir(src: &Path, dst: &Path) {
    for entry in fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        fs::copy(&path, dst.join(path.file_name().unwrap())).unwrap();
    }
}

/// Opens the (possibly damaged) store, rebuilds the tree, and asserts the
/// fingerprint matches `expected`.
fn assert_recovers_to(dir: &Path, expected: Digest256, context: &str) {
    let (_store, recovered) = ChainStore::open(dir).expect("open never fails on corruption");
    let (tree, _skipped) = rebuild(Sha256dPow, None, &recovered).expect("rebuild succeeds");
    assert_eq!(tree.fingerprint(), expected, "mismatch: {context}");
}

/// Expected recovery after damaging one byte region of one file.
fn expected_after_damage(journal: &Journal, file: &str, record_prefix: Option<usize>) -> Digest256 {
    let (mut base_seq, mut records) = full_recovery_plan(journal);
    if let Some(seq) = file
        .strip_prefix("snapshot-")
        .and_then(|s| s.strip_suffix(".snap"))
        .map(|s| s.parse::<u64>().unwrap())
    {
        if seq == base_seq {
            // Newest snapshot damaged: ladder steps down one rung (or to
            // genesis) and replays the extra log.
            base_seq -= 1;
        }
        // Older snapshots are not consulted; damage is invisible.
    } else if let Some(seq) = file
        .strip_prefix("log-")
        .and_then(|s| s.strip_suffix(".log"))
        .map(|s| s.parse::<u64>().unwrap())
    {
        if seq >= base_seq {
            // Prefix semantics: the damaged log replays its intact
            // prefix, every later log is dropped.
            records[seq as usize] = record_prefix.unwrap_or(0);
            for r in records.iter_mut().skip(seq as usize + 1) {
                *r = 0;
            }
        }
        // Logs below the base are never replayed; damage is invisible.
    }
    reference_fingerprint(journal, base_seq, &records)
}

/// Number of records of `blocks` whose frames end at or before `offset`.
fn committed_before(blocks: &[Block], offset: u64) -> usize {
    record_ends(blocks)
        .iter()
        .take_while(|&&end| end <= offset)
        .count()
}

#[test]
fn every_byte_offset_fault_recovers_the_committed_prefix() {
    // A short linear chain with two mid-run snapshots: log-0 holds 3
    // records, log-1 two, log-2 one; snapshots 1 and 2 exist.
    let picks: Vec<usize> = (0..6).collect(); // linear
    let blocks = build_blocks(&picks);
    let pristine = TempDir::new("exhaustive-pristine").unwrap();
    let journal = run_store(pristine.path(), &blocks, &[2, 4]);

    // Sanity: the undamaged store recovers the live tree byte-identically.
    {
        let scratch = TempDir::new("exhaustive-clean").unwrap();
        copy_dir(pristine.path(), scratch.path());
        assert_recovers_to(scratch.path(), journal.final_fingerprint, "clean");
    }

    let files: Vec<String> = fs::read_dir(pristine.path())
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();

    for file in &files {
        let original = fs::read(pristine.path().join(file)).unwrap();

        // Torn write: truncate the file at every byte offset.
        for cut in 0..original.len() {
            let scratch = TempDir::new("exhaustive-cut").unwrap();
            copy_dir(pristine.path(), scratch.path());
            fs::write(scratch.path().join(file), &original[..cut]).unwrap();
            let prefix = file
                .strip_prefix("log-")
                .and_then(|s| s.strip_suffix(".log"))
                .map(|s| s.parse::<u64>().unwrap())
                .map(|seq| committed_before(&journal.logs[seq as usize], cut as u64));
            let expected = expected_after_damage(&journal, file, prefix);
            assert_recovers_to(scratch.path(), expected, &format!("{file} cut at {cut}"));
        }

        // Bit rot: flip one bit at every byte offset.
        for at in 0..original.len() {
            let scratch = TempDir::new("exhaustive-flip").unwrap();
            copy_dir(pristine.path(), scratch.path());
            let mut bytes = original.clone();
            bytes[at] ^= 0x01;
            fs::write(scratch.path().join(file), &bytes).unwrap();
            let prefix = file
                .strip_prefix("log-")
                .and_then(|s| s.strip_suffix(".log"))
                .map(|s| s.parse::<u64>().unwrap())
                .map(|seq| committed_before(&journal.logs[seq as usize], at as u64));
            let expected = expected_after_damage(&journal, file, prefix);
            assert_recovers_to(scratch.path(), expected, &format!("{file} flip at {at}"));
        }

        // Missing file: delete it outright (the 0-byte truncation above
        // already covers "empty", this covers "gone").
        let scratch = TempDir::new("exhaustive-missing").unwrap();
        copy_dir(pristine.path(), scratch.path());
        fs::remove_file(scratch.path().join(file)).unwrap();
        let expected = expected_after_damage(&journal, file, Some(0));
        assert_recovers_to(scratch.path(), expected, &format!("{file} missing"));
    }
}

#[test]
fn a_partial_snapshot_tmp_is_swept_and_ignored() {
    let blocks = build_blocks(&[0, 1, 2, 3]);
    let dir = TempDir::new("tmp-orphan").unwrap();
    let journal = run_store(dir.path(), &blocks, &[1]);
    // Simulate a crash mid-`write_atomic`: a half-written tmp that never
    // got renamed, at every truncation point of a plausible image.
    let image = fs::read(dir.path().join("snapshot-1.snap")).unwrap();
    for cut in [0, 1, image.len() / 2, image.len()] {
        let scratch = TempDir::new("tmp-orphan-case").unwrap();
        copy_dir(dir.path(), scratch.path());
        fs::write(scratch.path().join("snapshot-2.tmp"), &image[..cut]).unwrap();
        let (_store, recovered) = ChainStore::open(scratch.path()).unwrap();
        assert_eq!(recovered.report.tmp_swept, 1);
        assert_eq!(recovered.report.base_seq, 1);
        let (tree, _) = rebuild(Sha256dPow, None, &recovered).unwrap();
        assert_eq!(tree.fingerprint(), journal.final_fingerprint);
        assert!(!scratch.path().join("snapshot-2.tmp").exists());
    }
}

#[test]
fn a_pruned_tree_persists_and_recovers_identically() {
    let blocks = build_blocks(&(0..10).collect::<Vec<_>>());
    let dir = TempDir::new("pruned").unwrap();
    let mut store = ChainStore::create(dir.path()).unwrap();
    let mut tree = ForkTree::new(Sha256dPow);
    for block in &blocks {
        tree.apply(block.clone()).unwrap();
        store.append_block(block).unwrap();
    }
    assert!(tree.prune(4) > 0);
    store.snapshot_now(&tree.snapshot()).unwrap();
    // Two more blocks on the pruned tree, logged after the snapshot.
    let mut tip = tree.tip();
    for i in 0..2 {
        let block = mine_child(tip, &format!("post-prune-{i}"));
        tip = digest(&block);
        tree.apply(block.clone()).unwrap();
        store.append_block(&block).unwrap();
    }
    drop(store);

    let (_store, recovered) = ChainStore::open(dir.path()).unwrap();
    assert!(recovered.report.clean());
    let (restored, skipped) = rebuild(Sha256dPow, None, &recovered).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(restored.fingerprint(), tree.fingerprint());
    assert_eq!(restored.root(), tree.root());
    assert_eq!(restored.root_height(), tree.root_height());
    assert_eq!(restored.locator(), tree.locator());
    // Pruned-history requests answer identically after the round trip.
    let below = vec![digest(&blocks[0]), GENESIS_HASH];
    assert_eq!(
        tree.segment_to(tree.tip(), &below).unwrap_err(),
        restored.segment_to(restored.tip(), &below).unwrap_err(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any branchy block set, snapshot schedule and crash offset into
    /// the active log, recovery equals the reference built from the
    /// committed prefix.
    #[test]
    fn torn_active_log_recovers_committed_prefix(
        parent_picks in prop::collection::vec(0usize..32, 4..16),
        snapshot_every in 2usize..6,
        cut_pct in 0u64..101,
    ) {
        let blocks = build_blocks(&parent_picks);
        let snapshot_after: Vec<usize> =
            (0..blocks.len()).filter(|i| i % snapshot_every == snapshot_every - 1).collect();
        let dir = TempDir::new("prop-torn").unwrap();
        let journal = run_store(dir.path(), &blocks, &snapshot_after);

        let active_seq = journal.snapshots.len();
        let log_name = format!("log-{active_seq}.log");
        let original = fs::read(dir.path().join(&log_name)).unwrap();
        let cut = (original.len() as u64 * cut_pct / 100) as usize;
        fs::write(dir.path().join(&log_name), &original[..cut]).unwrap();

        let prefix = committed_before(&journal.logs[active_seq], cut as u64);
        let expected = expected_after_damage(&journal, &log_name, Some(prefix));
        assert_recovers_to(dir.path(), expected, &format!("torn at {cut}/{}", original.len()));
    }

    /// For any single-byte corruption anywhere in the store, recovery
    /// still equals the reference for the surviving prefix — and never
    /// panics or errors.
    #[test]
    fn any_single_byte_corruption_recovers_a_reference_prefix(
        parent_picks in prop::collection::vec(0usize..32, 4..16),
        snapshot_every in 2usize..6,
        file_pick in 0usize..1 << 16,
        at_pick in 0usize..1 << 16,
        flip in 1u8..255,
    ) {
        let blocks = build_blocks(&parent_picks);
        let snapshot_after: Vec<usize> =
            (0..blocks.len()).filter(|i| i % snapshot_every == snapshot_every - 1).collect();
        let dir = TempDir::new("prop-flip").unwrap();
        let journal = run_store(dir.path(), &blocks, &snapshot_after);

        let mut files: Vec<String> = fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        files.sort();
        let file = files[file_pick % files.len()].clone();
        let mut bytes = fs::read(dir.path().join(&file)).unwrap();
        prop_assume!(!bytes.is_empty());
        let at = at_pick % bytes.len();
        bytes[at] ^= flip;
        fs::write(dir.path().join(&file), &bytes).unwrap();

        let prefix = file
            .strip_prefix("log-")
            .and_then(|s| s.strip_suffix(".log"))
            .map(|s| s.parse::<u64>().unwrap())
            .map(|seq| committed_before(&journal.logs[seq as usize], at as u64));
        let expected = expected_after_damage(&journal, &file, prefix);
        assert_recovers_to(dir.path(), expected, &format!("{file} flip at {at}"));
    }
}
