//! Prepared execution: validate-once, pre-decoded programs plus reusable
//! execution state.
//!
//! The naive [`crate::Executor::execute`] path pays per-run costs that the
//! mining hot loop (hash → generate → execute → hash, once per nonce) cannot
//! afford: it re-validates the program, re-derives the block-major pc
//! layout, allocates and re-seeds a fresh [`MachineState`], and allocates
//! fresh output/trace buffers. [`PreparedProgram`] and [`ExecScratch`] split
//! those costs out:
//!
//! * [`PreparedProgram`] validates the program once and flattens its blocks
//!   into a block-major slot array in which the array index *is* the static
//!   program counter and every terminator's successor is resolved to the
//!   target's slot index — the dispatch loop never chases
//!   `BlockId → block → instruction iterator` indirection again;
//! * [`ExecScratch`] owns the machine state and the output/trace buffers and
//!   is re-seeded in place, so repeated executions perform no heap
//!   allocation once the buffers have grown to their steady-state sizes.
//!
//! [`crate::Executor::execute_prepared`] is the entry point; the classic
//! [`crate::Executor::execute`] is a thin wrapper that prepares, runs and
//! moves the scratch buffers into an owned [`crate::Execution`]. Both paths
//! retire the identical instruction sequence and therefore produce
//! byte-identical output, traces and statistics (asserted by the
//! equivalence tests in `tests/proptest_executor.rs`).

use crate::state::MachineState;
use hashcore_isa::{BlockId, BranchCond, Instruction, IntReg, Program, Terminator, ValidateError};

/// One pre-decoded slot of a [`PreparedProgram`].
///
/// The slot array is block-major — each block contributes its body
/// instructions followed by one terminator slot — so a slot's index equals
/// the static program counter the naive executor would assign it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Slot {
    /// A straight-line body instruction.
    Inst(Instruction),
    /// An unconditional jump, resolved to the target block's first slot.
    Jump {
        /// Slot index (= static pc) of the target block's first slot.
        target: u32,
    },
    /// A conditional branch with both successors resolved.
    Branch {
        /// Comparison applied to the two source registers.
        cond: BranchCond,
        /// First comparison operand.
        src1: IntReg,
        /// Second comparison operand.
        src2: IntReg,
        /// Slot index of the successor when the condition holds.
        taken: u32,
        /// Slot index of the successor when the condition does not hold.
        not_taken: u32,
    },
    /// Terminates execution.
    Halt,
}

/// A validated, pre-decoded widget program ready for repeated execution.
///
/// Construction runs [`Program::validate`] exactly once; afterwards the
/// interpreter dispatch loop indexes straight into the flattened slot
/// array. Reuse one value across runs via [`PreparedProgram::prepare`] to
/// keep the slot buffer's allocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PreparedProgram {
    pub(crate) slots: Vec<Slot>,
    pub(crate) entry_pc: u32,
    pub(crate) memory_size: usize,
    block_count: usize,
    /// Reused by [`PreparedProgram::prepare`] so re-preparation is
    /// allocation-free at steady state.
    block_starts_buf: Vec<u32>,
}

impl PreparedProgram {
    /// Validates and pre-decodes `program`.
    ///
    /// # Errors
    ///
    /// Returns the [`ValidateError`] of [`Program::validate`] when the
    /// program is structurally invalid.
    pub fn new(program: &Program) -> Result<Self, ValidateError> {
        let mut prepared = Self::default();
        prepared.prepare(program)?;
        Ok(prepared)
    }

    /// Re-prepares `self` from `program` in place, reusing the slot buffer.
    ///
    /// This is the zero-allocation path for the mining loop, where every
    /// nonce produces a fresh widget of roughly the same size: once the
    /// buffer has grown to the steady-state program size, preparation
    /// performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns the [`ValidateError`] of [`Program::validate`] when the
    /// program is structurally invalid; `self` is left unspecified but safe
    /// to reuse.
    pub fn prepare(&mut self, program: &Program) -> Result<(), ValidateError> {
        program.validate()?;

        self.slots.clear();
        let blocks = program.blocks();

        // First pass: compute the slot index of every block's first slot.
        let mut next = 0u32;
        let mut block_starts = std::mem::take(&mut self.block_starts_buf);
        block_starts.clear();
        block_starts.reserve(blocks.len());
        for block in blocks {
            block_starts.push(next);
            next += block.instructions.len() as u32 + 1;
        }

        // Second pass: emit body instructions and resolved terminators.
        self.slots.reserve(next as usize);
        let resolve = |id: BlockId| block_starts[id.index()];
        for block in blocks {
            for inst in &block.instructions {
                self.slots.push(Slot::Inst(*inst));
            }
            self.slots.push(match block.terminator {
                Terminator::Halt => Slot::Halt,
                Terminator::Jump(target) => Slot::Jump {
                    target: resolve(target),
                },
                Terminator::Branch {
                    cond,
                    src1,
                    src2,
                    taken,
                    not_taken,
                } => Slot::Branch {
                    cond,
                    src1,
                    src2,
                    taken: resolve(taken),
                    not_taken: resolve(not_taken),
                },
            });
        }

        self.entry_pc = block_starts[program.entry().index()];
        self.memory_size = program.memory_size();
        self.block_count = blocks.len();
        self.block_starts_buf = block_starts;
        Ok(())
    }

    /// Size of the program's data segment in bytes.
    pub fn memory_size(&self) -> usize {
        self.memory_size
    }

    /// Number of basic blocks in the source program.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// Total number of static pc slots (equals
    /// [`Program::pc_slot_count`] of the source program).
    pub fn pc_slot_count(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Pre-sizes the slot array for programs of up to `slots` pc slots and
    /// `blocks` blocks, so a caller with a worst-case bound pays all growth
    /// up front instead of on whichever program first hits the maximum.
    pub fn prime(&mut self, slots: usize, blocks: usize) {
        if self.slots.capacity() < slots {
            self.slots.reserve_exact(slots - self.slots.len());
        }
        if self.block_starts_buf.capacity() < blocks {
            self.block_starts_buf
                .reserve_exact(blocks - self.block_starts_buf.len());
        }
    }
}

/// Reusable execution state: the machine state plus output and trace
/// buffers.
///
/// A scratch is the per-worker unit of parallel mining: each mining thread
/// owns one and re-seeds it for every nonce, so the whole hash evaluation
/// allocates nothing once buffers reach steady state.
#[derive(Debug, Clone)]
pub struct ExecScratch {
    pub(crate) state: MachineState,
    pub(crate) output: Vec<u8>,
    pub(crate) trace: crate::trace::Trace,
}

impl Default for ExecScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            state: MachineState::new(8),
            output: Vec::new(),
            trace: crate::trace::Trace::new(),
        }
    }

    /// The widget output bytes of the most recent execution.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// The dynamic trace of the most recent execution (empty unless the
    /// executor was configured with `collect_trace`).
    pub fn trace(&self) -> &crate::trace::Trace {
        &self.trace
    }

    /// The architectural state at halt of the most recent execution.
    pub fn final_state(&self) -> &MachineState {
        &self.state
    }

    /// Pre-sizes the machine memory and output buffer, so a caller that
    /// knows upper bounds over every program it will run (the widget
    /// generator's noise caps bound both) pays all growth up front instead
    /// of on whichever run first hits the maximum.
    pub fn prime(&mut self, memory_size: usize, output_bytes: usize) {
        self.state.reset(memory_size.max(8).next_power_of_two());
        if self.output.capacity() < output_bytes {
            self.output.reserve_exact(output_bytes - self.output.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecConfig, Executor};
    use hashcore_isa::{IntAluOp, ProgramBuilder, Terminator};

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new(256);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 1);
        b.load_imm(IntReg(1), 2);
        let second = b.reserve_block();
        b.terminate(Terminator::Jump(second));
        b.begin_reserved(second);
        b.int_alu(IntAluOp::Add, IntReg(2), IntReg(0), IntReg(1));
        b.snapshot();
        b.terminate(Terminator::Halt);
        b.finish(entry)
    }

    #[test]
    fn slot_indices_equal_the_block_major_pc_layout() {
        let program = two_block_program();
        let prepared = PreparedProgram::new(&program).expect("validates");
        // Block 0: two instructions at pc 0,1 and the jump at pc 2;
        // block 1 starts at pc 3 with two instructions and halt at pc 5.
        assert_eq!(prepared.pc_slot_count(), program.pc_slot_count());
        assert_eq!(prepared.entry_pc, 0);
        assert_eq!(prepared.block_count(), 2);
        assert_eq!(prepared.memory_size(), 256);
        assert!(matches!(prepared.slots[2], Slot::Jump { target: 3 }));
        assert!(matches!(prepared.slots[5], Slot::Halt));
    }

    #[test]
    fn invalid_programs_are_rejected_once_at_preparation() {
        let invalid = Program::new(Vec::new(), BlockId(0), 64);
        assert!(PreparedProgram::new(&invalid).is_err());
        // A failed re-preparation leaves the value safe to reuse.
        let valid = two_block_program();
        let mut prepared = PreparedProgram::new(&valid).expect("validates");
        assert!(prepared.prepare(&invalid).is_err());
        prepared.prepare(&valid).expect("validates again");
        let mut scratch = ExecScratch::new();
        let stats = Executor::new(ExecConfig::default())
            .execute_prepared(&prepared, &mut scratch)
            .expect("executes");
        assert_eq!(stats.snapshot_count, 1);
        assert_eq!(scratch.final_state().int_regs[2], 3);
    }

    #[test]
    fn preparing_a_smaller_program_reuses_the_slot_buffer() {
        let program = two_block_program();
        let mut prepared = PreparedProgram::new(&program).expect("validates");
        let capacity = prepared.slots.capacity();

        let mut b = ProgramBuilder::new(64);
        let entry = b.begin_block();
        b.snapshot();
        b.terminate(Terminator::Halt);
        let tiny = b.finish(entry);

        prepared.prepare(&tiny).expect("validates");
        assert_eq!(prepared.pc_slot_count(), 2);
        assert_eq!(prepared.memory_size(), 64);
        assert!(prepared.slots.capacity() >= capacity, "capacity retained");
    }
}
