//! # hashcore-vm
//!
//! The functional executor for HashCore widget programs.
//!
//! In the paper, a widget is a gcc-compiled x86 binary whose output is "a
//! series of snapshots of the computer's register contents captured every few
//! thousand instructions" (Section V). In this reproduction widgets are
//! programs in the portable `hashcore-isa` instruction set and this crate is
//! the machine that runs them:
//!
//! * [`Executor`] executes a validated [`hashcore_isa::Program`]
//!   deterministically, producing the widget's **output byte string** (the
//!   register-snapshot stream that is concatenated with the hash seed and
//!   fed to the second hash gate),
//! * [`PreparedProgram`] and [`ExecScratch`] provide the **zero-allocation
//!   hot path** ([`Executor::execute_prepared`]): validate once, pre-decode
//!   the program into a block-major slot array, and reuse machine state and
//!   output/trace buffers across runs — the unit of parallel mining fan-out,
//! * it simultaneously records a **dynamic trace** ([`Trace`]) of every
//!   retired instruction, which `hashcore-sim` replays through its
//!   micro-architecture model to measure IPC and branch-prediction
//!   behaviour (Figures 2 and 3),
//! * execution is bounded by [`ExecConfig::max_steps`], so malformed or
//!   adversarial programs cannot spin a verifier forever.
//!
//! The executor is a pure function of the program, the memory seed, and the
//! configuration, which is what makes HashCore verifiable: every node that
//! re-executes the widget obtains the identical output bytes.
//!
//! # Examples
//!
//! ```
//! use hashcore_isa::{ProgramBuilder, IntReg, IntAluOp, Terminator};
//! use hashcore_vm::{ExecConfig, Executor};
//!
//! let mut b = ProgramBuilder::new(256);
//! let entry = b.begin_block();
//! b.load_imm(IntReg(0), 20);
//! b.load_imm(IntReg(1), 22);
//! b.int_alu(IntAluOp::Add, IntReg(2), IntReg(0), IntReg(1));
//! b.snapshot();
//! b.terminate(Terminator::Halt);
//! let program = b.finish(entry);
//!
//! let execution = Executor::new(ExecConfig::default()).execute(&program)?;
//! assert_eq!(execution.final_state.int_regs[2], 42);
//! assert!(!execution.output.is_empty());
//! # Ok::<(), hashcore_vm::ExecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod prepared;
mod state;
mod trace;

pub use exec::{ExecConfig, ExecError, ExecStats, Execution, Executor};
pub use prepared::{ExecScratch, PreparedProgram};
pub use state::{MachineState, SNAPSHOT_BYTES};
pub use trace::{BranchRecord, Trace, TraceEntry};
