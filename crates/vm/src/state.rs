//! Architectural machine state.

use hashcore_isa::{NUM_FP_REGS, NUM_INT_REGS, NUM_VEC_REGS, VEC_LANES};

/// Number of bytes one register snapshot contributes to the widget output:
/// all integer registers, all floating-point registers (as IEEE-754 bit
/// patterns) and all vector registers, each 8 bytes per 64-bit value.
pub const SNAPSHOT_BYTES: usize = (NUM_INT_REGS + NUM_FP_REGS + NUM_VEC_REGS * VEC_LANES) * 8;

/// The architectural state of the widget machine.
///
/// Memory is a private byte array of power-of-two size; addresses wrap, so
/// every access is in bounds by construction (there are no memory faults in
/// the widget ISA — a PoW function must never crash its verifier).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineState {
    /// 64-bit integer registers.
    pub int_regs: [u64; NUM_INT_REGS],
    /// Double-precision floating-point registers.
    pub fp_regs: [f64; NUM_FP_REGS],
    /// Vector registers (4 × 64-bit lanes each).
    pub vec_regs: [[u64; VEC_LANES]; NUM_VEC_REGS],
    memory: Vec<u8>,
    memory_mask: u64,
}

impl MachineState {
    /// Creates a zeroed machine with `memory_size` bytes of memory.
    ///
    /// # Panics
    ///
    /// Panics if `memory_size` is not a power of two of at least 8 bytes
    /// (validated programs always carry such a size).
    pub fn new(memory_size: usize) -> Self {
        assert!(
            memory_size.is_power_of_two() && memory_size >= 8,
            "memory size must be a power of two of at least 8 bytes"
        );
        Self {
            int_regs: [0; NUM_INT_REGS],
            fp_regs: [0.0; NUM_FP_REGS],
            vec_regs: [[0; VEC_LANES]; NUM_VEC_REGS],
            memory: vec![0; memory_size],
            memory_mask: (memory_size - 1) as u64,
        }
    }

    /// Re-sizes the machine for a program with `memory_size` bytes of
    /// memory, reusing the existing allocation when possible.
    ///
    /// Register and memory *contents* are unspecified afterwards; callers
    /// follow up with [`MachineState::seed`], which overwrites every
    /// register and every memory byte. This is the in-place equivalent of
    /// [`MachineState::new`] used by the reusable-scratch execution path.
    ///
    /// # Panics
    ///
    /// Panics if `memory_size` is not a power of two of at least 8 bytes.
    pub fn reset(&mut self, memory_size: usize) {
        assert!(
            memory_size.is_power_of_two() && memory_size >= 8,
            "memory size must be a power of two of at least 8 bytes"
        );
        if self.memory.len() != memory_size {
            self.memory.resize(memory_size, 0);
            self.memory_mask = (memory_size - 1) as u64;
        }
    }

    /// Deterministically fills memory and registers from `seed` using a
    /// splitmix64 stream.
    ///
    /// The paper's widgets begin from the state the generated C program sets
    /// up; here the memory seed from Table I plays that role, so two widgets
    /// with different memory seeds traverse different data even if their code
    /// were identical.
    pub fn seed(&mut self, seed: u64) {
        let mut s = Splitmix64::new(seed);
        for chunk in self.memory.chunks_mut(8) {
            let v = s.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        for r in self.int_regs.iter_mut() {
            *r = s.next();
        }
        for f in self.fp_regs.iter_mut() {
            // Start from small, finite values so FP chains stay numerically
            // interesting instead of saturating to infinity.
            *f = (s.next() % 4096) as f64 / 64.0 + 1.0;
        }
        for v in self.vec_regs.iter_mut() {
            for lane in v.iter_mut() {
                *lane = s.next();
            }
        }
    }

    /// Size of the memory in bytes.
    pub fn memory_size(&self) -> usize {
        self.memory.len()
    }

    /// Wraps an address into the memory and aligns it down to 8 bytes.
    pub fn wrap_addr(&self, addr: u64) -> u64 {
        addr & self.memory_mask & !7u64
    }

    /// Loads a 64-bit little-endian value from the (wrapped, aligned)
    /// address.
    pub fn load64(&self, addr: u64) -> u64 {
        let a = self.wrap_addr(addr) as usize;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.memory[a..a + 8]);
        u64::from_le_bytes(bytes)
    }

    /// Stores a 64-bit little-endian value at the (wrapped, aligned)
    /// address.
    pub fn store64(&mut self, addr: u64, value: u64) {
        let a = self.wrap_addr(addr) as usize;
        self.memory[a..a + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Serialises the register file into `out` as one snapshot record.
    ///
    /// The three register files are written as whole little-endian slabs
    /// through a fixed-size stack buffer and appended with a single
    /// `extend_from_slice`, instead of one `Vec` append per register. The
    /// chunked `to_le_bytes` copies compile to straight word moves on
    /// little-endian targets, so the snapshot cost is one `memcpy` of
    /// [`SNAPSHOT_BYTES`] — snapshots are the dominant output cost of
    /// snapshot-heavy widgets. The byte layout is unchanged: integer
    /// registers, FP registers as IEEE-754 bit patterns, then vector lanes,
    /// each as 8 little-endian bytes.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        let mut slab = [0u8; SNAPSHOT_BYTES];
        let (ints, rest) = slab.split_at_mut(NUM_INT_REGS * 8);
        let (fps, vecs) = rest.split_at_mut(NUM_FP_REGS * 8);
        for (chunk, r) in ints.chunks_exact_mut(8).zip(&self.int_regs) {
            chunk.copy_from_slice(&r.to_le_bytes());
        }
        for (chunk, f) in fps.chunks_exact_mut(8).zip(&self.fp_regs) {
            chunk.copy_from_slice(&f.to_bits().to_le_bytes());
        }
        for (chunk, lane) in vecs.chunks_exact_mut(8).zip(self.vec_regs.iter().flatten()) {
            chunk.copy_from_slice(&lane.to_le_bytes());
        }
        out.extend_from_slice(&slab);
    }
}

/// The splitmix64 generator, used only for deterministic state seeding.
#[derive(Debug, Clone)]
pub(crate) struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_size_matches_constant() {
        let state = MachineState::new(64);
        let mut out = Vec::new();
        state.write_snapshot(&mut out);
        assert_eq!(out.len(), SNAPSHOT_BYTES);
    }

    /// The pre-slab serialisation path, kept as the reference for the
    /// byte-for-byte equivalence test below.
    fn write_snapshot_reference(state: &MachineState, out: &mut Vec<u8>) {
        for r in &state.int_regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for f in &state.fp_regs {
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        for v in &state.vec_regs {
            for lane in v {
                out.extend_from_slice(&lane.to_le_bytes());
            }
        }
    }

    #[test]
    fn slab_snapshot_is_byte_identical_to_per_register_path() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut state = MachineState::new(256);
            state.seed(seed);
            // Exercise non-trivial FP bit patterns (negative zero survives
            // serialisation as its own bit pattern).
            state.fp_regs[3] = -0.0;
            state.fp_regs[5] = f64::MAX;
            let mut slab = Vec::new();
            let mut reference = Vec::new();
            state.write_snapshot(&mut slab);
            write_snapshot_reference(&state, &mut reference);
            assert_eq!(slab, reference, "seed {seed}");
            assert_eq!(slab.len(), SNAPSHOT_BYTES);
        }
    }

    #[test]
    fn memory_wraps_and_aligns() {
        let mut state = MachineState::new(64);
        state.store64(7, 0xdead_beef);
        // Address 7 aligns down to 0.
        assert_eq!(state.load64(0), 0xdead_beef);
        // Address 64 + 3 wraps to 0.
        assert_eq!(state.load64(67), 0xdead_beef);
        assert_eq!(state.wrap_addr(63), 56);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = MachineState::new(256);
        let mut b = MachineState::new(256);
        let mut c = MachineState::new(256);
        a.seed(42);
        b.seed(42);
        c.seed(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // FP registers must start finite.
        assert!(a.fp_regs.iter().all(|f| f.is_finite()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_memory_panics() {
        MachineState::new(100);
    }

    #[test]
    fn splitmix_known_sequence_is_stable() {
        let mut s = Splitmix64::new(0);
        let first = s.next();
        let second = s.next();
        assert_ne!(first, second);
        let mut s2 = Splitmix64::new(0);
        assert_eq!(s2.next(), first);
        assert_eq!(s2.next(), second);
    }
}
