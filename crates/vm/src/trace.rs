//! Dynamic execution traces.
//!
//! The micro-architecture simulator (`hashcore-sim`) does not re-execute
//! widgets; it replays the trace the functional executor recorded. This
//! mirrors the standard trace-driven simulation methodology the PerfProx
//! work itself uses and keeps the performance model independent of the
//! functional semantics.

use hashcore_isa::OpClass;

/// Outcome of one dynamic conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchRecord {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The static program counter of the branch target that was followed.
    pub target_pc: u32,
}

/// One retired instruction in program order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Static program counter (unique per static instruction, block-major).
    pub pc: u32,
    /// Resource class of the instruction.
    pub class: OpClass,
    /// Effective (wrapped, aligned) memory address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Branch outcome for conditional terminators.
    pub branch: Option<BranchRecord>,
}

/// A dynamic trace: the sequence of retired instructions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// Removes all entries, retaining the allocation (the reusable-scratch
    /// execution path clears the trace between runs).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The recorded entries in program order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of retired instructions in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEntry> {
        self.entries.iter()
    }

    /// Counts retired instructions per class.
    pub fn class_counts(&self) -> std::collections::HashMap<OpClass, u64> {
        let mut counts = std::collections::HashMap::new();
        for e in &self.entries {
            *counts.entry(e.class).or_insert(0u64) += 1;
        }
        counts
    }

    /// Fraction of conditional branches that were taken (0 when the trace
    /// contains no branches).
    pub fn taken_fraction(&self) -> f64 {
        let mut branches = 0u64;
        let mut taken = 0u64;
        for e in &self.entries {
            if let Some(b) = e.branch {
                branches += 1;
                if b.taken {
                    taken += 1;
                }
            }
        }
        if branches == 0 {
            0.0
        } else {
            taken as f64 / branches as f64
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEntry;
    type IntoIter = std::slice::Iter<'a, TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(class: OpClass, taken: Option<bool>) -> TraceEntry {
        TraceEntry {
            pc: 0,
            class,
            mem_addr: None,
            branch: taken.map(|t| BranchRecord {
                taken: t,
                target_pc: 0,
            }),
        }
    }

    #[test]
    fn class_counts_and_len() {
        let mut t = Trace::new();
        t.push(entry(OpClass::IntAlu, None));
        t.push(entry(OpClass::IntAlu, None));
        t.push(entry(OpClass::Load, None));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let counts = t.class_counts();
        assert_eq!(counts[&OpClass::IntAlu], 2);
        assert_eq!(counts[&OpClass::Load], 1);
    }

    #[test]
    fn taken_fraction() {
        let mut t = Trace::new();
        assert_eq!(t.taken_fraction(), 0.0);
        t.push(entry(OpClass::Branch, Some(true)));
        t.push(entry(OpClass::Branch, Some(true)));
        t.push(entry(OpClass::Branch, Some(false)));
        t.push(entry(OpClass::IntAlu, None));
        assert!((t.taken_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn iteration() {
        let mut t = Trace::with_capacity(2);
        t.push(entry(OpClass::Store, None));
        assert_eq!(t.iter().count(), 1);
        assert_eq!((&t).into_iter().count(), 1);
        assert_eq!(t.entries()[0].class, OpClass::Store);
    }
}
