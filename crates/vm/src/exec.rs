//! The widget executor.

use crate::prepared::{ExecScratch, PreparedProgram, Slot};
use crate::state::MachineState;
use crate::trace::{BranchRecord, Trace, TraceEntry};
use hashcore_isa::{FpOp, Instruction, IntAluOp, IntMulOp, OpClass, Program, VecOp, VEC_LANES};
use std::fmt;

/// Configuration for one widget execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum number of retired instructions before execution is aborted
    /// with [`ExecError::StepLimitExceeded`]. This bounds verification cost
    /// and guarantees termination for any program.
    pub max_steps: u64,
    /// Whether to record the dynamic trace (needed for simulation; the plain
    /// PoW path can switch it off to go faster).
    pub collect_trace: bool,
    /// Seed used to initialise memory and registers before execution (the
    /// Table-I memory seed in the full HashCore pipeline).
    pub memory_seed: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            max_steps: 2_000_000,
            collect_trace: true,
            memory_seed: 0,
        }
    }
}

/// Error produced by [`Executor::execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program failed validation.
    InvalidProgram(hashcore_isa::ValidateError),
    /// The step limit was reached before the program halted.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidProgram(e) => write!(f, "invalid widget program: {e}"),
            ExecError::StepLimitExceeded { limit } => {
                write!(f, "widget exceeded the step limit of {limit} instructions")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::InvalidProgram(e) => Some(e),
            ExecError::StepLimitExceeded { .. } => None,
        }
    }
}

impl From<hashcore_isa::ValidateError> for ExecError {
    fn from(value: hashcore_isa::ValidateError) -> Self {
        ExecError::InvalidProgram(value)
    }
}

/// Summary statistics of one prepared execution; the widget output and
/// trace stay in the [`ExecScratch`] so the hot path moves no buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of retired instructions (including conditional terminators).
    pub dynamic_instructions: u64,
    /// Number of snapshots emitted.
    pub snapshot_count: u64,
}

/// The result of executing a widget.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// The widget output: the concatenated register snapshots. This is the
    /// byte string `W(s)` that HashCore concatenates with the hash seed and
    /// feeds to the second hash gate.
    pub output: Vec<u8>,
    /// The dynamic trace (empty unless [`ExecConfig::collect_trace`]).
    pub trace: Trace,
    /// Number of retired instructions (including conditional terminators).
    pub dynamic_instructions: u64,
    /// Number of snapshots emitted.
    pub snapshot_count: u64,
    /// Architectural state at halt, useful for tests and debugging.
    pub final_state: MachineState,
}

/// Executes widget programs deterministically.
#[derive(Debug, Clone)]
pub struct Executor {
    config: ExecConfig,
}

impl Executor {
    /// Creates an executor with the given configuration.
    pub fn new(config: ExecConfig) -> Self {
        Self { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Runs `program` to completion.
    ///
    /// This is a convenience wrapper over the prepared path: it validates
    /// and pre-decodes the program, executes it in a fresh [`ExecScratch`],
    /// and moves the buffers into an owned [`Execution`]. Hot loops that run
    /// many programs (or one program many times) should call
    /// [`Executor::execute_prepared`] with long-lived state instead.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidProgram`] if the program fails
    /// [`Program::validate`], or [`ExecError::StepLimitExceeded`] if it does
    /// not halt within the configured number of steps.
    pub fn execute(&self, program: &Program) -> Result<Execution, ExecError> {
        let prepared = PreparedProgram::new(program)?;
        let mut scratch = ExecScratch::new();
        let stats = self.execute_prepared(&prepared, &mut scratch)?;
        Ok(Execution {
            output: scratch.output,
            trace: scratch.trace,
            dynamic_instructions: stats.dynamic_instructions,
            snapshot_count: stats.snapshot_count,
            final_state: scratch.state,
        })
    }

    /// Runs a pre-decoded program in reusable scratch state.
    ///
    /// The scratch's machine state is re-seeded in place from
    /// [`ExecConfig::memory_seed`] and its output/trace buffers are cleared
    /// (capacity retained), so repeated calls perform no heap allocation
    /// once the buffers have reached their steady-state sizes. The retired
    /// instruction sequence — and therefore the widget output, the trace
    /// and all statistics — is identical to [`Executor::execute`].
    ///
    /// On success the widget output is in [`ExecScratch::output`] and the
    /// trace (when [`ExecConfig::collect_trace`] is set) in
    /// [`ExecScratch::trace`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepLimitExceeded`] if the program does not
    /// halt within the configured number of steps (validation already
    /// happened when the [`PreparedProgram`] was built).
    ///
    /// # Panics
    ///
    /// Panics if `prepared` never held a successfully prepared program
    /// (e.g. a `Default`-constructed value).
    pub fn execute_prepared(
        &self,
        prepared: &PreparedProgram,
        scratch: &mut ExecScratch,
    ) -> Result<ExecStats, ExecError> {
        assert!(
            !prepared.slots.is_empty(),
            "execute_prepared requires a successfully prepared program"
        );
        scratch.state.reset(prepared.memory_size);
        scratch.state.seed(self.config.memory_seed);
        scratch.output.clear();
        scratch.trace.clear();

        let max_steps = self.config.max_steps;
        let collect_trace = self.config.collect_trace;
        let slots = prepared.slots.as_slice();
        let mut steps = 0u64;
        let mut snapshots = 0u64;
        let mut pc = prepared.entry_pc as usize;

        loop {
            // One limit check per slot reproduces the naive executor's check
            // sequence exactly (before every instruction and terminator), so
            // limit-boundary behaviour is bit-identical across both paths.
            if steps >= max_steps {
                return Err(ExecError::StepLimitExceeded { limit: max_steps });
            }
            match slots[pc] {
                Slot::Inst(ref inst) => {
                    let mem_addr = step(
                        &mut scratch.state,
                        inst,
                        &mut scratch.output,
                        &mut snapshots,
                    );
                    steps += 1;
                    if collect_trace {
                        scratch.trace.push(TraceEntry {
                            pc: pc as u32,
                            class: inst.class(),
                            mem_addr,
                            branch: None,
                        });
                    }
                    pc += 1;
                }
                Slot::Jump { target } => {
                    pc = target as usize;
                }
                Slot::Branch {
                    cond,
                    src1,
                    src2,
                    taken,
                    not_taken,
                } => {
                    let v1 = scratch.state.int_regs[src1.0 as usize];
                    let v2 = scratch.state.int_regs[src2.0 as usize];
                    let is_taken = cond.evaluate(v1, v2);
                    let target = if is_taken { taken } else { not_taken };
                    steps += 1;
                    if collect_trace {
                        scratch.trace.push(TraceEntry {
                            pc: pc as u32,
                            class: OpClass::Branch,
                            mem_addr: None,
                            branch: Some(BranchRecord {
                                taken: is_taken,
                                target_pc: target,
                            }),
                        });
                    }
                    pc = target as usize;
                }
                Slot::Halt => {
                    return Ok(ExecStats {
                        dynamic_instructions: steps,
                        snapshot_count: snapshots,
                    });
                }
            }
        }
    }
}

/// Canonicalises floating-point values so widget output is bit-identical on
/// every platform: NaNs collapse to +0.0 and negative zero to positive zero.
fn canon(x: f64) -> f64 {
    if x.is_nan() || x == 0.0 {
        0.0
    } else {
        x
    }
}

fn alu(op: IntAluOp, a: u64, b: u64) -> u64 {
    match op {
        IntAluOp::Add => a.wrapping_add(b),
        IntAluOp::Sub => a.wrapping_sub(b),
        IntAluOp::And => a & b,
        IntAluOp::Or => a | b,
        IntAluOp::Xor => a ^ b,
        IntAluOp::Shl => a << (b & 63),
        IntAluOp::Shr => a >> (b & 63),
        IntAluOp::Rotl => a.rotate_left((b & 63) as u32),
        IntAluOp::Min => a.min(b),
        IntAluOp::Max => a.max(b),
    }
}

/// Executes one straight-line instruction, returning the effective memory
/// address if it touched memory.
fn step(
    state: &mut MachineState,
    inst: &Instruction,
    output: &mut Vec<u8>,
    snapshots: &mut u64,
) -> Option<u64> {
    match *inst {
        Instruction::IntAlu {
            op,
            dst,
            src1,
            src2,
        } => {
            let a = state.int_regs[src1.0 as usize];
            let b = state.int_regs[src2.0 as usize];
            state.int_regs[dst.0 as usize] = alu(op, a, b);
            None
        }
        Instruction::IntAluImm { op, dst, src, imm } => {
            let a = state.int_regs[src.0 as usize];
            state.int_regs[dst.0 as usize] = alu(op, a, imm as i64 as u64);
            None
        }
        Instruction::IntMul {
            op,
            dst,
            src1,
            src2,
        } => {
            let a = state.int_regs[src1.0 as usize];
            let b = state.int_regs[src2.0 as usize];
            state.int_regs[dst.0 as usize] = match op {
                IntMulOp::Mul => a.wrapping_mul(b),
                IntMulOp::MulHi => ((a as u128 * b as u128) >> 64) as u64,
            };
            None
        }
        Instruction::LoadImm { dst, imm } => {
            state.int_regs[dst.0 as usize] = imm as u64;
            None
        }
        Instruction::Fp {
            op,
            dst,
            src1,
            src2,
        } => {
            let a = state.fp_regs[src1.0 as usize];
            let b = state.fp_regs[src2.0 as usize];
            let v = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
                FpOp::Min => {
                    if a < b {
                        a
                    } else {
                        b
                    }
                }
                FpOp::Max => {
                    if a > b {
                        a
                    } else {
                        b
                    }
                }
            };
            state.fp_regs[dst.0 as usize] = canon(v);
            None
        }
        Instruction::FpFromInt { dst, src } => {
            state.fp_regs[dst.0 as usize] = canon(state.int_regs[src.0 as usize] as i64 as f64);
            None
        }
        Instruction::FpToInt { dst, src } => {
            let v = canon(state.fp_regs[src.0 as usize]);
            // `as` casts saturate in Rust, which is exactly the deterministic
            // behaviour we want.
            state.int_regs[dst.0 as usize] = v as i64 as u64;
            None
        }
        Instruction::Load { dst, base, offset } => {
            let addr = state.int_regs[base.0 as usize].wrapping_add(offset as i64 as u64);
            state.int_regs[dst.0 as usize] = state.load64(addr);
            Some(state.wrap_addr(addr))
        }
        Instruction::Store { src, base, offset } => {
            let addr = state.int_regs[base.0 as usize].wrapping_add(offset as i64 as u64);
            let value = state.int_regs[src.0 as usize];
            state.store64(addr, value);
            Some(state.wrap_addr(addr))
        }
        Instruction::FpLoad { dst, base, offset } => {
            let addr = state.int_regs[base.0 as usize].wrapping_add(offset as i64 as u64);
            state.fp_regs[dst.0 as usize] = canon(f64::from_bits(state.load64(addr)));
            Some(state.wrap_addr(addr))
        }
        Instruction::FpStore { src, base, offset } => {
            let addr = state.int_regs[base.0 as usize].wrapping_add(offset as i64 as u64);
            let bits = canon(state.fp_regs[src.0 as usize]).to_bits();
            state.store64(addr, bits);
            Some(state.wrap_addr(addr))
        }
        Instruction::Vec {
            op,
            dst,
            src1,
            src2,
        } => {
            let a = state.vec_regs[src1.0 as usize];
            let b = state.vec_regs[src2.0 as usize];
            let mut out = [0u64; VEC_LANES];
            for lane in 0..VEC_LANES {
                out[lane] = match op {
                    VecOp::Add => a[lane].wrapping_add(b[lane]),
                    VecOp::Xor => a[lane] ^ b[lane],
                    VecOp::Mul => a[lane].wrapping_mul(b[lane]),
                    VecOp::Rotl => a[lane].rotate_left((b[lane] & 63) as u32),
                };
            }
            state.vec_regs[dst.0 as usize] = out;
            None
        }
        Instruction::VecLoad { dst, base, offset } => {
            let addr = state.int_regs[base.0 as usize].wrapping_add(offset as i64 as u64);
            let mut out = [0u64; VEC_LANES];
            for (lane, slot) in out.iter_mut().enumerate() {
                *slot = state.load64(addr.wrapping_add(8 * lane as u64));
            }
            state.vec_regs[dst.0 as usize] = out;
            Some(state.wrap_addr(addr))
        }
        Instruction::VecStore { src, base, offset } => {
            let addr = state.int_regs[base.0 as usize].wrapping_add(offset as i64 as u64);
            let v = state.vec_regs[src.0 as usize];
            for (lane, value) in v.iter().enumerate() {
                state.store64(addr.wrapping_add(8 * lane as u64), *value);
            }
            Some(state.wrap_addr(addr))
        }
        Instruction::Snapshot => {
            state.write_snapshot(output);
            *snapshots += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SNAPSHOT_BYTES;
    use hashcore_isa::{BlockId, BranchCond, FpReg, IntReg, ProgramBuilder, Terminator, VecReg};

    fn run(program: &Program) -> Execution {
        Executor::new(ExecConfig::default())
            .execute(program)
            .expect("execution")
    }

    #[test]
    fn arithmetic_and_snapshot() {
        let mut b = ProgramBuilder::new(256);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 6);
        b.load_imm(IntReg(1), 7);
        b.int_mul(IntMulOp::Mul, IntReg(2), IntReg(0), IntReg(1));
        b.snapshot();
        b.terminate(Terminator::Halt);
        let p = b.finish(entry);
        let exec = run(&p);
        assert_eq!(exec.final_state.int_regs[2], 42);
        assert_eq!(exec.output.len(), SNAPSHOT_BYTES);
        assert_eq!(exec.snapshot_count, 1);
        assert_eq!(exec.dynamic_instructions, 4);
    }

    #[test]
    fn loop_executes_expected_iterations() {
        let mut b = ProgramBuilder::new(256);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 10); // counter
        b.load_imm(IntReg(1), 0); // accumulator
        b.load_imm(IntReg(2), 0); // zero
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.terminate(Terminator::Jump(body));
        b.begin_reserved(body);
        b.int_alu_imm(IntAluOp::Add, IntReg(1), IntReg(1), 5);
        b.int_alu_imm(IntAluOp::Sub, IntReg(0), IntReg(0), 1);
        b.branch(BranchCond::Ne, IntReg(0), IntReg(2), body, exit);
        b.begin_reserved(exit);
        b.snapshot();
        b.terminate(Terminator::Halt);
        let exec = run(&b.finish(entry));
        assert_eq!(exec.final_state.int_regs[1], 50);
        // 10 iterations of (2 alu + branch) + 3 setup + snapshot
        assert_eq!(exec.dynamic_instructions, 3 + 10 * 3 + 1);
        let counts = exec.trace.class_counts();
        assert_eq!(counts[&OpClass::Branch], 10);
        // 9 taken (back edges) + 1 not-taken (exit).
        assert!((exec.trace.taken_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn memory_roundtrip_and_trace_addresses() {
        let mut b = ProgramBuilder::new(1024);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 512);
        b.load_imm(IntReg(1), 0x1234_5678);
        b.store(IntReg(1), IntReg(0), 8);
        b.load(IntReg(2), IntReg(0), 8);
        b.terminate(Terminator::Halt);
        let exec = run(&b.finish(entry));
        assert_eq!(exec.final_state.int_regs[2], 0x1234_5678);
        let mems: Vec<u64> = exec.trace.iter().filter_map(|e| e.mem_addr).collect();
        assert_eq!(mems, vec![520, 520]);
    }

    #[test]
    fn fp_operations_are_canonicalised() {
        let mut b = ProgramBuilder::new(256);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 0);
        b.fp_from_int(FpReg(0), IntReg(0)); // f0 = 0.0
        b.fp(FpOp::Div, FpReg(1), FpReg(0), FpReg(0)); // 0/0 = NaN -> canon 0.0
        b.fp_to_int(IntReg(1), FpReg(1));
        b.terminate(Terminator::Halt);
        let exec = run(&b.finish(entry));
        assert_eq!(exec.final_state.fp_regs[1], 0.0);
        assert_eq!(exec.final_state.int_regs[1], 0);
    }

    #[test]
    fn vector_operations() {
        let mut b = ProgramBuilder::new(256);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 0);
        b.vec_load(VecReg(0), IntReg(0), 0);
        b.vec(VecOp::Xor, VecReg(1), VecReg(0), VecReg(0));
        b.vec_store(VecReg(1), IntReg(0), 64);
        b.load(IntReg(1), IntReg(0), 64);
        b.terminate(Terminator::Halt);
        let exec = run(&b.finish(entry));
        // x ^ x == 0 for every lane.
        assert_eq!(exec.final_state.vec_regs[1], [0, 0, 0, 0]);
        assert_eq!(exec.final_state.int_regs[1], 0);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut b = ProgramBuilder::new(64);
        let entry = b.begin_block();
        let spin = b.reserve_block();
        b.terminate(Terminator::Jump(spin));
        b.begin_reserved(spin);
        b.int_alu_imm(IntAluOp::Add, IntReg(0), IntReg(0), 1);
        let halt = b.reserve_block();
        b.terminate(Terminator::Jump(spin));
        b.begin_reserved(halt);
        b.terminate(Terminator::Halt);
        let p = b.finish(entry);
        let exec = Executor::new(ExecConfig {
            max_steps: 1000,
            ..ExecConfig::default()
        })
        .execute(&p);
        assert_eq!(exec, Err(ExecError::StepLimitExceeded { limit: 1000 }));
    }

    #[test]
    fn invalid_program_rejected() {
        let p = Program::new(Vec::new(), BlockId(0), 64);
        let err = Executor::new(ExecConfig::default())
            .execute(&p)
            .unwrap_err();
        assert!(matches!(err, ExecError::InvalidProgram(_)));
        assert!(err.to_string().contains("invalid widget program"));
    }

    #[test]
    fn execution_is_deterministic_across_runs() {
        let mut b = ProgramBuilder::new(4096);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 64);
        b.load_imm(IntReg(3), 0);
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.terminate(Terminator::Jump(body));
        b.begin_reserved(body);
        b.load(IntReg(1), IntReg(0), 0);
        b.int_alu(IntAluOp::Xor, IntReg(2), IntReg(2), IntReg(1));
        b.int_mul(IntMulOp::MulHi, IntReg(4), IntReg(1), IntReg(2));
        b.store(IntReg(4), IntReg(0), 8);
        b.int_alu_imm(IntAluOp::Add, IntReg(0), IntReg(0), 24);
        b.int_alu_imm(IntAluOp::Add, IntReg(3), IntReg(3), 1);
        b.load_imm(IntReg(5), 200);
        b.snapshot();
        b.branch(BranchCond::Ltu, IntReg(3), IntReg(5), body, exit);
        b.begin_reserved(exit);
        b.terminate(Terminator::Halt);
        let p = b.finish(entry);

        let config = ExecConfig {
            memory_seed: 99,
            ..ExecConfig::default()
        };
        let a = Executor::new(config).execute(&p).unwrap();
        let b2 = Executor::new(config).execute(&p).unwrap();
        assert_eq!(a.output, b2.output);
        assert_eq!(a.dynamic_instructions, b2.dynamic_instructions);

        // A different memory seed must change the output (the widget reads
        // seeded memory).
        let c = Executor::new(ExecConfig {
            memory_seed: 100,
            ..ExecConfig::default()
        })
        .execute(&p)
        .unwrap();
        assert_ne!(a.output, c.output);
    }

    #[test]
    fn trace_disabled_still_produces_output() {
        let mut b = ProgramBuilder::new(256);
        let entry = b.begin_block();
        b.snapshot();
        b.terminate(Terminator::Halt);
        let p = b.finish(entry);
        let exec = Executor::new(ExecConfig {
            collect_trace: false,
            ..ExecConfig::default()
        })
        .execute(&p)
        .unwrap();
        assert!(exec.trace.is_empty());
        assert_eq!(exec.output.len(), SNAPSHOT_BYTES);
    }

    #[test]
    fn pc_assignment_is_block_major_and_unique() {
        let mut b = ProgramBuilder::new(256);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 1);
        b.load_imm(IntReg(1), 1);
        let second = b.reserve_block();
        b.terminate(Terminator::Jump(second));
        b.begin_reserved(second);
        b.int_alu(IntAluOp::Add, IntReg(2), IntReg(0), IntReg(1));
        b.terminate(Terminator::Halt);
        let exec = run(&b.finish(entry));
        let pcs: Vec<u32> = exec.trace.iter().map(|e| e.pc).collect();
        // Block 0 occupies pcs 0..=2 (2 instructions + terminator slot);
        // block 1 starts at pc 3.
        assert_eq!(pcs, vec![0, 1, 3]);
    }
}
