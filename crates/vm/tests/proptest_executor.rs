//! Property-based tests of the functional executor: determinism, output
//! structure, step-limit enforcement and trace/output consistency over
//! randomly generated (but structurally safe) loop programs.

use hashcore_isa::{BranchCond, IntAluOp, IntMulOp, IntReg, Program, ProgramBuilder, Terminator};
use hashcore_vm::{ExecConfig, ExecScratch, Executor, PreparedProgram, SNAPSHOT_BYTES};
use proptest::prelude::*;

/// Builds a bounded counted-loop program whose body is derived from `ops`
/// (always terminates after `iters` iterations).
fn loop_program(iters: u8, ops: &[u8], snapshot_every_iter: bool, memory_bits: u32) -> Program {
    let mut b = ProgramBuilder::new(1 << memory_bits);
    let entry = b.begin_block();
    b.load_imm(IntReg(0), i64::from(iters.max(1)));
    b.load_imm(IntReg(1), 0);
    let body = b.reserve_block();
    let exit = b.reserve_block();
    b.terminate(Terminator::Jump(body));

    b.begin_reserved(body);
    for (i, &op) in ops.iter().enumerate() {
        let dst = IntReg(2 + (op % 10));
        let src = IntReg(2 + ((op >> 4) % 10));
        match op % 5 {
            0 => b.int_alu(
                IntAluOp::ALL[op as usize % IntAluOp::ALL.len()],
                dst,
                src,
                IntReg(2),
            ),
            1 => b.int_alu_imm(IntAluOp::Xor, dst, src, i as i32 * 13 + 1),
            2 => b.int_mul(IntMulOp::ALL[op as usize % 2], dst, src, IntReg(3)),
            3 => b.load(dst, src, (op as i32) * 8),
            _ => b.store(src, dst, (op as i32) * 8),
        }
    }
    if snapshot_every_iter {
        b.snapshot();
    }
    b.int_alu_imm(IntAluOp::Sub, IntReg(0), IntReg(0), 1);
    b.branch(BranchCond::Ne, IntReg(0), IntReg(1), body, exit);

    b.begin_reserved(exit);
    b.snapshot();
    b.terminate(Terminator::Halt);
    b.finish(entry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn execution_is_deterministic(
        iters in 1u8..40,
        ops in prop::collection::vec(any::<u8>(), 0..24),
        seed in any::<u64>(),
    ) {
        let program = loop_program(iters, &ops, true, 12);
        let config = ExecConfig { max_steps: 200_000, collect_trace: true, memory_seed: seed };
        let a = Executor::new(config).execute(&program).expect("bounded loop halts");
        let b = Executor::new(config).execute(&program).expect("bounded loop halts");
        prop_assert_eq!(&a.output, &b.output);
        prop_assert_eq!(a.dynamic_instructions, b.dynamic_instructions);
        prop_assert_eq!(a.trace.len(), b.trace.len());
        prop_assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn output_is_whole_snapshots_and_counts_match(
        iters in 1u8..30,
        ops in prop::collection::vec(any::<u8>(), 0..16),
        snapshot_every_iter in any::<bool>(),
    ) {
        let program = loop_program(iters, &ops, snapshot_every_iter, 10);
        let exec = Executor::new(ExecConfig::default()).execute(&program).expect("halts");
        prop_assert_eq!(exec.output.len() % SNAPSHOT_BYTES, 0);
        prop_assert_eq!(exec.output.len(), exec.snapshot_count as usize * SNAPSHOT_BYTES);
        let expected_snapshots = if snapshot_every_iter { u64::from(iters.max(1)) + 1 } else { 1 };
        prop_assert_eq!(exec.snapshot_count, expected_snapshots);
    }

    #[test]
    fn trace_length_equals_retired_instructions(
        iters in 1u8..20,
        ops in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let program = loop_program(iters, &ops, true, 10);
        let exec = Executor::new(ExecConfig::default()).execute(&program).expect("halts");
        prop_assert_eq!(exec.trace.len() as u64, exec.dynamic_instructions);
        // Every pc in the trace is inside the program's layout.
        let slots = program.pc_slot_count();
        prop_assert!(exec.trace.iter().all(|e| e.pc < slots));
        // Memory addresses recorded in the trace stay inside the data segment.
        let memory = program.memory_size() as u64;
        prop_assert!(exec.trace.iter().filter_map(|e| e.mem_addr).all(|a| a < memory));
    }

    #[test]
    fn step_limit_is_respected(
        iters in 50u8..200,
        ops in prop::collection::vec(any::<u8>(), 8..16),
        limit in 16u64..400,
    ) {
        let program = loop_program(iters, &ops, false, 10);
        let config = ExecConfig { max_steps: limit, collect_trace: false, memory_seed: 0 };
        match Executor::new(config).execute(&program) {
            Ok(exec) => prop_assert!(exec.dynamic_instructions <= limit),
            Err(hashcore_vm::ExecError::StepLimitExceeded { limit: reported }) => {
                prop_assert_eq!(reported, limit)
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
        }
    }

    #[test]
    fn prepared_execution_is_bit_identical_to_naive(
        iters in 1u8..40,
        ops in prop::collection::vec(any::<u8>(), 0..24),
        seed in any::<u64>(),
    ) {
        let program = loop_program(iters, &ops, true, 12);
        let config = ExecConfig { max_steps: 200_000, collect_trace: true, memory_seed: seed };
        let naive = Executor::new(config).execute(&program).expect("bounded loop halts");
        let prepared = PreparedProgram::new(&program).expect("program validates");
        let mut scratch = ExecScratch::new();
        // Run twice through the same scratch: the second run exercises
        // in-place re-seeding and buffer reuse.
        for _ in 0..2 {
            let stats = Executor::new(config)
                .execute_prepared(&prepared, &mut scratch)
                .expect("bounded loop halts");
            prop_assert_eq!(scratch.output(), naive.output.as_slice());
            prop_assert_eq!(stats.dynamic_instructions, naive.dynamic_instructions);
            prop_assert_eq!(stats.snapshot_count, naive.snapshot_count);
            prop_assert_eq!(scratch.trace(), &naive.trace);
            prop_assert_eq!(scratch.final_state(), &naive.final_state);
        }
    }

    #[test]
    fn scratch_reuse_across_different_programs_matches_fresh_execution(
        programs in prop::collection::vec(
            (1u8..20, prop::collection::vec(any::<u8>(), 0..16), any::<u64>()),
            1..5,
        ),
    ) {
        // One prepared-program buffer and one scratch serve a stream of
        // different programs — exactly the mining hot loop's usage.
        let mut prepared = PreparedProgram::default();
        let mut scratch = ExecScratch::new();
        for (iters, ops, seed) in programs {
            let program = loop_program(iters, &ops, true, 10);
            let config = ExecConfig { max_steps: 200_000, collect_trace: false, memory_seed: seed };
            prepared.prepare(&program).expect("program validates");
            let stats = Executor::new(config)
                .execute_prepared(&prepared, &mut scratch)
                .expect("bounded loop halts");
            let naive = Executor::new(config).execute(&program).expect("bounded loop halts");
            prop_assert_eq!(scratch.output(), naive.output.as_slice());
            prop_assert_eq!(stats.dynamic_instructions, naive.dynamic_instructions);
        }
    }

    #[test]
    fn prepared_step_limit_behaviour_matches_naive(
        iters in 50u8..200,
        ops in prop::collection::vec(any::<u8>(), 8..16),
        limit in 16u64..400,
    ) {
        let program = loop_program(iters, &ops, false, 10);
        let config = ExecConfig { max_steps: limit, collect_trace: false, memory_seed: 0 };
        let naive = Executor::new(config).execute(&program);
        let prepared = PreparedProgram::new(&program).expect("program validates");
        let mut scratch = ExecScratch::new();
        match (
            naive,
            Executor::new(config).execute_prepared(&prepared, &mut scratch),
        ) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.dynamic_instructions, b.dynamic_instructions);
                prop_assert_eq!(a.output.as_slice(), scratch.output());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "paths disagree at the step limit: naive {a:?}, prepared {b:?}"
                )))
            }
        }
    }

    #[test]
    fn different_memory_seeds_change_loaded_data_dependent_results(
        iters in 2u8..20,
        ops in prop::collection::vec(any::<u8>(), 4..16),
    ) {
        // Only meaningful when the body contains at least one load.
        prop_assume!(ops.iter().any(|op| op % 5 == 3));
        let program = loop_program(iters, &ops, true, 12);
        let run = |seed: u64| {
            Executor::new(ExecConfig { memory_seed: seed, ..ExecConfig::default() })
                .execute(&program)
                .expect("halts")
                .output
        };
        prop_assert_ne!(run(1), run(2));
    }
}
