//! Property-based tests over arbitrary (structurally valid) widget programs:
//! encode/decode round-trips, validation stability, statistics consistency
//! and disassembly totality.

use hashcore_isa::{
    decode, emit_c_source, encode, BasicBlock, BlockId, BranchCond, FpOp, FpReg, Instruction,
    IntAluOp, IntMulOp, IntReg, OpClass, Program, Terminator, VecOp, VecReg,
};
use proptest::prelude::*;

fn arb_int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..16).prop_map(IntReg)
}
fn arb_fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..16).prop_map(FpReg)
}
fn arb_vec_reg() -> impl Strategy<Value = VecReg> {
    (0u8..8).prop_map(VecReg)
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (
            prop::sample::select(IntAluOp::ALL.to_vec()),
            arb_int_reg(),
            arb_int_reg(),
            arb_int_reg()
        )
            .prop_map(|(op, dst, src1, src2)| Instruction::IntAlu {
                op,
                dst,
                src1,
                src2
            }),
        (
            prop::sample::select(IntAluOp::ALL.to_vec()),
            arb_int_reg(),
            arb_int_reg(),
            any::<i32>()
        )
            .prop_map(|(op, dst, src, imm)| Instruction::IntAluImm { op, dst, src, imm }),
        (
            prop::sample::select(IntMulOp::ALL.to_vec()),
            arb_int_reg(),
            arb_int_reg(),
            arb_int_reg()
        )
            .prop_map(|(op, dst, src1, src2)| Instruction::IntMul {
                op,
                dst,
                src1,
                src2
            }),
        (arb_int_reg(), any::<i64>()).prop_map(|(dst, imm)| Instruction::LoadImm { dst, imm }),
        (
            prop::sample::select(FpOp::ALL.to_vec()),
            arb_fp_reg(),
            arb_fp_reg(),
            arb_fp_reg()
        )
            .prop_map(|(op, dst, src1, src2)| Instruction::Fp {
                op,
                dst,
                src1,
                src2
            }),
        (arb_fp_reg(), arb_int_reg()).prop_map(|(dst, src)| Instruction::FpFromInt { dst, src }),
        (arb_int_reg(), arb_fp_reg()).prop_map(|(dst, src)| Instruction::FpToInt { dst, src }),
        (arb_int_reg(), arb_int_reg(), any::<i32>())
            .prop_map(|(dst, base, offset)| Instruction::Load { dst, base, offset }),
        (arb_int_reg(), arb_int_reg(), any::<i32>())
            .prop_map(|(src, base, offset)| Instruction::Store { src, base, offset }),
        (arb_fp_reg(), arb_int_reg(), any::<i32>())
            .prop_map(|(dst, base, offset)| Instruction::FpLoad { dst, base, offset }),
        (arb_fp_reg(), arb_int_reg(), any::<i32>())
            .prop_map(|(src, base, offset)| Instruction::FpStore { src, base, offset }),
        (
            prop::sample::select(VecOp::ALL.to_vec()),
            arb_vec_reg(),
            arb_vec_reg(),
            arb_vec_reg()
        )
            .prop_map(|(op, dst, src1, src2)| Instruction::Vec {
                op,
                dst,
                src1,
                src2
            }),
        (arb_vec_reg(), arb_int_reg(), any::<i32>())
            .prop_map(|(dst, base, offset)| Instruction::VecLoad { dst, base, offset }),
        (arb_vec_reg(), arb_int_reg(), any::<i32>())
            .prop_map(|(src, base, offset)| Instruction::VecStore { src, base, offset }),
        Just(Instruction::Snapshot),
    ]
}

/// Builds a structurally valid program: every block terminates, the last
/// block halts, and branch targets stay within range.
fn arb_program() -> impl Strategy<Value = Program> {
    let block_count = 1usize..8;
    block_count.prop_flat_map(|blocks| {
        let bodies = prop::collection::vec(prop::collection::vec(arb_instruction(), 0..12), blocks);
        let memory_bits = 6u32..16;
        (bodies, memory_bits, any::<u64>()).prop_map(|(bodies, memory_bits, picker)| {
            let count = bodies.len();
            let blocks: Vec<BasicBlock> = bodies
                .into_iter()
                .enumerate()
                .map(|(i, instructions)| {
                    let id = BlockId(i as u32);
                    let terminator = if i + 1 == count {
                        Terminator::Halt
                    } else if picker.rotate_left(i as u32) % 3 == 0 {
                        Terminator::Branch {
                            cond: BranchCond::ALL[(picker as usize + i) % BranchCond::ALL.len()],
                            src1: IntReg((picker as u8).wrapping_add(i as u8) % 16),
                            src2: IntReg((picker as u8).wrapping_mul(3) % 16),
                            taken: BlockId(((i + 1) % count) as u32),
                            not_taken: BlockId((count - 1) as u32),
                        }
                    } else {
                        Terminator::Jump(BlockId(((i + 1) % count) as u32))
                    };
                    BasicBlock::new(id, instructions, terminator)
                })
                .collect();
            Program::new(blocks, BlockId(0), 1 << memory_bits)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_roundtrip(program in arb_program()) {
        prop_assert_eq!(program.validate(), Ok(()));
        let bytes = encode(&program);
        let decoded = decode(&bytes).expect("decoding an encoded program succeeds");
        prop_assert_eq!(&decoded, &program);
        // Re-encoding is byte identical (canonical encoding).
        prop_assert_eq!(encode(&decoded), bytes);
    }

    #[test]
    fn stats_match_block_contents(program in arb_program()) {
        let stats = program.stats();
        prop_assert_eq!(stats.block_count, program.blocks().len());
        let body_total: usize = program.blocks().iter().map(|b| b.instructions.len()).sum();
        let branches = program
            .blocks()
            .iter()
            .filter(|b| b.terminator.is_conditional())
            .count();
        prop_assert_eq!(stats.static_instructions, body_total + branches);
        prop_assert_eq!(stats.conditional_branches, branches);
        let class_total: usize = stats.class_counts.values().sum();
        prop_assert_eq!(class_total, stats.static_instructions);
        prop_assert_eq!(
            stats.class_counts.get(&OpClass::Branch).copied().unwrap_or(0),
            branches
        );
    }

    #[test]
    fn pc_layout_is_dense_and_consistent(program in arb_program()) {
        let bases = program.block_pc_bases();
        prop_assert_eq!(bases.len(), program.blocks().len());
        let mut expected = 0u32;
        for (base, block) in bases.iter().zip(program.blocks()) {
            prop_assert_eq!(*base, expected);
            expected += block.instructions.len() as u32 + 1;
        }
        prop_assert_eq!(program.pc_slot_count(), expected);
    }

    #[test]
    fn disassembly_and_c_emission_are_total(program in arb_program()) {
        let asm = program.to_string();
        prop_assert!(asm.contains("bb0:"));
        prop_assert!(asm.contains("halt"));
        let c = emit_c_source(&program);
        prop_assert!(c.contains("int main(void)"));
        prop_assert_eq!(c.matches('{').count(), c.matches('}').count());
    }

    #[test]
    fn truncated_encodings_never_decode_to_the_same_program(program in arb_program()) {
        let bytes = encode(&program);
        // Any strict prefix either fails to decode or decodes to a different
        // program (no silent truncation).
        if bytes.len() > 4 {
            let cut = bytes.len() - 1;
            if let Ok(other) = decode(&bytes[..cut]) {
                prop_assert_ne!(other, program);
            }
        }
    }
}
