//! Ergonomic construction of widget programs.

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::{BranchCond, FpOp, Instruction, IntAluOp, IntMulOp, VecOp};
use crate::program::Program;
use crate::reg::{FpReg, IntReg, VecReg};

/// Incremental builder for [`Program`]s.
///
/// Blocks are opened with [`ProgramBuilder::begin_block`] (which returns the
/// id that branches can target, even before the block is populated),
/// populated with the instruction helpers, and closed with
/// [`ProgramBuilder::terminate`]. Both the reference workloads and the widget
/// generator construct programs through this type.
///
/// # Examples
///
/// ```
/// use hashcore_isa::{ProgramBuilder, IntReg, IntAluOp, BranchCond, Terminator};
///
/// // A counted loop: r0 counts down from 10, r1 accumulates.
/// let mut b = ProgramBuilder::new(1 << 12);
/// let entry = b.begin_block();
/// b.load_imm(IntReg(0), 10);
/// b.load_imm(IntReg(1), 0);
/// let body = b.reserve_block();
/// let exit = b.reserve_block();
/// b.terminate(Terminator::Jump(body));
///
/// b.begin_reserved(body);
/// b.int_alu_imm(IntAluOp::Add, IntReg(1), IntReg(1), 3);
/// b.int_alu_imm(IntAluOp::Sub, IntReg(0), IntReg(0), 1);
/// b.load_imm(IntReg(2), 0);
/// b.terminate(Terminator::Branch {
///     cond: BranchCond::Ne,
///     src1: IntReg(0),
///     src2: IntReg(2),
///     taken: body,
///     not_taken: exit,
/// });
///
/// b.begin_reserved(exit);
/// b.snapshot();
/// b.terminate(Terminator::Halt);
///
/// let program = b.finish(entry);
/// assert!(program.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    blocks: Vec<Option<BasicBlock>>,
    current: Option<BlockId>,
    pending: Vec<Instruction>,
    memory_size: usize,
    /// Recycled instruction buffers, sorted by capacity (ascending).
    ///
    /// [`ProgramBuilder::terminate`] draws the smallest adequate buffer for
    /// each finished block and [`ProgramBuilder::reset`] /
    /// [`ProgramBuilder::finish_into`] return buffers to the pool, so a
    /// builder that is reused across programs of similar shape stops
    /// allocating once the pool has warmed up. Best-fit selection matters:
    /// because every block is compatible with any buffer at least as large
    /// as itself, taking the smallest adequate buffer preserves the larger
    /// ones for the larger blocks still to come, and reuse succeeds whenever
    /// any assignment of buffers to blocks could.
    spare: Vec<Vec<Instruction>>,
}

impl Default for ProgramBuilder {
    /// An empty builder with the minimum 8-byte data segment; callers that
    /// reuse a default-constructed builder start it with
    /// [`ProgramBuilder::reset`].
    fn default() -> Self {
        Self::new(8)
    }
}

impl ProgramBuilder {
    /// Creates a builder whose program owns a data segment of
    /// `memory_size` bytes (rounded up to the next power of two).
    pub fn new(memory_size: usize) -> Self {
        Self {
            blocks: Vec::new(),
            current: None,
            pending: Vec::new(),
            memory_size: memory_size.max(8).next_power_of_two(),
            spare: Vec::new(),
        }
    }

    /// Clears the builder for a new program with a `memory_size`-byte data
    /// segment, retaining every allocation (the block table, the pending
    /// buffer and the recycled instruction buffers of any blocks built since
    /// the last [`ProgramBuilder::finish_into`]).
    pub fn reset(&mut self, memory_size: usize) {
        self.current = None;
        self.pending.clear();
        let mut drained = std::mem::take(&mut self.blocks);
        for block in drained.drain(..).flatten() {
            self.recycle(block.instructions);
        }
        self.blocks = drained;
        self.memory_size = memory_size.max(8).next_power_of_two();
    }

    /// Returns an empty buffer for a block of `len` instructions: the
    /// smallest recycled buffer that already has the capacity, or a fresh
    /// allocation when none qualifies.
    fn take_spare(&mut self, len: usize) -> Vec<Instruction> {
        let idx = self.spare.partition_point(|buf| buf.capacity() < len);
        if idx < self.spare.len() {
            self.spare.remove(idx)
        } else {
            Vec::with_capacity(len)
        }
    }

    /// Returns an instruction buffer to the spare pool (cleared, sorted by
    /// capacity).
    fn recycle(&mut self, mut buffer: Vec<Instruction>) {
        buffer.clear();
        let idx = self
            .spare
            .partition_point(|buf| buf.capacity() < buffer.capacity());
        self.spare.insert(idx, buffer);
    }

    /// Pre-sizes the builder for programs of up to `blocks` blocks of up to
    /// `block_capacity` instructions each: the spare pool is grown to
    /// `blocks` buffers of at least `block_capacity`, and the block table
    /// and pending buffer are reserved to match.
    ///
    /// A caller that knows an upper bound on every program it will ever
    /// build — the widget generator's seed-noise caps bound the segment
    /// count and block sizes over *all* seeds — primes the builder once and
    /// every later build is allocation-free, rather than allocation-free
    /// only after the (unbounded-tail) empirical warm-up has happened to
    /// visit the worst case.
    pub fn prime(&mut self, blocks: usize, block_capacity: usize) {
        for buf in &mut self.spare {
            if buf.capacity() < block_capacity {
                buf.reserve_exact(block_capacity);
            }
        }
        while self.spare.len() < blocks {
            self.spare.push(Vec::with_capacity(block_capacity));
        }
        self.spare.sort_by_key(Vec::capacity);
        if self.blocks.capacity() < blocks {
            self.blocks.reserve_exact(blocks - self.blocks.len());
        }
        if self.pending.capacity() < block_capacity {
            self.pending
                .reserve_exact(block_capacity - self.pending.len());
        }
    }

    /// Reserves a block id without opening it, so forward branches can refer
    /// to blocks that will be populated later.
    pub fn reserve_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(None);
        id
    }

    /// Reserves and immediately opens a new block, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if another block is currently open.
    pub fn begin_block(&mut self) -> BlockId {
        let id = self.reserve_block();
        self.begin_reserved(id);
        id
    }

    /// Opens a previously reserved block.
    ///
    /// # Panics
    ///
    /// Panics if another block is open or the id was already populated.
    pub fn begin_reserved(&mut self, id: BlockId) {
        assert!(self.current.is_none(), "a block is already open");
        assert!(
            self.blocks[id.index()].is_none(),
            "block {id} was already populated"
        );
        self.current = Some(id);
        self.pending.clear();
    }

    /// Appends a raw instruction to the open block.
    ///
    /// # Panics
    ///
    /// Panics if no block is open.
    pub fn push(&mut self, inst: Instruction) {
        assert!(self.current.is_some(), "no block is open");
        self.pending.push(inst);
    }

    /// Appends `dst = op(src1, src2)` on the integer ALU.
    pub fn int_alu(&mut self, op: IntAluOp, dst: IntReg, src1: IntReg, src2: IntReg) {
        self.push(Instruction::IntAlu {
            op,
            dst,
            src1,
            src2,
        });
    }

    /// Appends `dst = op(src, imm)` on the integer ALU.
    pub fn int_alu_imm(&mut self, op: IntAluOp, dst: IntReg, src: IntReg, imm: i32) {
        self.push(Instruction::IntAluImm { op, dst, src, imm });
    }

    /// Appends an integer multiply.
    pub fn int_mul(&mut self, op: IntMulOp, dst: IntReg, src1: IntReg, src2: IntReg) {
        self.push(Instruction::IntMul {
            op,
            dst,
            src1,
            src2,
        });
    }

    /// Appends `dst = imm`.
    pub fn load_imm(&mut self, dst: IntReg, imm: i64) {
        self.push(Instruction::LoadImm { dst, imm });
    }

    /// Appends a floating-point operation.
    pub fn fp(&mut self, op: FpOp, dst: FpReg, src1: FpReg, src2: FpReg) {
        self.push(Instruction::Fp {
            op,
            dst,
            src1,
            src2,
        });
    }

    /// Appends an int→fp conversion.
    pub fn fp_from_int(&mut self, dst: FpReg, src: IntReg) {
        self.push(Instruction::FpFromInt { dst, src });
    }

    /// Appends an fp→int conversion.
    pub fn fp_to_int(&mut self, dst: IntReg, src: FpReg) {
        self.push(Instruction::FpToInt { dst, src });
    }

    /// Appends a 64-bit load.
    pub fn load(&mut self, dst: IntReg, base: IntReg, offset: i32) {
        self.push(Instruction::Load { dst, base, offset });
    }

    /// Appends a 64-bit store.
    pub fn store(&mut self, src: IntReg, base: IntReg, offset: i32) {
        self.push(Instruction::Store { src, base, offset });
    }

    /// Appends a floating-point load.
    pub fn fp_load(&mut self, dst: FpReg, base: IntReg, offset: i32) {
        self.push(Instruction::FpLoad { dst, base, offset });
    }

    /// Appends a floating-point store.
    pub fn fp_store(&mut self, src: FpReg, base: IntReg, offset: i32) {
        self.push(Instruction::FpStore { src, base, offset });
    }

    /// Appends a vector operation.
    pub fn vec(&mut self, op: VecOp, dst: VecReg, src1: VecReg, src2: VecReg) {
        self.push(Instruction::Vec {
            op,
            dst,
            src1,
            src2,
        });
    }

    /// Appends a vector load.
    pub fn vec_load(&mut self, dst: VecReg, base: IntReg, offset: i32) {
        self.push(Instruction::VecLoad { dst, base, offset });
    }

    /// Appends a vector store.
    pub fn vec_store(&mut self, src: VecReg, base: IntReg, offset: i32) {
        self.push(Instruction::VecStore { src, base, offset });
    }

    /// Appends a register-state snapshot.
    pub fn snapshot(&mut self) {
        self.push(Instruction::Snapshot);
    }

    /// Closes the open block with `terminator`.
    ///
    /// # Panics
    ///
    /// Panics if no block is open.
    pub fn terminate(&mut self, terminator: Terminator) {
        let id = self.current.take().expect("no block is open");
        // Copy the pending instructions into a recycled buffer instead of
        // surrendering the pending buffer itself: `pending` then keeps its
        // capacity forever (it only ever needs to grow to the largest single
        // block), and the block body comes from the best-fit spare pool.
        let mut body = self.take_spare(self.pending.len());
        body.extend_from_slice(&self.pending);
        self.pending.clear();
        self.blocks[id.index()] = Some(BasicBlock::new(id, body, terminator));
    }

    /// Convenience: close the open block with a conditional branch.
    pub fn branch(
        &mut self,
        cond: BranchCond,
        src1: IntReg,
        src2: IntReg,
        taken: BlockId,
        not_taken: BlockId,
    ) {
        self.terminate(Terminator::Branch {
            cond,
            src1,
            src2,
            taken,
            not_taken,
        });
    }

    /// Number of blocks reserved so far.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Finishes the program with `entry` as its entry block.
    ///
    /// # Panics
    ///
    /// Panics if a block is still open or any reserved block was never
    /// populated.
    pub fn finish(mut self, entry: BlockId) -> Program {
        let mut out = Program::default();
        self.finish_into(entry, &mut out);
        out
    }

    /// Finishes the program into `out`, reusing `out`'s storage.
    ///
    /// The previous contents of `out` are discarded; its block table keeps
    /// its allocation and its old blocks' instruction buffers are recycled
    /// into this builder's spare pool. Together with
    /// [`ProgramBuilder::reset`] this makes the generate-into-the-same-
    /// program loop allocation-free at steady state: buffers cycle
    /// builder → program → builder as each new program replaces the last.
    ///
    /// The resulting program is byte-identical to what
    /// [`ProgramBuilder::finish`] returns for the same builder state.
    ///
    /// # Panics
    ///
    /// Panics if a block is still open or any reserved block was never
    /// populated.
    pub fn finish_into(&mut self, entry: BlockId, out: &mut Program) {
        assert!(self.current.is_none(), "a block is still open");
        let mut old = std::mem::take(&mut out.blocks);
        for block in old.drain(..) {
            self.recycle(block.instructions);
        }
        out.blocks = old;
        for (i, slot) in self.blocks.drain(..).enumerate() {
            let block = slot.unwrap_or_else(|| panic!("reserved block bb{i} was never populated"));
            out.blocks.push(block);
        }
        out.entry = entry;
        out.memory_size = self.memory_size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_size_rounded_to_power_of_two() {
        let mut b = ProgramBuilder::new(1000);
        let e = b.begin_block();
        b.snapshot();
        b.terminate(Terminator::Halt);
        let p = b.finish(e);
        assert_eq!(p.memory_size(), 1024);
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = ProgramBuilder::new(64);
        let entry = b.begin_block();
        let exit = b.reserve_block();
        b.terminate(Terminator::Jump(exit));
        b.begin_reserved(exit);
        b.terminate(Terminator::Halt);
        let p = b.finish(entry);
        assert!(p.validate().is_ok());
        assert_eq!(p.blocks().len(), 2);
    }

    #[test]
    #[should_panic(expected = "a block is already open")]
    fn double_open_panics() {
        let mut b = ProgramBuilder::new(64);
        b.begin_block();
        b.begin_block();
    }

    #[test]
    #[should_panic(expected = "no block is open")]
    fn push_without_block_panics() {
        let mut b = ProgramBuilder::new(64);
        b.snapshot();
    }

    #[test]
    #[should_panic(expected = "never populated")]
    fn unpopulated_reserved_block_panics() {
        let mut b = ProgramBuilder::new(64);
        let entry = b.begin_block();
        let dangling = b.reserve_block();
        b.terminate(Terminator::Jump(dangling));
        b.finish(entry);
    }

    fn counted_loop(b: &mut ProgramBuilder, iters: i64) -> Program {
        let entry = b.begin_block();
        b.load_imm(IntReg(0), iters);
        b.load_imm(IntReg(1), 0);
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.terminate(Terminator::Jump(body));
        b.begin_reserved(body);
        b.int_alu_imm(IntAluOp::Add, IntReg(1), IntReg(1), 3);
        b.int_alu_imm(IntAluOp::Sub, IntReg(0), IntReg(0), 1);
        b.branch(BranchCond::Ne, IntReg(0), IntReg(1), body, exit);
        b.begin_reserved(exit);
        b.snapshot();
        b.terminate(Terminator::Halt);
        let mut out = Program::default();
        b.finish_into(entry, &mut out);
        out
    }

    #[test]
    fn reset_and_finish_into_match_the_one_shot_path() {
        let mut b = ProgramBuilder::new(128);
        let reference = counted_loop(&mut b, 10);

        // Rebuilding the same program through reset + finish_into must be
        // identical, and a different program built afterwards must not be
        // contaminated by recycled buffers.
        let mut reused = ProgramBuilder::new(4096);
        let mut out = Program::default();
        for iters in [3, 10, 7, 10] {
            reused.reset(128);
            let entry = reused.begin_block();
            reused.load_imm(IntReg(0), iters);
            reused.load_imm(IntReg(1), 0);
            let body = reused.reserve_block();
            let exit = reused.reserve_block();
            reused.terminate(Terminator::Jump(body));
            reused.begin_reserved(body);
            reused.int_alu_imm(IntAluOp::Add, IntReg(1), IntReg(1), 3);
            reused.int_alu_imm(IntAluOp::Sub, IntReg(0), IntReg(0), 1);
            reused.branch(BranchCond::Ne, IntReg(0), IntReg(1), body, exit);
            reused.begin_reserved(exit);
            reused.snapshot();
            reused.terminate(Terminator::Halt);
            reused.finish_into(entry, &mut out);
            assert!(out.validate().is_ok());
            if iters == 10 {
                assert_eq!(out, reference);
            } else {
                assert_ne!(out, reference);
            }
        }
    }

    #[test]
    fn reset_recycles_unfinished_blocks() {
        let mut b = ProgramBuilder::new(64);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 1);
        b.terminate(Terminator::Halt);
        // Never finished: reset must recycle the terminated block and allow
        // a clean rebuild.
        b.reset(256);
        let entry2 = b.begin_block();
        b.snapshot();
        b.terminate(Terminator::Halt);
        let p = b.finish(entry2);
        assert_eq!(p.memory_size(), 256);
        assert_eq!(p.blocks().len(), 1);
        assert_eq!(p.block(entry2).instructions.len(), 1);
        let _ = entry;
    }

    #[test]
    fn spare_pool_uses_best_fit_buffers() {
        let mut b = ProgramBuilder::new(64);
        // Build a program with one large and one small block, then rebuild:
        // the second round must reuse the recycled buffers without mixing
        // contents up.
        for _ in 0..3 {
            b.reset(64);
            let entry = b.begin_block();
            for i in 0..32 {
                b.load_imm(IntReg((i % 8) as u8), i);
            }
            let exit = b.reserve_block();
            b.terminate(Terminator::Jump(exit));
            b.begin_reserved(exit);
            b.snapshot();
            b.terminate(Terminator::Halt);
            let mut out = Program::default();
            b.finish_into(entry, &mut out);
            // `finish_into` leaves the block table drained but keeps the
            // blocks; recycle them for the next round.
            assert_eq!(out.blocks().len(), 2);
            assert_eq!(out.block(entry).instructions.len(), 32);
            b.reset(64);
            for block in out.blocks() {
                assert!(block.instructions.len() <= 32);
            }
        }
    }

    #[test]
    fn helpers_emit_expected_instructions() {
        let mut b = ProgramBuilder::new(64);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 42);
        b.int_alu(IntAluOp::Xor, IntReg(1), IntReg(0), IntReg(0));
        b.int_mul(IntMulOp::MulHi, IntReg(2), IntReg(0), IntReg(0));
        b.fp_from_int(FpReg(0), IntReg(0));
        b.fp(FpOp::Mul, FpReg(1), FpReg(0), FpReg(0));
        b.fp_to_int(IntReg(3), FpReg(1));
        b.load(IntReg(4), IntReg(0), 8);
        b.store(IntReg(4), IntReg(0), 16);
        b.vec(VecOp::Add, VecReg(0), VecReg(1), VecReg(2));
        b.snapshot();
        b.terminate(Terminator::Halt);
        let p = b.finish(entry);
        assert_eq!(p.block(entry).instructions.len(), 10);
        assert!(p.validate().is_ok());
    }
}
