//! Ergonomic construction of widget programs.

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::{BranchCond, FpOp, Instruction, IntAluOp, IntMulOp, VecOp};
use crate::program::Program;
use crate::reg::{FpReg, IntReg, VecReg};

/// Incremental builder for [`Program`]s.
///
/// Blocks are opened with [`ProgramBuilder::begin_block`] (which returns the
/// id that branches can target, even before the block is populated),
/// populated with the instruction helpers, and closed with
/// [`ProgramBuilder::terminate`]. Both the reference workloads and the widget
/// generator construct programs through this type.
///
/// # Examples
///
/// ```
/// use hashcore_isa::{ProgramBuilder, IntReg, IntAluOp, BranchCond, Terminator};
///
/// // A counted loop: r0 counts down from 10, r1 accumulates.
/// let mut b = ProgramBuilder::new(1 << 12);
/// let entry = b.begin_block();
/// b.load_imm(IntReg(0), 10);
/// b.load_imm(IntReg(1), 0);
/// let body = b.reserve_block();
/// let exit = b.reserve_block();
/// b.terminate(Terminator::Jump(body));
///
/// b.begin_reserved(body);
/// b.int_alu_imm(IntAluOp::Add, IntReg(1), IntReg(1), 3);
/// b.int_alu_imm(IntAluOp::Sub, IntReg(0), IntReg(0), 1);
/// b.load_imm(IntReg(2), 0);
/// b.terminate(Terminator::Branch {
///     cond: BranchCond::Ne,
///     src1: IntReg(0),
///     src2: IntReg(2),
///     taken: body,
///     not_taken: exit,
/// });
///
/// b.begin_reserved(exit);
/// b.snapshot();
/// b.terminate(Terminator::Halt);
///
/// let program = b.finish(entry);
/// assert!(program.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    blocks: Vec<Option<BasicBlock>>,
    current: Option<BlockId>,
    pending: Vec<Instruction>,
    memory_size: usize,
}

impl ProgramBuilder {
    /// Creates a builder whose program owns a data segment of
    /// `memory_size` bytes (rounded up to the next power of two).
    pub fn new(memory_size: usize) -> Self {
        Self {
            blocks: Vec::new(),
            current: None,
            pending: Vec::new(),
            memory_size: memory_size.max(8).next_power_of_two(),
        }
    }

    /// Reserves a block id without opening it, so forward branches can refer
    /// to blocks that will be populated later.
    pub fn reserve_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(None);
        id
    }

    /// Reserves and immediately opens a new block, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if another block is currently open.
    pub fn begin_block(&mut self) -> BlockId {
        let id = self.reserve_block();
        self.begin_reserved(id);
        id
    }

    /// Opens a previously reserved block.
    ///
    /// # Panics
    ///
    /// Panics if another block is open or the id was already populated.
    pub fn begin_reserved(&mut self, id: BlockId) {
        assert!(self.current.is_none(), "a block is already open");
        assert!(
            self.blocks[id.index()].is_none(),
            "block {id} was already populated"
        );
        self.current = Some(id);
        self.pending.clear();
    }

    /// Appends a raw instruction to the open block.
    ///
    /// # Panics
    ///
    /// Panics if no block is open.
    pub fn push(&mut self, inst: Instruction) {
        assert!(self.current.is_some(), "no block is open");
        self.pending.push(inst);
    }

    /// Appends `dst = op(src1, src2)` on the integer ALU.
    pub fn int_alu(&mut self, op: IntAluOp, dst: IntReg, src1: IntReg, src2: IntReg) {
        self.push(Instruction::IntAlu {
            op,
            dst,
            src1,
            src2,
        });
    }

    /// Appends `dst = op(src, imm)` on the integer ALU.
    pub fn int_alu_imm(&mut self, op: IntAluOp, dst: IntReg, src: IntReg, imm: i32) {
        self.push(Instruction::IntAluImm { op, dst, src, imm });
    }

    /// Appends an integer multiply.
    pub fn int_mul(&mut self, op: IntMulOp, dst: IntReg, src1: IntReg, src2: IntReg) {
        self.push(Instruction::IntMul {
            op,
            dst,
            src1,
            src2,
        });
    }

    /// Appends `dst = imm`.
    pub fn load_imm(&mut self, dst: IntReg, imm: i64) {
        self.push(Instruction::LoadImm { dst, imm });
    }

    /// Appends a floating-point operation.
    pub fn fp(&mut self, op: FpOp, dst: FpReg, src1: FpReg, src2: FpReg) {
        self.push(Instruction::Fp {
            op,
            dst,
            src1,
            src2,
        });
    }

    /// Appends an int→fp conversion.
    pub fn fp_from_int(&mut self, dst: FpReg, src: IntReg) {
        self.push(Instruction::FpFromInt { dst, src });
    }

    /// Appends an fp→int conversion.
    pub fn fp_to_int(&mut self, dst: IntReg, src: FpReg) {
        self.push(Instruction::FpToInt { dst, src });
    }

    /// Appends a 64-bit load.
    pub fn load(&mut self, dst: IntReg, base: IntReg, offset: i32) {
        self.push(Instruction::Load { dst, base, offset });
    }

    /// Appends a 64-bit store.
    pub fn store(&mut self, src: IntReg, base: IntReg, offset: i32) {
        self.push(Instruction::Store { src, base, offset });
    }

    /// Appends a floating-point load.
    pub fn fp_load(&mut self, dst: FpReg, base: IntReg, offset: i32) {
        self.push(Instruction::FpLoad { dst, base, offset });
    }

    /// Appends a floating-point store.
    pub fn fp_store(&mut self, src: FpReg, base: IntReg, offset: i32) {
        self.push(Instruction::FpStore { src, base, offset });
    }

    /// Appends a vector operation.
    pub fn vec(&mut self, op: VecOp, dst: VecReg, src1: VecReg, src2: VecReg) {
        self.push(Instruction::Vec {
            op,
            dst,
            src1,
            src2,
        });
    }

    /// Appends a vector load.
    pub fn vec_load(&mut self, dst: VecReg, base: IntReg, offset: i32) {
        self.push(Instruction::VecLoad { dst, base, offset });
    }

    /// Appends a vector store.
    pub fn vec_store(&mut self, src: VecReg, base: IntReg, offset: i32) {
        self.push(Instruction::VecStore { src, base, offset });
    }

    /// Appends a register-state snapshot.
    pub fn snapshot(&mut self) {
        self.push(Instruction::Snapshot);
    }

    /// Closes the open block with `terminator`.
    ///
    /// # Panics
    ///
    /// Panics if no block is open.
    pub fn terminate(&mut self, terminator: Terminator) {
        let id = self.current.take().expect("no block is open");
        let body = std::mem::take(&mut self.pending);
        self.blocks[id.index()] = Some(BasicBlock::new(id, body, terminator));
    }

    /// Convenience: close the open block with a conditional branch.
    pub fn branch(
        &mut self,
        cond: BranchCond,
        src1: IntReg,
        src2: IntReg,
        taken: BlockId,
        not_taken: BlockId,
    ) {
        self.terminate(Terminator::Branch {
            cond,
            src1,
            src2,
            taken,
            not_taken,
        });
    }

    /// Number of blocks reserved so far.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Finishes the program with `entry` as its entry block.
    ///
    /// # Panics
    ///
    /// Panics if a block is still open or any reserved block was never
    /// populated.
    pub fn finish(self, entry: BlockId) -> Program {
        assert!(self.current.is_none(), "a block is still open");
        let blocks: Vec<BasicBlock> = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, b)| b.unwrap_or_else(|| panic!("reserved block bb{i} was never populated")))
            .collect();
        Program::new(blocks, entry, self.memory_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_size_rounded_to_power_of_two() {
        let mut b = ProgramBuilder::new(1000);
        let e = b.begin_block();
        b.snapshot();
        b.terminate(Terminator::Halt);
        let p = b.finish(e);
        assert_eq!(p.memory_size(), 1024);
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = ProgramBuilder::new(64);
        let entry = b.begin_block();
        let exit = b.reserve_block();
        b.terminate(Terminator::Jump(exit));
        b.begin_reserved(exit);
        b.terminate(Terminator::Halt);
        let p = b.finish(entry);
        assert!(p.validate().is_ok());
        assert_eq!(p.blocks().len(), 2);
    }

    #[test]
    #[should_panic(expected = "a block is already open")]
    fn double_open_panics() {
        let mut b = ProgramBuilder::new(64);
        b.begin_block();
        b.begin_block();
    }

    #[test]
    #[should_panic(expected = "no block is open")]
    fn push_without_block_panics() {
        let mut b = ProgramBuilder::new(64);
        b.snapshot();
    }

    #[test]
    #[should_panic(expected = "never populated")]
    fn unpopulated_reserved_block_panics() {
        let mut b = ProgramBuilder::new(64);
        let entry = b.begin_block();
        let dangling = b.reserve_block();
        b.terminate(Terminator::Jump(dangling));
        b.finish(entry);
    }

    #[test]
    fn helpers_emit_expected_instructions() {
        let mut b = ProgramBuilder::new(64);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 42);
        b.int_alu(IntAluOp::Xor, IntReg(1), IntReg(0), IntReg(0));
        b.int_mul(IntMulOp::MulHi, IntReg(2), IntReg(0), IntReg(0));
        b.fp_from_int(FpReg(0), IntReg(0));
        b.fp(FpOp::Mul, FpReg(1), FpReg(0), FpReg(0));
        b.fp_to_int(IntReg(3), FpReg(1));
        b.load(IntReg(4), IntReg(0), 8);
        b.store(IntReg(4), IntReg(0), 16);
        b.vec(VecOp::Add, VecReg(0), VecReg(1), VecReg(2));
        b.snapshot();
        b.terminate(Terminator::Halt);
        let p = b.finish(entry);
        assert_eq!(p.block(entry).instructions.len(), 10);
        assert!(p.validate().is_ok());
    }
}
