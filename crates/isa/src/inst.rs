//! Instruction definitions and their resource classification.
//!
//! The instruction classes deliberately mirror the per-resource seed fields of
//! the paper's Table I (Integer ALU, Integer Multiply, Floating Point ALU,
//! Loads, Stores, Branch Behaviour): every instruction maps onto one
//! [`OpClass`], and the widget generator steers the *class mix* of the
//! programs it emits toward the (seed-noised) target profile.

use crate::reg::{FpReg, IntReg, VecReg};
use std::fmt;

/// Integer ALU operations (single-cycle class on the modelled core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntAluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `src2 & 63`.
    Shl,
    /// Logical shift right by `src2 & 63`.
    Shr,
    /// Rotate left by `src2 & 63`.
    Rotl,
    /// Unsigned minimum.
    Min,
    /// Unsigned maximum.
    Max,
}

impl IntAluOp {
    /// All ALU operations, used by the generator's instruction selector.
    pub const ALL: [IntAluOp; 10] = [
        IntAluOp::Add,
        IntAluOp::Sub,
        IntAluOp::And,
        IntAluOp::Or,
        IntAluOp::Xor,
        IntAluOp::Shl,
        IntAluOp::Shr,
        IntAluOp::Rotl,
        IntAluOp::Min,
        IntAluOp::Max,
    ];

    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntAluOp::Add => "add",
            IntAluOp::Sub => "sub",
            IntAluOp::And => "and",
            IntAluOp::Or => "or",
            IntAluOp::Xor => "xor",
            IntAluOp::Shl => "shl",
            IntAluOp::Shr => "shr",
            IntAluOp::Rotl => "rotl",
            IntAluOp::Min => "minu",
            IntAluOp::Max => "maxu",
        }
    }
}

/// Integer multiply-class operations (longer-latency pipelined unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntMulOp {
    /// Low 64 bits of the product.
    Mul,
    /// High 64 bits of the unsigned 128-bit product.
    MulHi,
}

impl IntMulOp {
    /// All multiply operations.
    pub const ALL: [IntMulOp; 2] = [IntMulOp::Mul, IntMulOp::MulHi];

    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntMulOp::Mul => "mul",
            IntMulOp::MulHi => "mulhi",
        }
    }
}

/// Floating-point operations on 64-bit IEEE-754 registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// IEEE minimum (NaN-propagating, canonicalised by the executor).
    Min,
    /// IEEE maximum (NaN-propagating, canonicalised by the executor).
    Max,
}

impl FpOp {
    /// All floating-point operations.
    pub const ALL: [FpOp; 6] = [
        FpOp::Add,
        FpOp::Sub,
        FpOp::Mul,
        FpOp::Div,
        FpOp::Min,
        FpOp::Max,
    ];

    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
            FpOp::Min => "fmin",
            FpOp::Max => "fmax",
        }
    }
}

/// Vector (SIMD) lane-wise operations on 4×64-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VecOp {
    /// Lane-wise wrapping addition.
    Add,
    /// Lane-wise XOR.
    Xor,
    /// Lane-wise wrapping multiplication.
    Mul,
    /// Lane-wise rotate-left by the low 6 bits of the other operand's lane.
    Rotl,
}

impl VecOp {
    /// All vector operations.
    pub const ALL: [VecOp; 4] = [VecOp::Add, VecOp::Xor, VecOp::Mul, VecOp::Rotl];

    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            VecOp::Add => "vadd",
            VecOp::Xor => "vxor",
            VecOp::Mul => "vmul",
            VecOp::Rotl => "vrotl",
        }
    }
}

/// Branch comparison conditions (operands are integer registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken when `src1 == src2`.
    Eq,
    /// Taken when `src1 != src2`.
    Ne,
    /// Taken when `src1 < src2` (signed).
    Lt,
    /// Taken when `src1 >= src2` (signed).
    Ge,
    /// Taken when `src1 < src2` (unsigned).
    Ltu,
    /// Taken when `src1 >= src2` (unsigned).
    Geu,
}

impl BranchCond {
    /// All branch conditions.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Evaluates the condition over two 64-bit register values.
    pub fn evaluate(self, src1: u64, src2: u64) -> bool {
        match self {
            BranchCond::Eq => src1 == src2,
            BranchCond::Ne => src1 != src2,
            BranchCond::Lt => (src1 as i64) < (src2 as i64),
            BranchCond::Ge => (src1 as i64) >= (src2 as i64),
            BranchCond::Ltu => src1 < src2,
            BranchCond::Geu => src1 >= src2,
        }
    }

    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Micro-architectural resource class of an instruction.
///
/// The classes correspond one-to-one with the x86 resources the paper's
/// widgets target (Section IV-A) and with the seed fields of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Integer ALU (add/sub/logic/shift).
    IntAlu,
    /// Integer multiplier.
    IntMul,
    /// Floating-point ALU.
    FpAlu,
    /// Memory read port.
    Load,
    /// Memory write port.
    Store,
    /// Branch / compare unit.
    Branch,
    /// Vector (SIMD) unit.
    Vector,
    /// Control-only operations (snapshots, unconditional jumps, halts).
    Control,
}

impl OpClass {
    /// All operation classes, in a stable order used for mix vectors.
    pub const ALL: [OpClass; 8] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Vector,
        OpClass::Control,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::FpAlu => "fp_alu",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Vector => "vector",
            OpClass::Control => "control",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single widget-ISA instruction.
///
/// Basic-block terminators (branches, jumps, halts) are represented
/// separately by [`crate::Terminator`]; the instruction list of a block
/// contains only straight-line operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Three-register integer ALU operation: `dst = op(src1, src2)`.
    IntAlu {
        /// ALU operation.
        op: IntAluOp,
        /// Destination register.
        dst: IntReg,
        /// First source register.
        src1: IntReg,
        /// Second source register.
        src2: IntReg,
    },
    /// Register–immediate integer ALU operation: `dst = op(src, imm)`.
    IntAluImm {
        /// ALU operation.
        op: IntAluOp,
        /// Destination register.
        dst: IntReg,
        /// Source register.
        src: IntReg,
        /// Sign-extended 32-bit immediate.
        imm: i32,
    },
    /// Integer multiply-class operation: `dst = op(src1, src2)`.
    IntMul {
        /// Multiply operation.
        op: IntMulOp,
        /// Destination register.
        dst: IntReg,
        /// First source register.
        src1: IntReg,
        /// Second source register.
        src2: IntReg,
    },
    /// Loads a 64-bit immediate into an integer register.
    LoadImm {
        /// Destination register.
        dst: IntReg,
        /// Immediate value.
        imm: i64,
    },
    /// Floating-point operation: `dst = op(src1, src2)`.
    Fp {
        /// Floating-point operation.
        op: FpOp,
        /// Destination register.
        dst: FpReg,
        /// First source register.
        src1: FpReg,
        /// Second source register.
        src2: FpReg,
    },
    /// Converts an integer register to floating point: `dst = (f64) src`.
    FpFromInt {
        /// Destination FP register.
        dst: FpReg,
        /// Source integer register.
        src: IntReg,
    },
    /// Converts a floating-point register to an integer (saturating,
    /// NaN maps to zero): `dst = (i64) src`.
    FpToInt {
        /// Destination integer register.
        dst: IntReg,
        /// Source FP register.
        src: FpReg,
    },
    /// 64-bit load: `dst = mem[src(base) + offset]`.
    Load {
        /// Destination register.
        dst: IntReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset added to the base (wrapped to the memory size).
        offset: i32,
    },
    /// 64-bit store: `mem[src(base) + offset] = src`.
    Store {
        /// Value register.
        src: IntReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset added to the base (wrapped to the memory size).
        offset: i32,
    },
    /// Floating-point load: `dst = mem[src(base) + offset]` (bit pattern).
    FpLoad {
        /// Destination FP register.
        dst: FpReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset.
        offset: i32,
    },
    /// Floating-point store of the raw bit pattern.
    FpStore {
        /// Value FP register.
        src: FpReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset.
        offset: i32,
    },
    /// Lane-wise vector operation: `dst = op(src1, src2)`.
    Vec {
        /// Vector operation.
        op: VecOp,
        /// Destination vector register.
        dst: VecReg,
        /// First source register.
        src1: VecReg,
        /// Second source register.
        src2: VecReg,
    },
    /// 256-bit vector load from `src(base) + offset`.
    VecLoad {
        /// Destination vector register.
        dst: VecReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset.
        offset: i32,
    },
    /// 256-bit vector store to `src(base) + offset`.
    VecStore {
        /// Value vector register.
        src: VecReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset.
        offset: i32,
    },
    /// Emits a register-state snapshot into the widget output stream.
    ///
    /// This is the paper's mechanism for forcing complete execution: "the
    /// proxy [is forced] to output register values throughout execution"
    /// (Section IV-B), making the widget irreducible.
    Snapshot,
}

impl Instruction {
    /// Returns the micro-architectural resource class of the instruction.
    pub fn class(&self) -> OpClass {
        match self {
            Instruction::IntAlu { .. }
            | Instruction::IntAluImm { .. }
            | Instruction::LoadImm { .. } => OpClass::IntAlu,
            Instruction::IntMul { .. } => OpClass::IntMul,
            Instruction::Fp { .. }
            | Instruction::FpFromInt { .. }
            | Instruction::FpToInt { .. } => OpClass::FpAlu,
            Instruction::Load { .. } | Instruction::FpLoad { .. } | Instruction::VecLoad { .. } => {
                OpClass::Load
            }
            Instruction::Store { .. }
            | Instruction::FpStore { .. }
            | Instruction::VecStore { .. } => OpClass::Store,
            Instruction::Vec { .. } => OpClass::Vector,
            Instruction::Snapshot => OpClass::Control,
        }
    }

    /// Returns `true` if the instruction accesses memory.
    pub fn is_memory(&self) -> bool {
        matches!(self.class(), OpClass::Load | OpClass::Store)
    }

    /// Returns the integer destination register written by this instruction,
    /// if any.
    pub fn int_dst(&self) -> Option<IntReg> {
        match self {
            Instruction::IntAlu { dst, .. }
            | Instruction::IntAluImm { dst, .. }
            | Instruction::IntMul { dst, .. }
            | Instruction::LoadImm { dst, .. }
            | Instruction::FpToInt { dst, .. }
            | Instruction::Load { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Returns the integer source registers read by this instruction.
    pub fn int_srcs(&self) -> Vec<IntReg> {
        match self {
            Instruction::IntAlu { src1, src2, .. } | Instruction::IntMul { src1, src2, .. } => {
                vec![*src1, *src2]
            }
            Instruction::IntAluImm { src, .. } | Instruction::FpFromInt { src, .. } => vec![*src],
            Instruction::Load { base, .. }
            | Instruction::FpLoad { base, .. }
            | Instruction::VecLoad { base, .. } => vec![*base],
            Instruction::Store { src, base, .. } => vec![*src, *base],
            Instruction::FpStore { base, .. } | Instruction::VecStore { base, .. } => vec![*base],
            Instruction::LoadImm { .. }
            | Instruction::Fp { .. }
            | Instruction::FpToInt { .. }
            | Instruction::Vec { .. }
            | Instruction::Snapshot => Vec::new(),
        }
    }

    /// Returns `true` if every register referenced by the instruction is
    /// inside its architectural file.
    pub fn registers_valid(&self) -> bool {
        match self {
            Instruction::IntAlu {
                dst, src1, src2, ..
            }
            | Instruction::IntMul {
                dst, src1, src2, ..
            } => dst.is_valid() && src1.is_valid() && src2.is_valid(),
            Instruction::IntAluImm { dst, src, .. } => dst.is_valid() && src.is_valid(),
            Instruction::LoadImm { dst, .. } => dst.is_valid(),
            Instruction::Fp {
                dst, src1, src2, ..
            } => dst.is_valid() && src1.is_valid() && src2.is_valid(),
            Instruction::FpFromInt { dst, src } => dst.is_valid() && src.is_valid(),
            Instruction::FpToInt { dst, src } => dst.is_valid() && src.is_valid(),
            Instruction::Load { dst, base, .. } => dst.is_valid() && base.is_valid(),
            Instruction::Store { src, base, .. } => src.is_valid() && base.is_valid(),
            Instruction::FpLoad { dst, base, .. } => dst.is_valid() && base.is_valid(),
            Instruction::FpStore { src, base, .. } => src.is_valid() && base.is_valid(),
            Instruction::Vec {
                dst, src1, src2, ..
            } => dst.is_valid() && src1.is_valid() && src2.is_valid(),
            Instruction::VecLoad { dst, base, .. } => dst.is_valid() && base.is_valid(),
            Instruction::VecStore { src, base, .. } => src.is_valid() && base.is_valid(),
            Instruction::Snapshot => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_all_classes() {
        let samples = [
            (
                Instruction::IntAlu {
                    op: IntAluOp::Add,
                    dst: IntReg(0),
                    src1: IntReg(1),
                    src2: IntReg(2),
                },
                OpClass::IntAlu,
            ),
            (
                Instruction::IntMul {
                    op: IntMulOp::Mul,
                    dst: IntReg(0),
                    src1: IntReg(1),
                    src2: IntReg(2),
                },
                OpClass::IntMul,
            ),
            (
                Instruction::Fp {
                    op: FpOp::Add,
                    dst: FpReg(0),
                    src1: FpReg(1),
                    src2: FpReg(2),
                },
                OpClass::FpAlu,
            ),
            (
                Instruction::Load {
                    dst: IntReg(0),
                    base: IntReg(1),
                    offset: 8,
                },
                OpClass::Load,
            ),
            (
                Instruction::Store {
                    src: IntReg(0),
                    base: IntReg(1),
                    offset: 8,
                },
                OpClass::Store,
            ),
            (
                Instruction::Vec {
                    op: VecOp::Xor,
                    dst: VecReg(0),
                    src1: VecReg(1),
                    src2: VecReg(2),
                },
                OpClass::Vector,
            ),
            (Instruction::Snapshot, OpClass::Control),
        ];
        for (inst, class) in samples {
            assert_eq!(inst.class(), class, "{inst:?}");
        }
    }

    #[test]
    fn branch_conditions_evaluate() {
        assert!(BranchCond::Eq.evaluate(5, 5));
        assert!(!BranchCond::Eq.evaluate(5, 6));
        assert!(BranchCond::Ne.evaluate(5, 6));
        assert!(BranchCond::Lt.evaluate(u64::MAX, 0)); // -1 < 0 signed
        assert!(!BranchCond::Ltu.evaluate(u64::MAX, 0));
        assert!(BranchCond::Ge.evaluate(0, u64::MAX)); // 0 >= -1 signed
        assert!(BranchCond::Geu.evaluate(u64::MAX, 0));
    }

    #[test]
    fn register_validity_checked() {
        let ok = Instruction::IntAlu {
            op: IntAluOp::Add,
            dst: IntReg(0),
            src1: IntReg(1),
            src2: IntReg(15),
        };
        let bad = Instruction::IntAlu {
            op: IntAluOp::Add,
            dst: IntReg(0),
            src1: IntReg(1),
            src2: IntReg(16),
        };
        assert!(ok.registers_valid());
        assert!(!bad.registers_valid());
    }

    #[test]
    fn dependency_queries() {
        let inst = Instruction::Store {
            src: IntReg(3),
            base: IntReg(4),
            offset: 0,
        };
        assert_eq!(inst.int_dst(), None);
        assert_eq!(inst.int_srcs(), vec![IntReg(3), IntReg(4)]);

        let load = Instruction::Load {
            dst: IntReg(7),
            base: IntReg(2),
            offset: 16,
        };
        assert_eq!(load.int_dst(), Some(IntReg(7)));
        assert!(load.is_memory());
    }

    #[test]
    fn op_class_names_are_unique() {
        let names: std::collections::HashSet<_> = OpClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), OpClass::ALL.len());
    }
}
