//! # hashcore-isa
//!
//! The *widget instruction set architecture* used throughout the HashCore
//! reproduction.
//!
//! The paper's widgets are C programs compiled by gcc to native x86. A PoW
//! function, however, must be verifiable bit-for-bit on every participant's
//! machine, so this reproduction defines a deterministic, portable register
//! ISA whose instruction *classes* mirror the x86 resources the paper targets
//! (Section IV-A): integer ALUs, integer multipliers, floating-point units,
//! load/store ports, branch units, and vector units. Widgets are programs in
//! this ISA; the functional executor lives in `hashcore-vm` and the
//! micro-architectural model in `hashcore-sim`.
//!
//! The crate provides:
//!
//! * register and immediate types ([`IntReg`], [`FpReg`], [`VecReg`]),
//! * the instruction set ([`Instruction`], [`IntAluOp`], [`FpOp`],
//!   [`VecOp`], [`BranchCond`]) and its resource classification
//!   ([`OpClass`]),
//! * structured programs ([`Program`], [`BasicBlock`], [`Terminator`],
//!   [`BlockId`]) with validation,
//! * a [`ProgramBuilder`] for constructing programs by hand (used by the
//!   reference workloads) or programmatically (used by the widget
//!   generator),
//! * a compact binary encoding ([`encode`]/[`decode`]) used for widget
//!   fingerprinting and size accounting,
//! * an assembly-style disassembler and a C-source emitter mirroring the
//!   paper's `profile → C → x86` pipeline for inspection.
//!
//! # Examples
//!
//! ```
//! use hashcore_isa::{ProgramBuilder, IntReg, IntAluOp, Terminator};
//!
//! let mut b = ProgramBuilder::new(1024);
//! let entry = b.begin_block();
//! b.load_imm(IntReg(0), 7);
//! b.load_imm(IntReg(1), 35);
//! b.int_alu(IntAluOp::Add, IntReg(2), IntReg(0), IntReg(1));
//! b.snapshot();
//! b.terminate(Terminator::Halt);
//! let program = b.finish(entry);
//! assert!(program.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod builder;
mod cgen;
mod disasm;
mod encode;
mod inst;
mod program;
mod reg;

pub use block::{BasicBlock, BlockId, Terminator};
pub use builder::ProgramBuilder;
pub use cgen::emit_c_source;
pub use encode::{decode, encode, DecodeError};
pub use inst::{BranchCond, FpOp, Instruction, IntAluOp, IntMulOp, OpClass, VecOp};
pub use program::{Program, ProgramStats, ValidateError};
pub use reg::{FpReg, IntReg, VecReg, NUM_FP_REGS, NUM_INT_REGS, NUM_VEC_REGS, VEC_LANES};
