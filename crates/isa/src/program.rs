//! Widget programs: a control-flow graph of basic blocks plus a data segment.

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::OpClass;
use std::collections::HashMap;
use std::fmt;

/// A complete widget program.
///
/// A program is a list of [`BasicBlock`]s, an entry block, and the size of
/// its private data segment (the memory the widget may load from and store
/// to). Programs are static data: execution state lives in `hashcore-vm`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) entry: BlockId,
    /// Size of the data segment in bytes (always a power of two so address
    /// wrapping is a mask).
    pub(crate) memory_size: usize,
}

impl Default for Program {
    /// An empty placeholder program (entry `bb0`, minimal memory).
    ///
    /// The placeholder does **not** pass [`Program::validate`]; it exists so
    /// reusable-scratch pipelines can allocate a program slot up front and
    /// fill it with [`crate::ProgramBuilder::finish_into`].
    fn default() -> Self {
        Self {
            blocks: Vec::new(),
            entry: BlockId(0),
            memory_size: 8,
        }
    }
}

/// Errors detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The program contains no blocks.
    Empty,
    /// The entry block id does not exist.
    BadEntry {
        /// The offending entry id.
        entry: BlockId,
    },
    /// A block's recorded id does not match its table position.
    MisnumberedBlock {
        /// Table index of the block.
        index: usize,
        /// Recorded id.
        id: BlockId,
    },
    /// A terminator references a block id that does not exist.
    DanglingEdge {
        /// Block whose terminator is broken.
        from: BlockId,
        /// The missing successor.
        to: BlockId,
    },
    /// An instruction references a register outside the architectural file.
    InvalidRegister {
        /// Block containing the instruction.
        block: BlockId,
        /// Index of the instruction within the block.
        index: usize,
    },
    /// The memory size is not a power of two of at least 8 bytes.
    BadMemorySize {
        /// The offending size.
        size: usize,
    },
    /// No block is a `Halt` terminator, so the program can never finish.
    NoHalt,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "program has no basic blocks"),
            ValidateError::BadEntry { entry } => write!(f, "entry block {entry} does not exist"),
            ValidateError::MisnumberedBlock { index, id } => {
                write!(f, "block at index {index} is numbered {id}")
            }
            ValidateError::DanglingEdge { from, to } => {
                write!(f, "block {from} branches to missing block {to}")
            }
            ValidateError::InvalidRegister { block, index } => {
                write!(
                    f,
                    "instruction {index} of block {block} uses an invalid register"
                )
            }
            ValidateError::BadMemorySize { size } => {
                write!(
                    f,
                    "memory size {size} is not a power of two of at least 8 bytes"
                )
            }
            ValidateError::NoHalt => write!(f, "program has no halt terminator"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Static statistics of a program, used by the generator's self-checks and by
/// the experiment harness to report widget sizes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Number of basic blocks.
    pub block_count: usize,
    /// Total static instruction count (bodies plus conditional terminators).
    pub static_instructions: usize,
    /// Static instruction count per resource class.
    pub class_counts: HashMap<OpClass, usize>,
    /// Number of conditional branches.
    pub conditional_branches: usize,
    /// Number of snapshot instructions.
    pub snapshots: usize,
}

impl Program {
    /// Creates a program from parts.
    ///
    /// Use [`crate::ProgramBuilder`] for ergonomic construction; this
    /// constructor performs no validation (call [`Program::validate`]).
    pub fn new(blocks: Vec<BasicBlock>, entry: BlockId, memory_size: usize) -> Self {
        Self {
            blocks,
            entry,
            memory_size,
        }
    }

    /// The program's basic blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Pre-sizes the block table for up to `blocks` blocks. Reusable-scratch
    /// pipelines size the program once for their worst case so that
    /// rebuilding it via [`crate::ProgramBuilder::finish_into`] never
    /// reallocates the table.
    pub fn reserve_blocks(&mut self, blocks: usize) {
        if self.blocks.capacity() < blocks {
            self.blocks.reserve_exact(blocks - self.blocks.len());
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Size of the data segment in bytes.
    pub fn memory_size(&self) -> usize {
        self.memory_size
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range; validated programs never do this.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Checks the structural invariants of the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found, if any.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.blocks.is_empty() {
            return Err(ValidateError::Empty);
        }
        // The executor's machine state addresses memory through a 64-bit
        // mask in 8-byte words, so the floor matches its `memory_size >= 8`
        // requirement — a validated program must never crash the verifier.
        if self.memory_size < 8 || !self.memory_size.is_power_of_two() {
            return Err(ValidateError::BadMemorySize {
                size: self.memory_size,
            });
        }
        if self.entry.index() >= self.blocks.len() {
            return Err(ValidateError::BadEntry { entry: self.entry });
        }
        let mut has_halt = false;
        for (index, block) in self.blocks.iter().enumerate() {
            if block.id.index() != index {
                return Err(ValidateError::MisnumberedBlock {
                    index,
                    id: block.id,
                });
            }
            for (i, inst) in block.instructions.iter().enumerate() {
                if !inst.registers_valid() {
                    return Err(ValidateError::InvalidRegister {
                        block: block.id,
                        index: i,
                    });
                }
            }
            // Successor edges are matched inline rather than through
            // `Terminator::successors` so validation performs no heap
            // allocation: the prepared-execution path re-validates one
            // program per nonce.
            let check = |to: BlockId| {
                if to.index() >= self.blocks.len() {
                    Err(ValidateError::DanglingEdge { from: block.id, to })
                } else {
                    Ok(())
                }
            };
            match block.terminator {
                Terminator::Halt => has_halt = true,
                Terminator::Jump(to) => check(to)?,
                Terminator::Branch {
                    taken, not_taken, ..
                } => {
                    check(taken)?;
                    check(not_taken)?;
                }
            }
        }
        if !has_halt {
            return Err(ValidateError::NoHalt);
        }
        Ok(())
    }

    /// Returns the static program counter assigned to the first slot of each
    /// block under the canonical block-major layout.
    ///
    /// Every instruction occupies one pc slot and every block's terminator
    /// occupies one additional slot, so block `i` starts at
    /// `bases[i]` and its terminator sits at
    /// `bases[i] + instructions.len()`. The functional executor
    /// (`hashcore-vm`) and the micro-architecture model (`hashcore-sim`) both
    /// use this layout, which is what lets traces be replayed against the
    /// static program.
    pub fn block_pc_bases(&self) -> Vec<u32> {
        let mut bases = Vec::with_capacity(self.blocks.len());
        let mut next = 0u32;
        for block in &self.blocks {
            bases.push(next);
            next += block.instructions.len() as u32 + 1;
        }
        bases
    }

    /// Total number of static pc slots (instructions plus one terminator slot
    /// per block).
    pub fn pc_slot_count(&self) -> u32 {
        self.blocks
            .iter()
            .map(|b| b.instructions.len() as u32 + 1)
            .sum()
    }

    /// Computes static statistics for the program.
    pub fn stats(&self) -> ProgramStats {
        let mut stats = ProgramStats {
            block_count: self.blocks.len(),
            ..ProgramStats::default()
        };
        for block in &self.blocks {
            for inst in &block.instructions {
                *stats.class_counts.entry(inst.class()).or_insert(0) += 1;
                stats.static_instructions += 1;
                if matches!(inst, crate::Instruction::Snapshot) {
                    stats.snapshots += 1;
                }
            }
            if block.terminator.is_conditional() {
                *stats.class_counts.entry(OpClass::Branch).or_insert(0) += 1;
                stats.static_instructions += 1;
                stats.conditional_branches += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{BranchCond, IntAluOp};
    use crate::reg::IntReg;
    use crate::Instruction;

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new(256);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 1);
        b.load_imm(IntReg(1), 2);
        b.int_alu(IntAluOp::Add, IntReg(2), IntReg(0), IntReg(1));
        b.snapshot();
        b.terminate(Terminator::Halt);
        b.finish(entry)
    }

    #[test]
    fn tiny_program_validates() {
        assert_eq!(tiny_program().validate(), Ok(()));
    }

    #[test]
    fn stats_count_classes() {
        let stats = tiny_program().stats();
        assert_eq!(stats.block_count, 1);
        assert_eq!(stats.snapshots, 1);
        assert_eq!(stats.class_counts[&OpClass::IntAlu], 3);
        assert_eq!(stats.class_counts[&OpClass::Control], 1);
        assert_eq!(stats.conditional_branches, 0);
        assert_eq!(stats.static_instructions, 4);
    }

    #[test]
    fn empty_program_rejected() {
        let p = Program::new(Vec::new(), BlockId(0), 256);
        assert_eq!(p.validate(), Err(ValidateError::Empty));
    }

    #[test]
    fn bad_memory_size_rejected() {
        let mut p = tiny_program();
        p.memory_size = 300;
        assert_eq!(
            p.validate(),
            Err(ValidateError::BadMemorySize { size: 300 })
        );
        p.memory_size = 0;
        assert_eq!(p.validate(), Err(ValidateError::BadMemorySize { size: 0 }));
        // Power-of-two sizes below the executor's 8-byte floor must be
        // rejected too, or a decoded program could panic the verifier.
        p.memory_size = 4;
        assert_eq!(p.validate(), Err(ValidateError::BadMemorySize { size: 4 }));
    }

    #[test]
    fn bad_entry_rejected() {
        let mut p = tiny_program();
        p.entry = BlockId(9);
        assert_eq!(
            p.validate(),
            Err(ValidateError::BadEntry { entry: BlockId(9) })
        );
    }

    #[test]
    fn dangling_edge_rejected() {
        let block = BasicBlock::new(
            BlockId(0),
            vec![],
            Terminator::Branch {
                cond: BranchCond::Eq,
                src1: IntReg(0),
                src2: IntReg(0),
                taken: BlockId(5),
                not_taken: BlockId(0),
            },
        );
        let halt = BasicBlock::new(BlockId(1), vec![], Terminator::Halt);
        let p = Program::new(vec![block, halt], BlockId(0), 256);
        assert_eq!(
            p.validate(),
            Err(ValidateError::DanglingEdge {
                from: BlockId(0),
                to: BlockId(5)
            })
        );
    }

    #[test]
    fn invalid_register_rejected() {
        let block = BasicBlock::new(
            BlockId(0),
            vec![Instruction::LoadImm {
                dst: IntReg(200),
                imm: 0,
            }],
            Terminator::Halt,
        );
        let p = Program::new(vec![block], BlockId(0), 256);
        assert_eq!(
            p.validate(),
            Err(ValidateError::InvalidRegister {
                block: BlockId(0),
                index: 0
            })
        );
    }

    #[test]
    fn missing_halt_rejected() {
        let block = BasicBlock::new(BlockId(0), vec![], Terminator::Jump(BlockId(0)));
        let p = Program::new(vec![block], BlockId(0), 256);
        assert_eq!(p.validate(), Err(ValidateError::NoHalt));
    }

    #[test]
    fn misnumbered_block_rejected() {
        let block = BasicBlock::new(BlockId(3), vec![], Terminator::Halt);
        let p = Program::new(vec![block], BlockId(0), 256);
        assert_eq!(
            p.validate(),
            Err(ValidateError::MisnumberedBlock {
                index: 0,
                id: BlockId(3)
            })
        );
    }

    #[test]
    fn validate_error_display() {
        let err = ValidateError::DanglingEdge {
            from: BlockId(1),
            to: BlockId(2),
        };
        assert!(err.to_string().contains("bb1"));
        assert!(err.to_string().contains("bb2"));
    }
}
