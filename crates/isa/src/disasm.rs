//! Assembly-style textual rendering of widget programs.

use crate::block::Terminator;
use crate::inst::Instruction;
use crate::program::Program;
use std::fmt;

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::IntAlu {
                op,
                dst,
                src1,
                src2,
            } => {
                write!(f, "{} {dst}, {src1}, {src2}", op.mnemonic())
            }
            Instruction::IntAluImm { op, dst, src, imm } => {
                write!(f, "{}i {dst}, {src}, {imm}", op.mnemonic())
            }
            Instruction::IntMul {
                op,
                dst,
                src1,
                src2,
            } => {
                write!(f, "{} {dst}, {src1}, {src2}", op.mnemonic())
            }
            Instruction::LoadImm { dst, imm } => write!(f, "li {dst}, {imm}"),
            Instruction::Fp {
                op,
                dst,
                src1,
                src2,
            } => {
                write!(f, "{} {dst}, {src1}, {src2}", op.mnemonic())
            }
            Instruction::FpFromInt { dst, src } => write!(f, "fcvt.d.l {dst}, {src}"),
            Instruction::FpToInt { dst, src } => write!(f, "fcvt.l.d {dst}, {src}"),
            Instruction::Load { dst, base, offset } => write!(f, "ld {dst}, {offset}({base})"),
            Instruction::Store { src, base, offset } => write!(f, "sd {src}, {offset}({base})"),
            Instruction::FpLoad { dst, base, offset } => write!(f, "fld {dst}, {offset}({base})"),
            Instruction::FpStore { src, base, offset } => write!(f, "fsd {src}, {offset}({base})"),
            Instruction::Vec {
                op,
                dst,
                src1,
                src2,
            } => {
                write!(f, "{} {dst}, {src1}, {src2}", op.mnemonic())
            }
            Instruction::VecLoad { dst, base, offset } => write!(f, "vld {dst}, {offset}({base})"),
            Instruction::VecStore { src, base, offset } => write!(f, "vsd {src}, {offset}({base})"),
            Instruction::Snapshot => write!(f, "snapshot"),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(target) => write!(f, "j {target}"),
            Terminator::Branch {
                cond,
                src1,
                src2,
                taken,
                not_taken,
            } => write!(
                f,
                "{} {src1}, {src2}, {taken} else {not_taken}",
                cond.mnemonic()
            ),
            Terminator::Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for Program {
    /// Renders the whole program as annotated assembly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; widget program: {} blocks, {} bytes of memory",
            self.blocks().len(),
            self.memory_size()
        )?;
        writeln!(f, "; entry: {}", self.entry())?;
        for block in self.blocks() {
            writeln!(f, "{}:", block.id)?;
            for inst in &block.instructions {
                writeln!(f, "    {inst}")?;
            }
            writeln!(f, "    {}", block.terminator)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::inst::{IntAluOp, IntMulOp};
    use crate::reg::IntReg;
    use crate::{BranchCond, Terminator};

    #[test]
    fn program_disassembly_contains_expected_lines() {
        let mut b = ProgramBuilder::new(128);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 5);
        b.int_alu(IntAluOp::Add, IntReg(1), IntReg(0), IntReg(0));
        b.int_mul(IntMulOp::Mul, IntReg(2), IntReg(1), IntReg(0));
        b.load(IntReg(3), IntReg(0), 24);
        b.snapshot();
        let exit = b.reserve_block();
        b.branch(BranchCond::Ltu, IntReg(0), IntReg(1), entry, exit);
        b.begin_reserved(exit);
        b.terminate(Terminator::Halt);
        let text = b.finish(entry).to_string();
        for needle in [
            "bb0:",
            "li r0, 5",
            "add r1, r0, r0",
            "mul r2, r1, r0",
            "ld r3, 24(r0)",
            "snapshot",
            "bltu r0, r1, bb0 else bb1",
            "halt",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
