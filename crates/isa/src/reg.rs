//! Register file definitions for the widget ISA.

use std::fmt;

/// Number of 64-bit integer registers.
pub const NUM_INT_REGS: usize = 16;
/// Number of 64-bit floating-point registers.
pub const NUM_FP_REGS: usize = 16;
/// Number of vector registers.
pub const NUM_VEC_REGS: usize = 8;
/// Number of 64-bit lanes per vector register (a 256-bit vector, mirroring
/// AVX2-class units on the x86 chips the paper targets).
pub const VEC_LANES: usize = 4;

/// An integer register index (`r0`–`r15`).
///
/// The index is not range-checked at construction; [`crate::Program::validate`]
/// rejects programs that reference registers outside the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(pub u8);

/// A floating-point register index (`f0`–`f15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(pub u8);

/// A vector register index (`v0`–`v7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VecReg(pub u8);

impl IntReg {
    /// Returns `true` if the register index is inside the architectural file.
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_INT_REGS
    }
}

impl FpReg {
    /// Returns `true` if the register index is inside the architectural file.
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_FP_REGS
    }
}

impl VecReg {
    /// Returns `true` if the register index is inside the architectural file.
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_VEC_REGS
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for VecReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u8> for IntReg {
    fn from(value: u8) -> Self {
        IntReg(value)
    }
}

impl From<u8> for FpReg {
    fn from(value: u8) -> Self {
        FpReg(value)
    }
}

impl From<u8> for VecReg {
    fn from(value: u8) -> Self {
        VecReg(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(IntReg(3).to_string(), "r3");
        assert_eq!(FpReg(15).to_string(), "f15");
        assert_eq!(VecReg(0).to_string(), "v0");
    }

    #[test]
    fn validity_bounds() {
        assert!(IntReg(15).is_valid());
        assert!(!IntReg(16).is_valid());
        assert!(FpReg(15).is_valid());
        assert!(!FpReg(16).is_valid());
        assert!(VecReg(7).is_valid());
        assert!(!VecReg(8).is_valid());
    }

    #[test]
    fn from_u8() {
        assert_eq!(IntReg::from(4), IntReg(4));
        assert_eq!(FpReg::from(4), FpReg(4));
        assert_eq!(VecReg::from(4), VecReg(4));
    }
}
