//! C source emission for widget programs.
//!
//! The paper's widget pipeline generates a C program which gcc compiles to
//! native x86 (Section IV-B). For portability and verification determinism
//! the reproduction *executes* widgets on the `hashcore-vm` interpreter, but
//! this module emits the equivalent C source so the original pipeline remains
//! inspectable: the emitted translation unit is a faithful rendering of the
//! widget's control-flow graph using `goto`-labelled blocks, 64-bit integer
//! arithmetic and IEEE-754 doubles.
//!
//! The emitted program writes the same snapshot stream to `stdout` that the
//! VM produces, so compiling it with a C compiler and diffing the output
//! against the VM is a (manual, out-of-band) cross-check of the interpreter.

use crate::block::Terminator;
use crate::inst::{FpOp, Instruction, IntAluOp, IntMulOp, VecOp};
use crate::program::Program;
use crate::reg::{NUM_FP_REGS, NUM_INT_REGS, NUM_VEC_REGS, VEC_LANES};
use std::fmt::Write as _;

/// Emits a self-contained C translation unit equivalent to `program`.
///
/// # Examples
///
/// ```
/// use hashcore_isa::{ProgramBuilder, Terminator, emit_c_source};
///
/// let mut b = ProgramBuilder::new(64);
/// let entry = b.begin_block();
/// b.snapshot();
/// b.terminate(Terminator::Halt);
/// let source = emit_c_source(&b.finish(entry));
/// assert!(source.contains("int main(void)"));
/// ```
pub fn emit_c_source(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* Auto-generated HashCore widget ({} blocks). */",
        program.blocks().len()
    );
    out.push_str("#include <stdint.h>\n#include <stdio.h>\n#include <string.h>\n\n");
    let _ = writeln!(out, "#define MEM_SIZE {}", program.memory_size());
    let _ = writeln!(out, "#define MEM_MASK (MEM_SIZE - 1)");
    out.push_str(
        "static uint8_t mem[MEM_SIZE];\n\
         static uint64_t ld64(uint64_t a) { uint64_t v; memcpy(&v, mem + (a & MEM_MASK & ~7ull), 8); return v; }\n\
         static void st64(uint64_t a, uint64_t v) { memcpy(mem + (a & MEM_MASK & ~7ull), &v, 8); }\n\
         static uint64_t rotl64(uint64_t x, uint64_t s) { s &= 63; return s ? (x << s) | (x >> (64 - s)) : x; }\n\
         static double canon(double x) { return x != x ? 0.0 : x; }\n\
         static void emit_snapshot(const uint64_t *r, const double *f) {\n\
             fwrite(r, 8, ",
    );
    let _ = write!(out, "{NUM_INT_REGS}");
    out.push_str(
        ", stdout);\n\
             fwrite(f, 8, ",
    );
    let _ = write!(out, "{NUM_FP_REGS}");
    out.push_str(
        ", stdout);\n\
         }\n\n",
    );
    out.push_str("int main(void) {\n");
    let _ = writeln!(out, "    uint64_t r[{NUM_INT_REGS}] = {{0}};");
    let _ = writeln!(out, "    double f[{NUM_FP_REGS}] = {{0}};");
    let _ = writeln!(
        out,
        "    uint64_t v[{NUM_VEC_REGS}][{VEC_LANES}] = {{{{0}}}};"
    );
    let _ = writeln!(out, "    goto bb{};", program.entry().0);

    for block in program.blocks() {
        let _ = writeln!(out, "bb{}:", block.id.0);
        for inst in &block.instructions {
            emit_instruction(&mut out, inst);
        }
        match &block.terminator {
            Terminator::Jump(target) => {
                let _ = writeln!(out, "    goto bb{};", target.0);
            }
            Terminator::Branch {
                cond,
                src1,
                src2,
                taken,
                not_taken,
            } => {
                let expr = match cond {
                    crate::BranchCond::Eq => format!("r[{}] == r[{}]", src1.0, src2.0),
                    crate::BranchCond::Ne => format!("r[{}] != r[{}]", src1.0, src2.0),
                    crate::BranchCond::Lt => {
                        format!("(int64_t)r[{}] < (int64_t)r[{}]", src1.0, src2.0)
                    }
                    crate::BranchCond::Ge => {
                        format!("(int64_t)r[{}] >= (int64_t)r[{}]", src1.0, src2.0)
                    }
                    crate::BranchCond::Ltu => format!("r[{}] < r[{}]", src1.0, src2.0),
                    crate::BranchCond::Geu => format!("r[{}] >= r[{}]", src1.0, src2.0),
                };
                let _ = writeln!(
                    out,
                    "    if ({expr}) goto bb{}; else goto bb{};",
                    taken.0, not_taken.0
                );
            }
            Terminator::Halt => {
                out.push_str("    return 0;\n");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn alu_expr(op: IntAluOp, a: &str, b: &str) -> String {
    match op {
        IntAluOp::Add => format!("{a} + {b}"),
        IntAluOp::Sub => format!("{a} - {b}"),
        IntAluOp::And => format!("{a} & {b}"),
        IntAluOp::Or => format!("{a} | {b}"),
        IntAluOp::Xor => format!("{a} ^ {b}"),
        IntAluOp::Shl => format!("{a} << ({b} & 63)"),
        IntAluOp::Shr => format!("{a} >> ({b} & 63)"),
        IntAluOp::Rotl => format!("rotl64({a}, {b})"),
        IntAluOp::Min => format!("({a} < {b} ? {a} : {b})"),
        IntAluOp::Max => format!("({a} > {b} ? {a} : {b})"),
    }
}

fn emit_instruction(out: &mut String, inst: &Instruction) {
    match inst {
        Instruction::IntAlu {
            op,
            dst,
            src1,
            src2,
        } => {
            let a = format!("r[{}]", src1.0);
            let b = format!("r[{}]", src2.0);
            let _ = writeln!(out, "    r[{}] = {};", dst.0, alu_expr(*op, &a, &b));
        }
        Instruction::IntAluImm { op, dst, src, imm } => {
            let a = format!("r[{}]", src.0);
            let b = format!("(uint64_t)(int64_t){imm}");
            let _ = writeln!(out, "    r[{}] = {};", dst.0, alu_expr(*op, &a, &b));
        }
        Instruction::IntMul {
            op,
            dst,
            src1,
            src2,
        } => match op {
            IntMulOp::Mul => {
                let _ = writeln!(out, "    r[{}] = r[{}] * r[{}];", dst.0, src1.0, src2.0);
            }
            IntMulOp::MulHi => {
                let _ = writeln!(
                    out,
                    "    r[{}] = (uint64_t)(((__uint128_t)r[{}] * (__uint128_t)r[{}]) >> 64);",
                    dst.0, src1.0, src2.0
                );
            }
        },
        Instruction::LoadImm { dst, imm } => {
            let _ = writeln!(out, "    r[{}] = (uint64_t)(int64_t){imm}LL;", dst.0);
        }
        Instruction::Fp {
            op,
            dst,
            src1,
            src2,
        } => {
            let a = format!("f[{}]", src1.0);
            let b = format!("f[{}]", src2.0);
            let expr = match op {
                FpOp::Add => format!("{a} + {b}"),
                FpOp::Sub => format!("{a} - {b}"),
                FpOp::Mul => format!("{a} * {b}"),
                FpOp::Div => format!("{a} / {b}"),
                FpOp::Min => format!("({a} < {b} ? {a} : {b})"),
                FpOp::Max => format!("({a} > {b} ? {a} : {b})"),
            };
            let _ = writeln!(out, "    f[{}] = canon({expr});", dst.0);
        }
        Instruction::FpFromInt { dst, src } => {
            let _ = writeln!(out, "    f[{}] = (double)(int64_t)r[{}];", dst.0, src.0);
        }
        Instruction::FpToInt { dst, src } => {
            let _ = writeln!(
                out,
                "    r[{}] = (uint64_t)(int64_t)canon(f[{}]);",
                dst.0, src.0
            );
        }
        Instruction::Load { dst, base, offset } => {
            let _ = writeln!(
                out,
                "    r[{}] = ld64(r[{}] + (int64_t){offset});",
                dst.0, base.0
            );
        }
        Instruction::Store { src, base, offset } => {
            let _ = writeln!(
                out,
                "    st64(r[{}] + (int64_t){offset}, r[{}]);",
                base.0, src.0
            );
        }
        Instruction::FpLoad { dst, base, offset } => {
            let _ = writeln!(
                out,
                "    {{ uint64_t t = ld64(r[{}] + (int64_t){offset}); memcpy(&f[{}], &t, 8); }}",
                base.0, dst.0
            );
        }
        Instruction::FpStore { src, base, offset } => {
            let _ = writeln!(
                out,
                "    {{ uint64_t t; memcpy(&t, &f[{}], 8); st64(r[{}] + (int64_t){offset}, t); }}",
                src.0, base.0
            );
        }
        Instruction::Vec {
            op,
            dst,
            src1,
            src2,
        } => {
            let expr = |a: String, b: String| match op {
                VecOp::Add => format!("{a} + {b}"),
                VecOp::Xor => format!("{a} ^ {b}"),
                VecOp::Mul => format!("{a} * {b}"),
                VecOp::Rotl => format!("rotl64({a}, {b})"),
            };
            let _ = writeln!(
                out,
                "    for (int l = 0; l < {VEC_LANES}; ++l) v[{}][l] = {};",
                dst.0,
                expr(format!("v[{}][l]", src1.0), format!("v[{}][l]", src2.0))
            );
        }
        Instruction::VecLoad { dst, base, offset } => {
            let _ = writeln!(
                out,
                "    for (int l = 0; l < {VEC_LANES}; ++l) v[{}][l] = ld64(r[{}] + (int64_t){offset} + 8*l);",
                dst.0, base.0
            );
        }
        Instruction::VecStore { src, base, offset } => {
            let _ = writeln!(
                out,
                "    for (int l = 0; l < {VEC_LANES}; ++l) st64(r[{}] + (int64_t){offset} + 8*l, v[{}][l]);",
                base.0, src.0
            );
        }
        Instruction::Snapshot => {
            out.push_str("    emit_snapshot(r, f);\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{FpOp, IntAluOp, IntMulOp, VecOp};
    use crate::reg::{FpReg, IntReg, VecReg};
    use crate::{BranchCond, Terminator};

    #[test]
    fn emits_all_constructs() {
        let mut b = ProgramBuilder::new(512);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), 3);
        b.int_alu(IntAluOp::Rotl, IntReg(1), IntReg(0), IntReg(0));
        b.int_alu_imm(IntAluOp::Min, IntReg(2), IntReg(1), 9);
        b.int_mul(IntMulOp::MulHi, IntReg(3), IntReg(2), IntReg(1));
        b.fp_from_int(FpReg(0), IntReg(3));
        b.fp(FpOp::Div, FpReg(1), FpReg(0), FpReg(0));
        b.fp_to_int(IntReg(4), FpReg(1));
        b.load(IntReg(5), IntReg(0), 8);
        b.store(IntReg(5), IntReg(0), 16);
        b.fp_load(FpReg(2), IntReg(0), 24);
        b.fp_store(FpReg(2), IntReg(0), 32);
        b.vec(VecOp::Mul, VecReg(0), VecReg(1), VecReg(2));
        b.vec_load(VecReg(1), IntReg(0), 64);
        b.vec_store(VecReg(1), IntReg(0), 96);
        b.snapshot();
        let exit = b.reserve_block();
        b.branch(BranchCond::Geu, IntReg(0), IntReg(1), entry, exit);
        b.begin_reserved(exit);
        b.terminate(Terminator::Halt);
        let src = emit_c_source(&b.finish(entry));

        for needle in [
            "int main(void)",
            "#define MEM_SIZE 512",
            "rotl64(r[0], r[0])",
            "__uint128_t",
            "emit_snapshot(r, f);",
            "goto bb0",
            "return 0;",
            "f[1] = canon(f[0] / f[0]);",
        ] {
            assert!(src.contains(needle), "missing {needle:?}");
        }
        // Balanced braces is a cheap well-formedness smoke test.
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }
}
