//! Compact binary encoding of widget programs.
//!
//! The encoding serves three purposes in the reproduction:
//!
//! 1. **Fingerprinting** — the PoW pipeline hashes the encoded widget so test
//!    suites can assert that a given seed always produces the identical
//!    program on every platform.
//! 2. **Size accounting** — experiment E4 reports widget code sizes alongside
//!    output sizes.
//! 3. **Transport** — a verifier could ship generated widgets to a remote
//!    checker.
//!
//! The format is little-endian, length-prefixed, and self-describing enough
//! to round-trip exactly; it is not designed for forward compatibility.

use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::{BranchCond, FpOp, Instruction, IntAluOp, IntMulOp, VecOp};
use crate::program::Program;
use crate::reg::{FpReg, IntReg, VecReg};
use std::fmt;

/// Error returned by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended before the structure was complete.
    UnexpectedEnd,
    /// An opcode or enum tag was not recognised.
    BadTag {
        /// The unrecognised tag value.
        tag: u8,
        /// What was being decoded.
        context: &'static str,
    },
    /// The magic prefix was wrong.
    BadMagic,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of encoded program"),
            DecodeError::BadTag { tag, context } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            DecodeError::BadMagic => write!(f, "missing widget program magic"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 4] = b"HCW1";

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.data.len() {
            return Err(DecodeError::UnexpectedEnd);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.u64()? as i64)
    }
}

fn alu_tag(op: IntAluOp) -> u8 {
    IntAluOp::ALL
        .iter()
        .position(|&o| o == op)
        .expect("known op") as u8
}
fn mul_tag(op: IntMulOp) -> u8 {
    IntMulOp::ALL
        .iter()
        .position(|&o| o == op)
        .expect("known op") as u8
}
fn fp_tag(op: FpOp) -> u8 {
    FpOp::ALL.iter().position(|&o| o == op).expect("known op") as u8
}
fn vec_tag(op: VecOp) -> u8 {
    VecOp::ALL.iter().position(|&o| o == op).expect("known op") as u8
}
fn cond_tag(cond: BranchCond) -> u8 {
    BranchCond::ALL
        .iter()
        .position(|&c| c == cond)
        .expect("known cond") as u8
}

fn alu_from(tag: u8) -> Result<IntAluOp, DecodeError> {
    IntAluOp::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadTag {
            tag,
            context: "int alu op",
        })
}
fn mul_from(tag: u8) -> Result<IntMulOp, DecodeError> {
    IntMulOp::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadTag {
            tag,
            context: "int mul op",
        })
}
fn fp_from(tag: u8) -> Result<FpOp, DecodeError> {
    FpOp::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadTag {
            tag,
            context: "fp op",
        })
}
fn vec_from(tag: u8) -> Result<VecOp, DecodeError> {
    VecOp::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadTag {
            tag,
            context: "vec op",
        })
}
fn cond_from(tag: u8) -> Result<BranchCond, DecodeError> {
    BranchCond::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadTag {
            tag,
            context: "branch cond",
        })
}

fn encode_instruction(w: &mut Writer, inst: &Instruction) {
    match inst {
        Instruction::IntAlu {
            op,
            dst,
            src1,
            src2,
        } => {
            w.u8(0);
            w.u8(alu_tag(*op));
            w.u8(dst.0);
            w.u8(src1.0);
            w.u8(src2.0);
        }
        Instruction::IntAluImm { op, dst, src, imm } => {
            w.u8(1);
            w.u8(alu_tag(*op));
            w.u8(dst.0);
            w.u8(src.0);
            w.i32(*imm);
        }
        Instruction::IntMul {
            op,
            dst,
            src1,
            src2,
        } => {
            w.u8(2);
            w.u8(mul_tag(*op));
            w.u8(dst.0);
            w.u8(src1.0);
            w.u8(src2.0);
        }
        Instruction::LoadImm { dst, imm } => {
            w.u8(3);
            w.u8(dst.0);
            w.i64(*imm);
        }
        Instruction::Fp {
            op,
            dst,
            src1,
            src2,
        } => {
            w.u8(4);
            w.u8(fp_tag(*op));
            w.u8(dst.0);
            w.u8(src1.0);
            w.u8(src2.0);
        }
        Instruction::FpFromInt { dst, src } => {
            w.u8(5);
            w.u8(dst.0);
            w.u8(src.0);
        }
        Instruction::FpToInt { dst, src } => {
            w.u8(6);
            w.u8(dst.0);
            w.u8(src.0);
        }
        Instruction::Load { dst, base, offset } => {
            w.u8(7);
            w.u8(dst.0);
            w.u8(base.0);
            w.i32(*offset);
        }
        Instruction::Store { src, base, offset } => {
            w.u8(8);
            w.u8(src.0);
            w.u8(base.0);
            w.i32(*offset);
        }
        Instruction::FpLoad { dst, base, offset } => {
            w.u8(9);
            w.u8(dst.0);
            w.u8(base.0);
            w.i32(*offset);
        }
        Instruction::FpStore { src, base, offset } => {
            w.u8(10);
            w.u8(src.0);
            w.u8(base.0);
            w.i32(*offset);
        }
        Instruction::Vec {
            op,
            dst,
            src1,
            src2,
        } => {
            w.u8(11);
            w.u8(vec_tag(*op));
            w.u8(dst.0);
            w.u8(src1.0);
            w.u8(src2.0);
        }
        Instruction::VecLoad { dst, base, offset } => {
            w.u8(12);
            w.u8(dst.0);
            w.u8(base.0);
            w.i32(*offset);
        }
        Instruction::VecStore { src, base, offset } => {
            w.u8(13);
            w.u8(src.0);
            w.u8(base.0);
            w.i32(*offset);
        }
        Instruction::Snapshot => {
            w.u8(14);
        }
    }
}

fn decode_instruction(r: &mut Reader<'_>) -> Result<Instruction, DecodeError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Instruction::IntAlu {
            op: alu_from(r.u8()?)?,
            dst: IntReg(r.u8()?),
            src1: IntReg(r.u8()?),
            src2: IntReg(r.u8()?),
        },
        1 => Instruction::IntAluImm {
            op: alu_from(r.u8()?)?,
            dst: IntReg(r.u8()?),
            src: IntReg(r.u8()?),
            imm: r.i32()?,
        },
        2 => Instruction::IntMul {
            op: mul_from(r.u8()?)?,
            dst: IntReg(r.u8()?),
            src1: IntReg(r.u8()?),
            src2: IntReg(r.u8()?),
        },
        3 => Instruction::LoadImm {
            dst: IntReg(r.u8()?),
            imm: r.i64()?,
        },
        4 => Instruction::Fp {
            op: fp_from(r.u8()?)?,
            dst: FpReg(r.u8()?),
            src1: FpReg(r.u8()?),
            src2: FpReg(r.u8()?),
        },
        5 => Instruction::FpFromInt {
            dst: FpReg(r.u8()?),
            src: IntReg(r.u8()?),
        },
        6 => Instruction::FpToInt {
            dst: IntReg(r.u8()?),
            src: FpReg(r.u8()?),
        },
        7 => Instruction::Load {
            dst: IntReg(r.u8()?),
            base: IntReg(r.u8()?),
            offset: r.i32()?,
        },
        8 => Instruction::Store {
            src: IntReg(r.u8()?),
            base: IntReg(r.u8()?),
            offset: r.i32()?,
        },
        9 => Instruction::FpLoad {
            dst: FpReg(r.u8()?),
            base: IntReg(r.u8()?),
            offset: r.i32()?,
        },
        10 => Instruction::FpStore {
            src: FpReg(r.u8()?),
            base: IntReg(r.u8()?),
            offset: r.i32()?,
        },
        11 => Instruction::Vec {
            op: vec_from(r.u8()?)?,
            dst: VecReg(r.u8()?),
            src1: VecReg(r.u8()?),
            src2: VecReg(r.u8()?),
        },
        12 => Instruction::VecLoad {
            dst: VecReg(r.u8()?),
            base: IntReg(r.u8()?),
            offset: r.i32()?,
        },
        13 => Instruction::VecStore {
            src: VecReg(r.u8()?),
            base: IntReg(r.u8()?),
            offset: r.i32()?,
        },
        14 => Instruction::Snapshot,
        _ => {
            return Err(DecodeError::BadTag {
                tag,
                context: "instruction",
            })
        }
    })
}

fn encode_terminator(w: &mut Writer, term: &Terminator) {
    match term {
        Terminator::Jump(target) => {
            w.u8(0);
            w.u32(target.0);
        }
        Terminator::Branch {
            cond,
            src1,
            src2,
            taken,
            not_taken,
        } => {
            w.u8(1);
            w.u8(cond_tag(*cond));
            w.u8(src1.0);
            w.u8(src2.0);
            w.u32(taken.0);
            w.u32(not_taken.0);
        }
        Terminator::Halt => w.u8(2),
    }
}

fn decode_terminator(r: &mut Reader<'_>) -> Result<Terminator, DecodeError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Terminator::Jump(BlockId(r.u32()?)),
        1 => Terminator::Branch {
            cond: cond_from(r.u8()?)?,
            src1: IntReg(r.u8()?),
            src2: IntReg(r.u8()?),
            taken: BlockId(r.u32()?),
            not_taken: BlockId(r.u32()?),
        },
        2 => Terminator::Halt,
        _ => {
            return Err(DecodeError::BadTag {
                tag,
                context: "terminator",
            })
        }
    })
}

/// Encodes a program into its canonical binary form.
///
/// # Examples
///
/// ```
/// use hashcore_isa::{ProgramBuilder, Terminator, encode, decode};
///
/// let mut b = ProgramBuilder::new(64);
/// let entry = b.begin_block();
/// b.snapshot();
/// b.terminate(Terminator::Halt);
/// let program = b.finish(entry);
///
/// let bytes = encode(&program);
/// assert_eq!(decode(&bytes).unwrap(), program);
/// ```
pub fn encode(program: &Program) -> Vec<u8> {
    let mut w = Writer { out: Vec::new() };
    w.out.extend_from_slice(MAGIC);
    w.u64(program.memory_size() as u64);
    w.u32(program.entry().0);
    w.u32(program.blocks().len() as u32);
    for block in program.blocks() {
        w.u32(block.instructions.len() as u32);
        for inst in &block.instructions {
            encode_instruction(&mut w, inst);
        }
        encode_terminator(&mut w, &block.terminator);
    }
    w.out
}

/// Decodes a program previously produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes are truncated or contain
/// unrecognised tags.
pub fn decode(bytes: &[u8]) -> Result<Program, DecodeError> {
    let mut r = Reader {
        data: bytes,
        pos: 0,
    };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let memory_size = r.u64()? as usize;
    let entry = BlockId(r.u32()?);
    let block_count = r.u32()? as usize;
    let mut blocks = Vec::with_capacity(block_count);
    for id in 0..block_count {
        let inst_count = r.u32()? as usize;
        let mut instructions = Vec::with_capacity(inst_count);
        for _ in 0..inst_count {
            instructions.push(decode_instruction(&mut r)?);
        }
        let terminator = decode_terminator(&mut r)?;
        blocks.push(BasicBlock::new(
            BlockId(id as u32),
            instructions,
            terminator,
        ));
    }
    Ok(Program::new(blocks, entry, memory_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{FpOp, IntAluOp, IntMulOp, VecOp};
    use crate::reg::{FpReg, IntReg, VecReg};

    fn rich_program() -> Program {
        let mut b = ProgramBuilder::new(4096);
        let entry = b.begin_block();
        b.load_imm(IntReg(0), -12345);
        b.int_alu(IntAluOp::Rotl, IntReg(1), IntReg(0), IntReg(0));
        b.int_alu_imm(IntAluOp::Xor, IntReg(2), IntReg(1), -7);
        b.int_mul(IntMulOp::MulHi, IntReg(3), IntReg(2), IntReg(1));
        b.fp_from_int(FpReg(0), IntReg(3));
        b.fp(FpOp::Div, FpReg(1), FpReg(0), FpReg(0));
        b.fp_to_int(IntReg(4), FpReg(1));
        b.load(IntReg(5), IntReg(0), 64);
        b.store(IntReg(5), IntReg(0), -8);
        b.fp_load(FpReg(2), IntReg(0), 128);
        b.fp_store(FpReg(2), IntReg(0), 136);
        b.vec(VecOp::Rotl, VecReg(0), VecReg(1), VecReg(2));
        b.vec_load(VecReg(3), IntReg(0), 256);
        b.vec_store(VecReg(3), IntReg(0), 288);
        b.snapshot();
        let loop_block = b.reserve_block();
        let exit = b.reserve_block();
        b.terminate(Terminator::Jump(loop_block));
        b.begin_reserved(loop_block);
        b.int_alu_imm(IntAluOp::Sub, IntReg(0), IntReg(0), 1);
        b.branch(
            crate::BranchCond::Ne,
            IntReg(0),
            IntReg(15),
            loop_block,
            exit,
        );
        b.begin_reserved(exit);
        b.snapshot();
        b.terminate(Terminator::Halt);
        b.finish(entry)
    }

    #[test]
    fn roundtrip_rich_program() {
        let p = rich_program();
        let bytes = encode(&p);
        let decoded = decode(&bytes).expect("decode");
        assert_eq!(decoded, p);
        assert!(decoded.validate().is_ok());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE....."), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&rich_program());
        for cut in [0, 3, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).expect_err("should fail");
            assert!(
                matches!(err, DecodeError::UnexpectedEnd | DecodeError::BadMagic),
                "cut={cut} err={err:?}"
            );
        }
    }

    #[test]
    fn bad_instruction_tag_detected() {
        let mut bytes = encode(&rich_program());
        // Locate the first instruction tag (after magic + memsize + entry +
        // block count + inst count) and corrupt it.
        let offset = 4 + 8 + 4 + 4 + 4;
        bytes[offset] = 0xff;
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::BadTag {
                context: "instruction",
                ..
            })
        ));
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode(&rich_program()), encode(&rich_program()));
    }

    #[test]
    fn decode_error_display() {
        assert!(DecodeError::UnexpectedEnd
            .to_string()
            .contains("unexpected end"));
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
    }
}
