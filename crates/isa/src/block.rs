//! Basic blocks and control-flow terminators.

use crate::inst::{BranchCond, Instruction};
use crate::reg::IntReg;
use std::fmt;

/// Identifier of a basic block inside a [`crate::Program`].
///
/// Block ids are dense indices into the program's block table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the index form of the id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump to another block.
    Jump(BlockId),
    /// Conditional two-way branch.
    Branch {
        /// Comparison applied to the two source registers.
        cond: BranchCond,
        /// First comparison operand.
        src1: IntReg,
        /// Second comparison operand.
        src2: IntReg,
        /// Successor when the condition holds.
        taken: BlockId,
        /// Successor when the condition does not hold.
        not_taken: BlockId,
    },
    /// Terminates widget execution.
    Halt,
}

impl Terminator {
    /// Returns the blocks this terminator can transfer control to.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(target) => vec![*target],
            Terminator::Branch {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            Terminator::Halt => Vec::new(),
        }
    }

    /// Returns `true` if the terminator is a conditional branch (the only
    /// terminator kind that exercises the branch predictor).
    pub fn is_conditional(&self) -> bool {
        matches!(self, Terminator::Branch { .. })
    }
}

/// A straight-line sequence of instructions ending in a single terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// The block's id (its index in the program block table).
    pub id: BlockId,
    /// Straight-line body instructions.
    pub instructions: Vec<Instruction>,
    /// Control-flow exit.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Creates a block with the given id, body and terminator.
    pub fn new(id: BlockId, instructions: Vec<Instruction>, terminator: Terminator) -> Self {
        Self {
            id,
            instructions,
            terminator,
        }
    }

    /// Number of dynamic operations the block contributes per execution
    /// (body instructions plus one for the terminator when it is a branch).
    pub fn len(&self) -> usize {
        self.instructions.len() + usize::from(self.terminator.is_conditional())
    }

    /// Returns `true` if the block has no body instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::IntAluOp;

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(7).to_string(), "bb7");
        assert_eq!(BlockId(7).index(), 7);
    }

    #[test]
    fn successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(Terminator::Halt.successors(), Vec::<BlockId>::new());
        let branch = Terminator::Branch {
            cond: BranchCond::Eq,
            src1: IntReg(0),
            src2: IntReg(1),
            taken: BlockId(1),
            not_taken: BlockId(2),
        };
        assert_eq!(branch.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(branch.is_conditional());
        assert!(!Terminator::Halt.is_conditional());
    }

    #[test]
    fn block_len_counts_branch() {
        let body = vec![Instruction::IntAlu {
            op: IntAluOp::Add,
            dst: IntReg(0),
            src1: IntReg(0),
            src2: IntReg(1),
        }];
        let block = BasicBlock::new(BlockId(0), body.clone(), Terminator::Halt);
        assert_eq!(block.len(), 1);
        assert!(!block.is_empty());
        let block = BasicBlock::new(
            BlockId(0),
            body,
            Terminator::Branch {
                cond: BranchCond::Ne,
                src1: IntReg(0),
                src2: IntReg(1),
                taken: BlockId(0),
                not_taken: BlockId(0),
            },
        );
        assert_eq!(block.len(), 2);
    }
}
