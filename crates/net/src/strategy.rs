//! Node behaviour strategies: honest participation and the adversaries the
//! verifier-cost argument must survive.
//!
//! A [`Strategy`] is consulted by [`Node`](crate::Node) at every behavioural
//! decision point — what to do with a freshly mined block, how far to let
//! the public chain advance before releasing withheld blocks, how to answer
//! a `GetSegment` request, and whether to fabricate traffic of its own. The
//! [`Honest`] strategy reproduces the pre-strategy node byte for byte (the
//! `honest_fingerprint_is_byte_identical_to_the_pre_strategy_node` test in
//! `sim` pins this); the adversarial strategies implement the classic
//! attacks the ROADMAP calls for:
//!
//! * [`SelfishMining`] — withhold a private chain, release just enough to
//!   orphan honest work (Eyal–Sirer state machine on the private lead),
//! * [`SegmentStalling`] — answer `GetSegment` late, partially, or never,
//!   forcing honest peers through the timeout / re-request machinery,
//! * [`SegmentSpam`] — gossip unsolicited corrupted segments, which
//!   hardened nodes drop *without* running the batched verifier,
//! * [`PoisonedSync`] — mine orphan blocks over a fabricated parent and
//!   answer the resulting sync requests with corrupted segments, so the
//!   spam lands on `validate_segment_parallel`'s rejection paths,
//! * [`TimestampSkew`] — report future-skewed block times so an adaptive
//!   difficulty rule drags the attacker's targets easier (bounded by the
//!   honest nodes' median-time-past/future-drift timestamp rule),
//! * [`DifficultyHopping`] — contribute hash power only while the branch's
//!   expected target is easy, defecting when retargeting makes blocks
//!   expensive,
//! * [`Eclipse`] — monopolise a victim's bounded peer table with sybil
//!   connections so it mines on a stale tip (topology-enabled runs only;
//!   defeated by peer scoring, anchors and anchor rotation),
//! * [`CostSteering`] — discard found blocks whose widget program is cheap
//!   to verify and publish only expensive ones, dragging the network's
//!   per-block verification bill upward (defeated by the cost-aware
//!   difficulty rule's commitment-checked admission bound),
//! * [`ProofWithholding`] — serve headers honestly but never answer a
//!   light client's proof requests, forcing it through the proof
//!   re-request rotation,
//! * [`FakeProof`] — answer proof requests with a corrupted transaction
//!   payload, caught by `verify_batch` against the committed header root
//!   and fed into the rejection taxonomy,
//! * [`Silent`] — an offline placeholder used as the baseline when proving
//!   that spam never changes honest fork choice.

use std::fmt;

/// The corruption classes invalid-segment spam cycles through — one per
/// rejection path of the segment verifier and the node's target policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Nonce rewritten: the recorded PoW digest no longer meets the target.
    BadPow,
    /// A mid-segment `prev_hash` rewritten: linkage broken.
    BrokenPrevLink,
    /// Embedded target easier than consensus: caught by the target policy
    /// before the verifier burns any hash work.
    WrongTarget,
    /// A transaction tampered with: the Merkle commitment breaks (the
    /// header — and so the block's digest — is unchanged).
    BadMerkle,
}

impl Corruption {
    /// All corruption classes, in the order spam strategies cycle them.
    pub const ALL: [Corruption; 4] = [
        Corruption::BadPow,
        Corruption::BrokenPrevLink,
        Corruption::WrongTarget,
        Corruption::BadMerkle,
    ];
}

/// What the node's miner works on during a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiningMode {
    /// Extend the local best tip (honest and selfish miners).
    Extend,
    /// Contribute no hash power (pure spammers, silent baselines).
    Off,
    /// Mine valid-PoW blocks over a fabricated unknown parent — bait that
    /// makes honest peers request a segment the adversary will poison.
    FakeOrphan,
}

/// What a node does with a block its miner just found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinedAction {
    /// Broadcast it to every reachable peer (honest behaviour).
    Announce,
    /// Keep it private; the strategy decides later when (and whether) the
    /// withheld suffix is released.
    Withhold,
}

/// How a node answers a `GetSegment` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeAction {
    /// Serve the exact missing segment (honest behaviour).
    Honest,
    /// Serve only the first `n` blocks of the segment — the wanted block
    /// never arrives, so the requester must time out and re-request.
    Prefix(usize),
    /// Serve honestly, but only after an extra delay in simulated
    /// milliseconds.
    Delay(u64),
    /// Never answer.
    Ignore,
    /// Serve a corrupted segment carrying this corruption class.
    Corrupt(Corruption),
}

/// How a full node answers a light client's `GetProof` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofAction {
    /// Serve the requested transactions with an honest batched proof.
    Honest,
    /// Never answer — the proof-withholding attack.
    Ignore,
    /// Serve the proof with one transaction payload corrupted, so the
    /// batch fails verification against the committed header root.
    Corrupt,
}

/// A node behaviour policy, consulted at every decision point.
///
/// Strategies are intentionally stateless about the chain: they see only
/// the small, pre-digested facts a real attacker's controller would (the
/// private lead, the withheld queue length) and return plain decisions; all
/// chain state stays in the [`Node`](crate::Node). That keeps one node
/// implementation serving every behaviour, with the honest path untouched.
pub trait Strategy: fmt::Debug + Send {
    /// Short identifier used in reports and scenario tables.
    fn name(&self) -> &'static str;

    /// `true` for strategies that deviate from the protocol. Adversarial
    /// nodes draw their network randomness from a separate RNG stream and
    /// are excluded from convergence accounting, so honest traffic is
    /// byte-identical with the adversary present or replaced by [`Silent`].
    fn is_adversarial(&self) -> bool {
        true
    }

    /// What the miner works on (default: extend the best tip).
    fn mining_mode(&mut self) -> MiningMode {
        MiningMode::Extend
    }

    /// Whether this node relays blocks it accepts from gossip.
    fn relays(&self) -> bool {
        true
    }

    /// Whether this node requests segments for unknown-parent blocks.
    fn syncs(&self) -> bool {
        true
    }

    /// Called when the local miner finds a block.
    fn on_mined(&mut self) -> MinedAction {
        MinedAction::Announce
    }

    /// Called after the public chain advances while `withheld` blocks are
    /// held back; `lead` is private height minus public height. Returns how
    /// many withheld blocks to release (clamped to the queue length).
    fn on_public_advance(&mut self, lead: i64, withheld: usize) -> usize {
        let _ = (lead, withheld);
        0
    }

    /// Called when a `GetSegment` request arrives from `from`.
    fn serve_segment(&mut self, from: usize) -> ServeAction {
        let _ = from;
        ServeAction::Honest
    }

    /// Called once per mining slice; `Some(class)` gossips one unsolicited
    /// corrupted segment of that class.
    fn on_slice(&mut self) -> Option<Corruption> {
        None
    }

    /// Called when a light client's `GetProof` request arrives from `from`
    /// (header serving is never strategy-gated — a proof adversary must
    /// look like a working server to attract requests).
    fn serve_proof(&mut self, from: usize) -> ProofAction {
        let _ = from;
        ProofAction::Honest
    }

    /// Simulated milliseconds this node pushes the timestamps of blocks it
    /// mines into the future (0 = report true time, the honest default).
    /// Under an adaptive difficulty rule a forward-skewed timestamp
    /// inflates the elapsed time the rule observes, making the skewed
    /// block's own target easier.
    fn timestamp_skew_ms(&self) -> u64 {
        0
    }

    /// Whether to spend this slice's hash power, given the expected
    /// attempts per block of the current mining target (default: always
    /// mine). Difficulty hoppers defect while the branch is expensive.
    fn mines_at(&mut self, expected_attempts: f64) -> bool {
        let _ = expected_attempts;
        true
    }

    /// Called when the miner finds a block whose observed verifier-cost
    /// ratio (actual over nominal verification cost) is `cost_ratio`.
    /// Returning `false` discards the block and keeps scanning — the
    /// cost-steering adversary's grinding loop. Honest miners publish
    /// every seed they find (the default).
    fn selects_seed(&mut self, cost_ratio: f64) -> bool {
        let _ = cost_ratio;
        true
    }

    /// The node whose peer table this strategy tries to monopolise, if
    /// any. Only consulted on topology-enabled runs
    /// ([`SimConfig::topology`](crate::SimConfig::topology)): the
    /// scheduler turns every mining slice of a node returning `Some` into
    /// one connection attempt against the victim. `None` (the default)
    /// attacks nobody.
    fn eclipse_target(&self) -> Option<usize> {
        None
    }
}

/// Protocol-following behaviour — the extracted pre-strategy node.
#[derive(Debug, Clone, Copy, Default)]
pub struct Honest;

impl Strategy for Honest {
    fn name(&self) -> &'static str {
        "honest"
    }

    fn is_adversarial(&self) -> bool {
        false
    }
}

/// Classic selfish mining (Eyal & Sirer): every found block is withheld;
/// when the public chain advances, release the whole private chain while
/// the lead is ≤ 1 (win outright, or force a tie the digest tie-break
/// settles), and exactly one matching block while the lead is larger.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfishMining;

impl Strategy for SelfishMining {
    fn name(&self) -> &'static str {
        "selfish-mining"
    }

    fn on_mined(&mut self) -> MinedAction {
        MinedAction::Withhold
    }

    fn on_public_advance(&mut self, lead: i64, withheld: usize) -> usize {
        if withheld == 0 {
            0
        } else if lead <= 1 {
            withheld
        } else {
            1
        }
    }
}

/// How a [`SegmentStalling`] adversary mishandles sync requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallMode {
    /// Never answer `GetSegment`.
    Ignore,
    /// Ship only the first `n` blocks of every requested segment.
    Prefix(usize),
    /// Answer honestly but this many simulated milliseconds late.
    Delay(u64),
}

/// Mines and relays honestly, but stalls every peer that tries to sync
/// through it — the withholding adversary the request-timeout machinery
/// exists for.
#[derive(Debug, Clone, Copy)]
pub struct SegmentStalling {
    /// How requests are mishandled.
    pub mode: StallMode,
}

impl Strategy for SegmentStalling {
    fn name(&self) -> &'static str {
        "segment-stalling"
    }

    fn serve_segment(&mut self, _from: usize) -> ServeAction {
        match self.mode {
            StallMode::Ignore => ServeAction::Ignore,
            StallMode::Prefix(n) => ServeAction::Prefix(n),
            StallMode::Delay(ms) => ServeAction::Delay(ms),
        }
    }
}

/// Pure unsolicited-spam flooding: no mining, no relaying, no syncing —
/// just a corrupted segment gossiped every slice, cycling the corruption
/// classes. Hardened nodes drop these without invoking the verifier, so
/// the spam provably cannot change honest fork choice (the adversary
/// proptest pins honest tips against a [`Silent`] baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct SegmentSpam {
    counter: u64,
}

impl Strategy for SegmentSpam {
    fn name(&self) -> &'static str {
        "segment-spam"
    }

    fn mining_mode(&mut self) -> MiningMode {
        MiningMode::Off
    }

    fn relays(&self) -> bool {
        false
    }

    fn syncs(&self) -> bool {
        false
    }

    fn serve_segment(&mut self, _from: usize) -> ServeAction {
        self.counter += 1;
        ServeAction::Corrupt(Corruption::ALL[(self.counter - 1) as usize % Corruption::ALL.len()])
    }

    fn on_slice(&mut self) -> Option<Corruption> {
        self.counter += 1;
        Some(Corruption::ALL[(self.counter - 1) as usize % Corruption::ALL.len()])
    }
}

/// Sync poisoning: spend real hash power mining valid-PoW blocks over a
/// fabricated parent, announce them, and answer the resulting `GetSegment`
/// requests with corrupted segments — the spam that actually lands on
/// `validate_segment_parallel`'s rejection paths and must be rejected
/// without poisoning any honest [`ForkTree`](hashcore_chain::ForkTree),
/// with the sender penalised and eventually banned.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoisonedSync {
    counter: u64,
}

impl Strategy for PoisonedSync {
    fn name(&self) -> &'static str {
        "poisoned-sync"
    }

    fn mining_mode(&mut self) -> MiningMode {
        MiningMode::FakeOrphan
    }

    fn relays(&self) -> bool {
        false
    }

    fn syncs(&self) -> bool {
        false
    }

    fn serve_segment(&mut self, _from: usize) -> ServeAction {
        self.counter += 1;
        // Never serve `WrongTarget` here: the target policy would drop the
        // segment before the verifier, and this strategy exists to exercise
        // the verifier's own rejection paths.
        const VERIFIER_CLASSES: [Corruption; 3] = [
            Corruption::BadPow,
            Corruption::BrokenPrevLink,
            Corruption::BadMerkle,
        ];
        ServeAction::Corrupt(VERIFIER_CLASSES[(self.counter - 1) as usize % 3])
    }
}

/// Timestamp-skew difficulty manipulation: mine, announce and relay like
/// an honest node, but report every mined block's timestamp `skew_ms`
/// simulated milliseconds in the future (cumulatively past an
/// already-skewed parent). An adaptive
/// [`DifficultyRule`](hashcore_chain::DifficultyRule) reads the inflated
/// gap as "blocks
/// are too slow" and hands the skewed block an easier target — so the
/// attacker mines cheaper blocks than its hash power deserves and drags
/// chain growth above the honest rate. The defence is the honest nodes'
/// timestamp-validity rule ([`TimestampRule`](crate::TimestampRule)):
/// with a future-drift bound below `skew_ms`, skewed headers are rejected
/// on arrival and the attack buys nothing.
#[derive(Debug, Clone, Copy)]
pub struct TimestampSkew {
    /// Simulated milliseconds each mined block's timestamp is pushed past
    /// the later of "now" and its parent's reported time.
    pub skew_ms: u64,
}

impl Strategy for TimestampSkew {
    fn name(&self) -> &'static str {
        "timestamp-skew"
    }

    fn timestamp_skew_ms(&self) -> u64 {
        self.skew_ms
    }
}

/// Difficulty hopping (coin hopping turned on a single chain): contribute
/// hash power only while the branch's expected target is easy — at most
/// `max_expected_attempts` per block — and defect when per-block
/// retargeting makes blocks expensive, harvesting the cheap blocks that
/// honest miners' steady work pays to re-tighten. Protocol-valid but
/// parasitic: the hopper's revenue per attempt beats the steady miners'.
#[derive(Debug, Clone, Copy)]
pub struct DifficultyHopping {
    /// Mine only while the expected attempts per block are at or below
    /// this threshold.
    pub max_expected_attempts: f64,
}

impl Strategy for DifficultyHopping {
    fn name(&self) -> &'static str {
        "difficulty-hopping"
    }

    fn mines_at(&mut self, expected_attempts: f64) -> bool {
        expected_attempts <= self.max_expected_attempts
    }
}

/// Connection monopolisation (an eclipse attack): contribute no hash
/// power and relay nothing — just dial the victim once per mining slice
/// until its bounded peer table holds only attackers. Against an
/// [`undefended`](crate::TopologyConfig::undefended) overlay (no scoring,
/// no anchors, no rotation) eviction is oldest-first, so enough sybils
/// displace every honest link and the victim mines on a stale tip.
/// Against the defended overlay the sybils relay nothing useful, so they
/// never out-score honest links, anchors are immune to their pressure,
/// and anchor rotation re-establishes honest connectivity even when a
/// table was briefly monopolised.
#[derive(Debug, Clone, Copy)]
pub struct Eclipse {
    /// The node whose connections the sybils monopolise.
    pub victim: usize,
}

impl Strategy for Eclipse {
    fn name(&self) -> &'static str {
        "eclipse"
    }

    fn mining_mode(&mut self) -> MiningMode {
        MiningMode::Off
    }

    fn relays(&self) -> bool {
        false
    }

    fn syncs(&self) -> bool {
        false
    }

    fn serve_segment(&mut self, _from: usize) -> ServeAction {
        ServeAction::Ignore
    }

    fn eclipse_target(&self) -> Option<usize> {
        Some(self.victim)
    }
}

/// Cost steering: follow the protocol everywhere except seed selection —
/// every found block whose widget program verifies cheaply is thrown away
/// and the scan continues until PoW success lands on an expensive program.
/// Against a cost-blind difficulty rule the published chain's per-block
/// verification bill inflates toward the grinder's threshold while every
/// block remains individually valid. The cost-aware rule defeats this two
/// ways: the header-committed cost EMA hardens the branch's targets, and
/// the per-block admission bound rejects blocks whose observed cost ratio
/// outruns the work their digest actually proves.
#[derive(Debug, Clone, Copy)]
pub struct CostSteering {
    /// Publish only blocks whose verifier-cost ratio is at least this
    /// multiple of nominal.
    pub min_cost_ratio: f64,
}

impl Strategy for CostSteering {
    fn name(&self) -> &'static str {
        "cost-steering"
    }

    fn selects_seed(&mut self, cost_ratio: f64) -> bool {
        cost_ratio >= self.min_cost_ratio
    }
}

/// Proof withholding: mine, relay and serve headers like an honest full
/// node — so light clients keep selecting it as a server — but never
/// answer a `GetProof` request. The light client's proof-timeout rotation
/// is the defence: the wanted proof arrives from the next server, at the
/// cost of one extra round trip per withheld request.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProofWithholding;

impl Strategy for ProofWithholding {
    fn name(&self) -> &'static str {
        "proof-withholding"
    }

    fn serve_proof(&mut self, _from: usize) -> ProofAction {
        ProofAction::Ignore
    }
}

/// Fake proofs: answer every `GetProof` with a proof whose transaction
/// payload is corrupted. The batch verifier checks the items against the
/// Merkle root committed in an already-PoW-checked header, so every fake
/// is rejected, the server penalised, and the request re-issued to the
/// next server — the committed-root check is exactly what makes light
/// clients safe against lying servers.
#[derive(Debug, Clone, Copy, Default)]
pub struct FakeProof;

impl Strategy for FakeProof {
    fn name(&self) -> &'static str {
        "fake-proof"
    }

    fn serve_proof(&mut self, _from: usize) -> ProofAction {
        ProofAction::Corrupt
    }
}

/// A dead node: no mining, no relaying, no syncing, no serving. The
/// rng-isolated baseline an adversary is swapped against when proving that
/// its traffic did not move honest fork choice.
#[derive(Debug, Clone, Copy, Default)]
pub struct Silent;

impl Strategy for Silent {
    fn name(&self) -> &'static str {
        "silent"
    }

    fn mining_mode(&mut self) -> MiningMode {
        MiningMode::Off
    }

    fn relays(&self) -> bool {
        false
    }

    fn syncs(&self) -> bool {
        false
    }

    fn serve_segment(&mut self, _from: usize) -> ServeAction {
        ServeAction::Ignore
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_is_the_identity_strategy() {
        let mut honest = Honest;
        assert!(!honest.is_adversarial());
        assert_eq!(honest.mining_mode(), MiningMode::Extend);
        assert_eq!(honest.on_mined(), MinedAction::Announce);
        assert_eq!(honest.on_public_advance(3, 5), 0);
        assert_eq!(honest.serve_segment(1), ServeAction::Honest);
        assert_eq!(honest.on_slice(), None);
        assert!(honest.relays());
        assert!(honest.syncs());
    }

    #[test]
    fn selfish_release_rule_matches_the_classic_state_machine() {
        let mut selfish = SelfishMining;
        assert_eq!(selfish.on_mined(), MinedAction::Withhold);
        // Tie (lead 0 after honest catch-up): publish everything and race.
        assert_eq!(selfish.on_public_advance(0, 1), 1);
        // Lead 1: publish everything and win outright.
        assert_eq!(selfish.on_public_advance(1, 2), 2);
        // Comfortable lead: publish exactly one matching block.
        assert_eq!(selfish.on_public_advance(2, 3), 1);
        assert_eq!(selfish.on_public_advance(7, 9), 1);
        // Nothing withheld: nothing to do.
        assert_eq!(selfish.on_public_advance(0, 0), 0);
    }

    #[test]
    fn spam_strategies_cycle_every_corruption_class() {
        let mut spam = SegmentSpam::default();
        let classes: Vec<Corruption> = (0..4)
            .map(|_| {
                spam.on_slice()
                    .expect("SegmentSpam fabricates a corruption class on every slice")
            })
            .collect();
        assert_eq!(classes, Corruption::ALL);
        let mut poison = PoisonedSync::default();
        let served: Vec<ServeAction> = (0..3).map(|_| poison.serve_segment(0)).collect();
        for action in served {
            assert!(
                !matches!(action, ServeAction::Corrupt(Corruption::WrongTarget)),
                "poisoned sync must exercise the verifier, not the target policy"
            );
        }
    }

    #[test]
    fn skew_and_hopping_use_the_new_hooks_and_stay_otherwise_honest() {
        let skew = TimestampSkew { skew_ms: 9_000 };
        assert_eq!(skew.timestamp_skew_ms(), 9_000);
        assert!(skew.is_adversarial());
        // The skewer follows the protocol everywhere else: it announces,
        // relays and syncs like an honest miner.
        let mut s = TimestampSkew { skew_ms: 9_000 };
        assert_eq!(s.mining_mode(), MiningMode::Extend);
        assert_eq!(s.on_mined(), MinedAction::Announce);
        assert!(s.relays() && s.syncs());
        assert!(s.mines_at(1e12), "skewers never defect on difficulty");

        let mut hop = DifficultyHopping {
            max_expected_attempts: 1_000.0,
        };
        assert!(hop.mines_at(999.0));
        assert!(hop.mines_at(1_000.0));
        assert!(!hop.mines_at(1_000.5));
        assert_eq!(hop.timestamp_skew_ms(), 0);
        assert!(hop.is_adversarial());
        // Honest default: never skew, never defect.
        let mut honest = Honest;
        assert_eq!(honest.timestamp_skew_ms(), 0);
        assert!(honest.mines_at(f64::INFINITY));
    }

    #[test]
    fn eclipse_targets_its_victim_and_contributes_nothing() {
        let mut eclipse = Eclipse { victim: 3 };
        assert_eq!(eclipse.eclipse_target(), Some(3));
        assert!(eclipse.is_adversarial());
        assert_eq!(eclipse.mining_mode(), MiningMode::Off);
        assert!(!eclipse.relays() && !eclipse.syncs());
        assert_eq!(eclipse.serve_segment(0), ServeAction::Ignore);
        // Every other strategy attacks nobody's connections.
        assert_eq!(Honest.eclipse_target(), None);
        assert_eq!(Silent.eclipse_target(), None);
        assert_eq!(SelfishMining.eclipse_target(), None);
    }

    #[test]
    fn proof_adversaries_attack_only_the_proof_path() {
        let mut withhold = ProofWithholding;
        assert_eq!(withhold.serve_proof(0), ProofAction::Ignore);
        assert!(withhold.is_adversarial());
        // Otherwise a convincing full node: it mines, relays, syncs and
        // serves segments and headers honestly.
        assert_eq!(withhold.mining_mode(), MiningMode::Extend);
        assert_eq!(withhold.serve_segment(0), ServeAction::Honest);
        assert!(withhold.relays() && withhold.syncs());
        let mut fake = FakeProof;
        assert_eq!(fake.serve_proof(0), ProofAction::Corrupt);
        assert!(fake.is_adversarial());
        assert!(fake.relays() && fake.syncs());
        let mut honest = Honest;
        assert_eq!(honest.serve_proof(0), ProofAction::Honest);
    }

    #[test]
    fn cost_steering_discards_cheap_seeds_and_is_otherwise_honest() {
        let mut steer = CostSteering {
            min_cost_ratio: 2.0,
        };
        assert!(!steer.selects_seed(1.0));
        assert!(!steer.selects_seed(1.999));
        assert!(steer.selects_seed(2.0));
        assert!(steer.selects_seed(3.7));
        assert!(steer.is_adversarial());
        // Everywhere else it looks like an honest miner.
        assert_eq!(steer.mining_mode(), MiningMode::Extend);
        assert_eq!(steer.on_mined(), MinedAction::Announce);
        assert_eq!(steer.serve_segment(0), ServeAction::Honest);
        assert!(steer.relays() && steer.syncs());
        // Honest miners publish every seed they find.
        let mut honest = Honest;
        assert!(honest.selects_seed(0.25));
        assert!(honest.selects_seed(100.0));
    }

    #[test]
    fn stalling_maps_modes_to_serve_actions() {
        let mut s = SegmentStalling {
            mode: StallMode::Ignore,
        };
        assert_eq!(s.serve_segment(0), ServeAction::Ignore);
        s.mode = StallMode::Prefix(2);
        assert_eq!(s.serve_segment(0), ServeAction::Prefix(2));
        s.mode = StallMode::Delay(5_000);
        assert_eq!(s.serve_segment(0), ServeAction::Delay(5_000));
        assert!(s.is_adversarial());
    }
}
