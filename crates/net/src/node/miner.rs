//! The resumable per-node miner: one scratch, one input buffer, one header
//! template whose nonce scan continues across mining slices.

use crate::strategy::{MinedAction, MiningMode};
use hashcore::{MiningInput, Target};
use hashcore_baselines::PreparedPow;
use hashcore_chain::{Block, BlockHeader, GENESIS_HASH};
use hashcore_crypto::Digest256;

use super::{Message, Node, Outgoing, Role};

/// The resumable per-worker mining state: one scratch, one input buffer,
/// one header template whose nonce scan continues across slices.
#[derive(Debug)]
pub(crate) struct Miner<S> {
    pub(crate) scratch: S,
    pub(crate) input: MiningInput,
    pub(crate) header: BlockHeader,
    pub(crate) transactions: Vec<Vec<u8>>,
    pub(crate) next_nonce: u64,
    pub(crate) template_tip: Digest256,
    pub(crate) template_valid: bool,
    pub(crate) header_bytes: Vec<u8>,
}

impl<S: Default> Miner<S> {
    pub(crate) fn new() -> Self {
        Self {
            scratch: S::default(),
            input: MiningInput::default(),
            header: BlockHeader {
                version: 1,
                prev_hash: GENESIS_HASH,
                merkle_root: [0u8; 32],
                timestamp: 0,
                target: [0u8; 32],
                nonce: 0,
            },
            transactions: Vec::new(),
            next_nonce: 0,
            template_tip: GENESIS_HASH,
            template_valid: false,
            header_bytes: Vec::new(),
        }
    }
}

/// The fabricated parent digest fake-orphan miners build over. Consensus
/// difficulty forces real digests to carry leading zero bits, so a `0xFA`
/// first byte can never collide with a stored block.
pub(crate) fn fake_parent_digest(id: usize, counter: u64) -> Digest256 {
    let mut digest = [0u8; 32];
    digest[0] = 0xFA;
    digest[1..9].copy_from_slice(&(id as u64).to_le_bytes());
    digest[9..17].copy_from_slice(&counter.to_le_bytes());
    digest
}

impl<P: PreparedPow + Sync + std::fmt::Debug> Node<P>
where
    P::Scratch: std::fmt::Debug,
{
    /// Points the miner at `prev` with a single tagged transaction,
    /// embedding `target` (the branch's expected target, or the fixed one).
    pub(crate) fn reset_template(
        &mut self,
        prev: Digest256,
        tag: String,
        timestamp: u64,
        target: Target,
        version: u32,
    ) {
        let miner = &mut self.miner;
        miner.transactions.clear();
        miner.transactions.push(tag.into_bytes());
        // Deterministic body filler: models real transaction volume so
        // bandwidth figures mean something. 0 (the default) reproduces
        // the single-tag-transaction template byte for byte.
        if self.body_bytes > 0 {
            miner.transactions.push(vec![0xAB; self.body_bytes]);
        }
        miner.header = BlockHeader {
            version,
            prev_hash: prev,
            merkle_root: Block::merkle_root(&miner.transactions),
            timestamp,
            target: *target.threshold(),
            nonce: 0,
        };
        miner.header.write_pow_input(&mut miner.header_bytes);
        miner.input.set_header(&miner.header_bytes);
        miner.next_nonce = 0;
        miner.template_tip = prev;
        miner.template_valid = true;
    }

    /// Runs one mining slice of up to `attempts` nonces at simulated time
    /// `now_ms`, returning the sends a found block (or fabricated spam)
    /// triggers.
    pub fn mine_slice(&mut self, now_ms: u64, attempts: u64) -> Vec<Outgoing> {
        // A light node never mines: its slice tick drives header sync and
        // proof requests instead.
        if self.role == Role::Light {
            return self.light_slice(now_ms);
        }
        let mut out = match self.strategy.mining_mode() {
            MiningMode::Off => Vec::new(),
            MiningMode::Extend => self.mine_extend(now_ms, attempts),
            MiningMode::FakeOrphan => self.mine_fake_orphan(attempts),
        };
        if let Some(class) = self.strategy.on_slice() {
            if let Some(message) = self.fabricate_unsolicited(class) {
                out.push(Outgoing::Gossip(message));
            }
        }
        out
    }

    /// Honest/selfish mining: extend the local best tip at the branch's
    /// expected target.
    pub(crate) fn mine_extend(&mut self, now_ms: u64, attempts: u64) -> Vec<Outgoing> {
        self.refresh_template(now_ms);
        // The scan target is whatever the template embeds — the branch's
        // expected target under an adaptive rule, the consensus target
        // under a fixed one.
        let target = Target::from_threshold(self.miner.header.target);
        // A difficulty hopper defects (spends nothing) while the branch is
        // expensive. The template is invalidated so the next slice
        // re-derives the expected target from a fresh timestamp — under an
        // adaptive rule, waiting itself makes the branch look slower and
        // the target easier, which is exactly the moment a hopper rejoins.
        if !self.strategy.mines_at(target.expected_attempts()) {
            self.miner.template_valid = false;
            return Vec::new();
        }
        let mut remaining = attempts;
        let (block, cost_ratio) = loop {
            if remaining == 0 {
                return Vec::new();
            }
            let start = self.miner.next_nonce;
            let found = {
                let Self { tree, miner, .. } = &mut *self;
                tree.pow().scan_nonce_batch(
                    &mut miner.input,
                    target,
                    start,
                    remaining,
                    &mut miner.scratch,
                )
            };
            let Some((nonce, _)) = found else {
                // Resume point per the scan-nonce wrap contract: wrapping,
                // so a long-running miner near the top of the nonce space
                // neither overflows nor rescans.
                self.miner.next_nonce = start.wrapping_add(remaining);
                return Vec::new();
            };
            remaining -= nonce.wrapping_sub(start).wrapping_add(1);
            self.miner.next_nonce = nonce.wrapping_add(1);
            let header = BlockHeader {
                nonce,
                ..self.miner.header.clone()
            };
            // Re-derive the winning seed through the cost-observing path:
            // its widget cost decides admission and seed selection.
            let (digest, cost_ratio) = self.tree.digest_and_cost_of_header(&header);
            if !self.rule().admits(target, &digest, cost_ratio) {
                // The cost-aware admission bound taxes expensive seeds; an
                // honest miner simply keeps scanning.
                self.stats.seeds_inadmissible += 1;
                continue;
            }
            if !self.strategy.selects_seed(cost_ratio) {
                // The cost-steering grind: the strategy throws away a
                // perfectly valid block because it verifies too cheaply.
                self.stats.seeds_discarded += 1;
                continue;
            }
            break (
                Block {
                    header,
                    transactions: self.miner.transactions.clone(),
                },
                cost_ratio,
            );
        };
        let outcome = self
            .tree
            .apply(block.clone())
            .expect("a locally mined block extends a stored tip");
        self.stats.blocks_mined += 1;
        self.stats.verify_cost_ratio_sum += cost_ratio;
        self.stats.verify_cost_blocks += 1;
        self.record_tip_change(&outcome);
        self.persist_block(&block);
        self.miner.template_valid = false;
        match self.strategy.on_mined() {
            MinedAction::Announce => {
                // Releases triggered by our own (now public) block go out
                // first, oldest withheld block to newest, then the block.
                let mut out = self.note_public_work(outcome.digest());
                out.push(Outgoing::Broadcast(Message::Block(block)));
                out
            }
            MinedAction::Withhold => {
                self.stats.blocks_withheld += 1;
                self.withheld.push((block, outcome.digest()));
                Vec::new()
            }
        }
    }

    /// Rebuilds the mining template if the tip moved since the last slice;
    /// otherwise the nonce scan resumes where it stopped. The template's
    /// timestamp is the current time plus the strategy's skew (cumulative
    /// past an already-skewed parent), and its target is the difficulty
    /// rule's expectation for exactly that child timestamp on the current
    /// best branch — so the block is rule-consistent by construction and
    /// only a timestamp-validity rule can catch the skew.
    ///
    /// A node that itself enforces a [`TimestampRule`] also clamps its own
    /// template to the parent window's median-time-past + 1 (Bitcoin's
    /// miner rule): accepted ancestors may sit legitimately inside the
    /// future-drift bound, and an honest block dated plainly "now" behind
    /// that median would be rejected by every honest peer.
    pub(crate) fn refresh_template(&mut self, now_ms: u64) {
        if self.miner.template_valid && self.miner.template_tip == self.tree.tip() {
            return;
        }
        let tip = self.tree.tip();
        let height = self.tree.tip_height() + 1;
        let id = self.id;
        let skew = self.strategy.timestamp_skew_ms();
        let timestamp = if skew == 0 {
            let mtp_floor = self.timestamp_rule.map_or(0, |rule| {
                self.tree
                    .median_time_past(&tip, rule.mtp_window)
                    .map_or(0, |mtp| mtp.saturating_add(1))
            });
            now_ms.max(mtp_floor)
        } else {
            let parent_ts = self.tree.tip_block().map_or(0, |b| b.header.timestamp);
            now_ms.max(parent_ts.saturating_add(1)).saturating_add(skew)
        };
        let target = self
            .tree
            .expected_child_target(&tip, timestamp)
            .unwrap_or(self.target);
        // Under a cost-aware rule the template must carry the commitment
        // the rule expects in the version word; any other rule leaves the
        // version at its legacy value.
        let version = self.tree.expected_child_version(&tip).unwrap_or(1);
        self.reset_template(
            tip,
            format!("node-{id} height-{height} at-{now_ms}ms"),
            timestamp,
            target,
            version,
        );
    }

    /// Spam mining: valid PoW over a fabricated parent. The block passes
    /// every stateless check, so honest receivers see an orphan and request
    /// its (nonexistent) ancestry — which this node answers with corrupted
    /// segments.
    pub(crate) fn mine_fake_orphan(&mut self, attempts: u64) -> Vec<Outgoing> {
        if !self.miner.template_valid {
            let parent = fake_parent_digest(self.id, self.stats.fake_orphans);
            let tag = format!("spam-{} orphan-{}", self.id, self.stats.fake_orphans);
            self.reset_template(parent, tag, 0, self.target, 1);
        }
        let target = self.target;
        let found = {
            let Self { tree, miner, .. } = &mut *self;
            tree.pow().scan_nonce_batch(
                &mut miner.input,
                target,
                miner.next_nonce,
                attempts,
                &mut miner.scratch,
            )
        };
        let Some((nonce, digest)) = found else {
            self.miner.next_nonce = self.miner.next_nonce.wrapping_add(attempts);
            return Vec::new();
        };
        let block = Block {
            header: BlockHeader {
                nonce,
                ..self.miner.header.clone()
            },
            transactions: self.miner.transactions.clone(),
        };
        self.miner.template_valid = false;
        self.stats.fake_orphans += 1;
        self.stats.spam_digests.push(digest);
        self.fabricated.insert(digest, block.clone());
        vec![Outgoing::Broadcast(Message::Block(block))]
    }
}
