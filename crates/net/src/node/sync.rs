//! Segment sync: orphan-triggered requests, the timeout/retry round-robin,
//! and batched segment validation feeding the fork tree.

use hashcore::Target;
use hashcore_baselines::PreparedPow;
use hashcore_chain::{
    cost_commitment_of, validate_segment_parallel_with_rule, ApplyOutcome, Block, ForkError,
    InvalidReason, Reorg, RuleContext, GENESIS_HASH,
};
use hashcore_crypto::Digest256;
use std::time::Instant;

use super::stats::SyncReorg;
use super::{Message, Node, Outgoing, MAX_SYNC_RETRIES};

/// A sync request in flight: who was asked, how many times the request has
/// been re-issued, and which peers already stalled *this* request (a lost
/// reply must not blacklist an honest peer for every future sync).
#[derive(Debug, Clone)]
pub(crate) struct PendingRequest {
    pub(crate) peer: usize,
    pub(crate) retries: u32,
    pub(crate) tried: Vec<usize>,
}

impl<P: PreparedPow + Sync + std::fmt::Debug> Node<P>
where
    P::Scratch: std::fmt::Debug,
{
    pub(crate) fn handle_block(&mut self, now_ms: u64, from: usize, block: Block) -> Vec<Outgoing> {
        // Branch-independent target policy: under a fixed rule every
        // protocol-following block embeds exactly the consensus threshold,
        // so a cheaper embedded target is rejected for free — before any
        // hashing. Adaptive rules have no flat expectation; their
        // branch-aware check is the fork tree's, below.
        if let Some(flat) = self.rule().flat_target() {
            if block.header.target != *flat.threshold() {
                self.stats.rejections.target_policy += 1;
                self.penalize(from);
                return Vec::new();
            }
        }
        // Timestamp validity: bounded future drift, and strictly above the
        // parent window's median-time-past when the parent chain is known.
        // (An orphan is only drift-checked here; the segment delivering
        // its ancestry re-walks the full window.)
        if !self.block_timestamp_plausible(now_ms, &block) {
            self.stats.rejections.timestamp += 1;
            self.penalize(from);
            return Vec::new();
        }
        match self.tree.apply(block.clone()) {
            Ok(outcome) if outcome.newly_stored() => {
                self.stats.blocks_accepted += 1;
                self.stats.verify_cost_ratio_sum += self.tree.cost_ratio_of(&outcome.digest());
                self.stats.verify_cost_blocks += 1;
                self.persist_block(&block);
                self.record_tip_change(&outcome);
                let mut out = self.note_public_work(outcome.digest());
                if self.strategy.relays() {
                    out.push(Outgoing::Gossip(Message::Block(block)));
                }
                out
            }
            Ok(_) => Vec::new(),
            Err(ForkError::UnknownParent { digest, .. }) => {
                if !self.strategy.syncs() {
                    return Vec::new();
                }
                // Adaptive rules have no flat pre-check, so an orphan's
                // target is only bounded here: one claiming a difficulty
                // implausibly far below the local view is counted and
                // dropped — but never penalised, since a post-partition
                // honest branch can sit beyond the slack too (see
                // ORPHAN_EASING_SLACK).
                if self.rule().flat_target().is_none() && !self.orphan_target_plausible(&block) {
                    self.stats.rejections.target_policy += 1;
                    return Vec::new();
                }
                self.request_segment(digest, from)
            }
            Err(ForkError::InvalidBlock { reason }) => {
                match reason {
                    InvalidReason::Merkle => self.stats.rejections.merkle += 1,
                    InvalidReason::Pow => self.stats.rejections.pow += 1,
                    // The rule-enforcing fork tree's branch-aware check.
                    InvalidReason::Target => self.stats.rejections.target_policy += 1,
                    // `ForkTree::apply` never reports linkage (an unknown
                    // parent is `UnknownParent`); count it as PoW abuse.
                    InvalidReason::Linkage => self.stats.rejections.pow += 1,
                }
                self.penalize(from);
                Vec::new()
            }
        }
    }

    /// Issues a segment request for orphan `want` to `peer` — once. The
    /// sender of a duplicate announcement rides on the in-flight request.
    pub(crate) fn request_segment(&mut self, want: Digest256, peer: usize) -> Vec<Outgoing> {
        if self.requested.contains_key(&want) {
            return Vec::new();
        }
        // A fresh request supersedes an earlier abandonment: replies to it
        // must be processed, not dropped as stale.
        self.abandoned.remove(&want);
        self.requested.insert(
            want,
            PendingRequest {
                peer,
                retries: 0,
                tried: Vec::new(),
            },
        );
        let mut out = vec![Outgoing::To(
            peer,
            Message::GetSegment {
                want,
                locator: self.tree.locator(),
            },
        )];
        if let Some(after_ms) = self.request_timeout_ms {
            out.push(Outgoing::Timer {
                token: want,
                after_ms,
            });
        }
        out
    }

    /// The request-timeout clock: if the awaited digest is still missing,
    /// the asked peer stalled (or the reply was lost) — exclude it and
    /// re-request from the next peer in a deterministic round-robin.
    pub fn on_timer(&mut self, token: Digest256) -> Vec<Outgoing> {
        if self.tree.contains(&token) {
            self.requested.remove(&token);
            return Vec::new();
        }
        let Some(pending) = self.requested.get(&token).cloned() else {
            return Vec::new();
        };
        self.stats.stalls_detected += 1;
        let mut tried = pending.tried;
        tried.push(pending.peer);
        let retries = pending.retries + 1;
        let candidates: Vec<usize> = (0..self.peers)
            .filter(|p| *p != self.id && !tried.contains(p) && !self.banned.contains(p))
            .collect();
        if retries > MAX_SYNC_RETRIES || candidates.is_empty() {
            self.requested.remove(&token);
            self.abandoned.insert(token);
            self.stats.requests_abandoned += 1;
            return Vec::new();
        }
        let peer = candidates[(self.id + retries as usize) % candidates.len()];
        self.requested.insert(
            token,
            PendingRequest {
                peer,
                retries,
                tried,
            },
        );
        self.stats.requests_retried += 1;
        vec![
            Outgoing::To(
                peer,
                Message::GetSegment {
                    want: token,
                    locator: self.tree.locator(),
                },
            ),
            Outgoing::Timer {
                token,
                after_ms: self
                    .request_timeout_ms
                    .expect("timers fire only when timeouts are enabled"),
            },
        ]
    }

    pub(crate) fn handle_segment(
        &mut self,
        now_ms: u64,
        from: usize,
        blocks: Vec<Block>,
    ) -> Vec<Outgoing> {
        let Some(first) = blocks.first() else {
            return Vec::new();
        };
        let anchor = first.header.prev_hash;
        // A segment whose last block is already stored brings nothing new
        // (all its blocks are that block's ancestors): skip the verifier
        // pass a raced duplicate response would otherwise re-run.
        let last = blocks.last().expect("non-empty");
        let last_digest = self.tree.digest_of(last);
        if self.tree.contains(&last_digest) {
            self.requested.remove(&last_digest);
            return Vec::new();
        }
        // A reply for a request we already gave up on: stale, not hostile.
        if self.abandoned.contains(&last_digest) {
            return Vec::new();
        }
        // Unsolicited: we never asked for this terminal block. Dropped
        // *without* running the verifier: identifying the segment costs
        // exactly one PoW evaluation (the terminal digest above — needed
        // to tell benign raced duplicates and stale replies from spam).
        // The penalty caps unknown-terminal spam at `ban_threshold`
        // evaluations per peer (the ban filter then drops their traffic
        // before any hashing); a segment ending at an already-stored block
        // is dropped silently above, so that shape keeps costing one
        // evaluation per message — the price of never penalising an
        // honest raced duplicate.
        if !self.requested.contains_key(&last_digest) {
            self.stats.rejections.unsolicited_segment += 1;
            self.penalize(from);
            return Vec::new();
        }
        // Target policy scan (branch-independent form): free, before any
        // per-block hashing — and before the anchor lookup, exactly as the
        // flat consensus check always ran.
        if let Some(flat) = self.rule().flat_target() {
            let threshold = *flat.threshold();
            if blocks.iter().any(|b| b.header.target != threshold) {
                self.stats.rejections.target_policy += 1;
                self.penalize(from);
                return Vec::new();
            }
        }
        if anchor != GENESIS_HASH && !self.tree.contains(&anchor) {
            return Vec::new();
        }
        // Branch-aware target policy: with the anchor resolved, every
        // embedded target must equal the difficulty rule's expectation
        // along the segment — still pure header arithmetic, before the
        // verifier burns any hash work. Fixed rules skip this: the flat
        // scan above already proved every target, so the walk cannot fire.
        if self.rule().flat_target().is_none() {
            let anchor_state = (anchor != GENESIS_HASH).then(|| {
                let block = self.tree.block(&anchor).expect("anchor checked above");
                (
                    Target::from_threshold(block.header.target),
                    block.header.timestamp,
                )
            });
            if !self.rule().segment_targets_valid(anchor_state, &blocks) {
                self.stats.rejections.target_policy += 1;
                self.penalize(from);
                return Vec::new();
            }
        }
        // Timestamp validity along the segment, same bounds as per-block
        // gossip.
        if !self.segment_timestamps_plausible(now_ms, anchor, &blocks) {
            self.stats.rejections.timestamp += 1;
            self.penalize(from);
            return Vec::new();
        }
        // The segment-sync hot path: the batched parallel verifier checks
        // the whole received segment before any block is applied. The
        // pending request is kept alive on rejection, so a poisoned answer
        // cannot mask a later honest one.
        // Under a cost-aware rule the pre-walk above took each block's
        // embedded commitment at face value; the verifier's rule walk now
        // re-derives every commitment from the *observed* widget costs
        // anchored at the tree's stored observation, so a segment lying
        // about its verification bill is rejected here (and the per-block
        // admission bound is enforced). Rules without a cost component
        // skip the walk entirely — the verifier runs exactly as before.
        let ctx = self.rule().cost_aware().is_some().then(|| RuleContext {
            rule: self.rule(),
            anchor: (anchor != GENESIS_HASH).then(|| {
                let block = self.tree.block(&anchor).expect("anchor checked above");
                (
                    Target::from_threshold(block.header.target),
                    block.header.timestamp,
                    cost_commitment_of(block.header.version),
                    self.tree.cost_ratio_of(&anchor),
                )
            }),
        });
        let started = Instant::now();
        let verdict = validate_segment_parallel_with_rule(
            self.tree.pow(),
            &blocks,
            self.sync_threads,
            anchor,
            ctx,
        );
        self.stats.sync_wall_seconds += started.elapsed().as_secs_f64();
        if verdict.is_err() {
            self.stats.rejections.invalid_segment += 1;
            self.penalize(from);
            return Vec::new();
        }
        self.stats.segments_synced += 1;
        self.stats.segment_blocks += blocks.len() as u64;

        let mut deepest: Option<Reorg> = None;
        let mut tip_changed = false;
        let mut out = Vec::new();
        for block in &blocks {
            // The segment validated as a whole, so individual apply errors
            // can only be duplicates raced in by gossip — skip them.
            let Ok(outcome) = self.tree.apply(block.clone()) else {
                continue;
            };
            if outcome.newly_stored() {
                self.stats.blocks_accepted += 1;
                self.stats.verify_cost_ratio_sum += self.tree.cost_ratio_of(&outcome.digest());
                self.stats.verify_cost_blocks += 1;
                self.persist_block(block);
            }
            if let ApplyOutcome::TipChanged { reorg, .. } = &outcome {
                tip_changed = true;
                if reorg.depth() > 0 {
                    self.stats.reorg_depths.push(reorg.depth());
                }
                if deepest.as_ref().is_none_or(|d| reorg.depth() > d.depth()) {
                    deepest = Some(reorg.clone());
                }
            }
            out.extend(self.note_public_work(outcome.digest()));
        }
        self.maybe_prune();
        // Requests this segment satisfied are no longer in flight.
        let Self {
            tree, requested, ..
        } = &mut *self;
        requested.retain(|digest, _| !tree.contains(digest));

        if let Some(reorg) = deepest {
            let replaces = self
                .stats
                .deepest_sync
                .as_ref()
                .is_none_or(|s| reorg.depth() > s.reorg.depth());
            if replaces {
                self.stats.deepest_sync = Some(SyncReorg {
                    segment: blocks,
                    reorg,
                });
            }
        }
        if tip_changed && self.strategy.relays() {
            if let Some(tip_block) = self.tree.tip_block() {
                out.push(Outgoing::Gossip(Message::Block(tip_block.clone())));
            }
        }
        out
    }
}
