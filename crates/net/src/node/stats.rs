//! Per-node statistics: everything the simulation's report aggregates.

use hashcore_chain::{Block, Reorg};
use hashcore_crypto::Digest256;

/// A segment sync that caused a branch switch: the segment exactly as the
/// batched verifier accepted it, and the reorg that replayed part of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncReorg {
    /// The blocks `validate_segment_parallel` accepted, in order.
    pub segment: Vec<Block>,
    /// The reorg the fork tree performed while applying them.
    pub reorg: Reorg,
}

/// Per-peer rejection accounting: one counter per rejection class of the
/// hardened message handlers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectionCounts {
    /// Blocks whose Merkle root does not commit to their transactions.
    pub merkle: u64,
    /// Blocks whose PoW digest misses their embedded target.
    pub pow: u64,
    /// Blocks or segments embedding a target other than the one the
    /// difficulty rule expects at their branch position.
    pub target_policy: u64,
    /// Blocks or segments whose reported timestamps violate the
    /// [`TimestampRule`](super::TimestampRule) (future drift or median-time-past).
    pub timestamp: u64,
    /// Segments that answered no in-flight request — dropped *without*
    /// running the verifier.
    pub unsolicited_segment: u64,
    /// Solicited segments the batched verifier rejected.
    pub invalid_segment: u64,
    /// Messages dropped because the sender is banned.
    pub from_banned: u64,
    /// Batched Merkle proofs that failed verification against the
    /// committed header root (fake-proof adversaries land here).
    pub invalid_proof: u64,
    /// `Proof` responses that answered no in-flight proof request.
    pub unsolicited_proof: u64,
}

impl RejectionCounts {
    /// Total rejected messages across every class.
    pub fn total(&self) -> u64 {
        self.merkle
            + self.pow
            + self.target_policy
            + self.timestamp
            + self.unsolicited_segment
            + self.invalid_segment
            + self.from_banned
            + self.invalid_proof
            + self.unsolicited_proof
    }
}

impl std::ops::AddAssign for RejectionCounts {
    fn add_assign(&mut self, other: Self) {
        let Self {
            merkle,
            pow,
            target_policy,
            timestamp,
            unsolicited_segment,
            invalid_segment,
            from_banned,
            invalid_proof,
            unsolicited_proof,
        } = other;
        self.merkle += merkle;
        self.pow += pow;
        self.target_policy += target_policy;
        self.timestamp += timestamp;
        self.unsolicited_segment += unsolicited_segment;
        self.invalid_segment += invalid_segment;
        self.from_banned += from_banned;
        self.invalid_proof += invalid_proof;
        self.unsolicited_proof += unsolicited_proof;
    }
}

/// Per-node counters the simulation report aggregates.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Blocks this node mined itself (including withheld ones).
    pub blocks_mined: u64,
    /// Blocks first stored via gossip or sync (not mined locally).
    pub blocks_accepted: u64,
    /// Depth of every non-trivial reorg (≥ 1 block detached), in order.
    pub reorg_depths: Vec<usize>,
    /// Segments validated through `validate_segment_parallel`.
    pub segments_synced: u64,
    /// Total blocks across those segments.
    pub segment_blocks: u64,
    /// Wall-clock seconds spent inside segment validation (not simulated
    /// time — this measures real verifier throughput).
    pub sync_wall_seconds: f64,
    /// The deepest reorg a segment sync caused, with the segment that
    /// carried it — the witness that reorgs replay verifier-accepted blocks.
    pub deepest_sync: Option<SyncReorg>,
    /// Mined blocks kept private by the strategy.
    pub blocks_withheld: u64,
    /// Withheld blocks later released to the network.
    pub blocks_released: u64,
    /// Withheld blocks abandoned because the public chain overtook them.
    pub withheld_abandoned: u64,
    /// Valid-PoW bait blocks mined over a fabricated parent.
    pub fake_orphans: u64,
    /// Corrupted segments this node fabricated (solicited or gossiped).
    pub spam_segments_sent: u64,
    /// PoW digests of every fabricated or header-corrupted block this node
    /// sent — the list honest fork trees are audited against.
    pub spam_digests: Vec<Digest256>,
    /// Rejected incoming messages, by class.
    pub rejections: RejectionCounts,
    /// Sync requests that timed out (the asked peer stalled or the reply
    /// was lost).
    pub stalls_detected: u64,
    /// Timed-out requests re-issued to a different peer.
    pub requests_retried: u64,
    /// Requests abandoned after exhausting every retry.
    pub requests_abandoned: u64,
    /// Peers this node banned for repeated invalid traffic.
    pub peers_banned: u64,
    /// Blocks evicted by fork-tree pruning.
    pub blocks_pruned: u64,
    /// Times this node crash-restarted from its persistent store.
    pub crash_restarts: u64,
    /// Crash-restarts whose recovered tree fingerprint matched the
    /// pre-crash tree exactly (always, unless log bytes were lost).
    pub recoveries_identical: u64,
    /// Log records re-applied on top of recovered snapshots.
    pub blocks_replayed: u64,
    /// Torn/corrupt log bytes recovery discarded across every restart.
    pub recovery_lost_bytes: u64,
    /// Exact serialized bytes this node put on the wire
    /// ([`Message::wire_size`](super::Message::wire_size) of every
    /// delivered send).
    pub bytes_sent: u64,
    /// Exact serialized bytes delivered to this node.
    pub bytes_received: u64,
    /// Headers a light client accepted into its header chain.
    pub headers_accepted: u64,
    /// Header items this full node served across `Headers` responses.
    pub headers_served: u64,
    /// Batched proofs this full node served.
    pub proofs_served: u64,
    /// Batched proofs this light client verified against a committed
    /// header root.
    pub proofs_verified: u64,
    /// Proof requests re-issued after a timeout or a failed verification.
    pub proof_retries: u64,
    /// Proof requests this node's strategy deliberately left unanswered.
    pub proofs_withheld: u64,
    /// Corrupted proofs this node's strategy served.
    pub fake_proofs_sent: u64,
    /// Proof requests refused because the requester exhausted its per-peer
    /// serving quota.
    pub quota_refusals: u64,
    /// Hash evaluations spent verifying: one per light header digest, plus
    /// one per leaf and shipped node of every batch verification — the
    /// verify-CPU cost model of the light-client workload.
    pub verify_hash_ops: u64,
    /// Raw transaction bytes this light client proved against header
    /// commitments.
    pub tx_bytes_proved: u64,
    /// PoW-winning seeds this node's strategy discarded for verifying too
    /// cheaply (the cost-steering grind).
    pub seeds_discarded: u64,
    /// PoW-winning seeds the cost-aware admission bound rejected before
    /// the block was ever built.
    pub seeds_inadmissible: u64,
    /// Sum of verifier-cost ratios (observed over nominal) across every
    /// block this node stored, mined or received.
    pub verify_cost_ratio_sum: f64,
    /// Blocks behind [`verify_cost_ratio_sum`](Self::verify_cost_ratio_sum).
    pub verify_cost_blocks: u64,
}
