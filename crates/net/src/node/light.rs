//! The light-client role: header-first sync and batched-proof verification.
//!
//! A light node never executes block bodies. It maintains a
//! [`HeaderChain`] (same `(work, digest)` fork choice as the full nodes'
//! `ForkTree`, headers only), syncs it with `GetHeaders`/`Headers`
//! round-trips against full-node servers, and verifies the transactions it
//! cares about with batched Merkle inclusion proofs checked against the
//! `merkle_root` committed in an already-PoW-checked header — so a lying
//! server cannot forge inclusion, only withhold (defeated by rotating to
//! the next server) or serve garbage (detected, penalised, re-requested).
//!
//! Everything is driven off the slice tick the scheduler already delivers
//! to every node, and server selection is a deterministic rotation — no
//! randomness, so light traffic replays byte-identically.

use hashcore_baselines::PreparedPow;
use hashcore_chain::{
    BlockHeader, DifficultyRule, ForkError, HeaderChain, HeaderOutcome, InvalidReason, GENESIS_HASH,
};
use hashcore_crypto::{BatchProof, Digest256, MerkleTree};
use std::collections::BTreeSet;

use super::{Message, Node, Outgoing, Role, MAX_HEADERS_PER_MSG};

/// Configuration for a node taking the [`Role::Light`] role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LightConfig {
    /// Node ids of the full nodes this client requests headers and proofs
    /// from (rotated deterministically).
    pub servers: Vec<usize>,
    /// Simulated milliseconds before an unanswered header or proof request
    /// is re-issued to the next server.
    pub request_timeout_ms: u64,
    /// Transaction leaf indices this client proves for every new tip;
    /// empty disables proof requests (header-only client).
    pub proof_indices: Vec<u32>,
}

/// A proof request in flight: which block, when, and who was asked.
#[derive(Debug, Clone)]
pub(crate) struct ProofRequest {
    pub(crate) block: Digest256,
    pub(crate) sent_ms: u64,
    pub(crate) server: usize,
}

/// Per-node light-client state, present when the node's role is
/// [`Role::Light`].
#[derive(Debug)]
pub(crate) struct LightState {
    /// Header-only fork choice — the light client's entire chain view.
    pub(crate) headers: HeaderChain,
    /// Full-node server ids, rotated deterministically.
    pub(crate) servers: Vec<usize>,
    /// Leaf indices proven for every new tip.
    pub(crate) proof_indices: Vec<u32>,
    /// Request re-issue timeout in simulated milliseconds.
    pub(crate) request_timeout_ms: u64,
    /// Rotation cursor into `servers`.
    pub(crate) next_server: usize,
    /// An unanswered `GetHeaders`: `(sent_ms, server)`.
    pub(crate) headers_inflight: Option<(u64, usize)>,
    /// An unanswered `GetProof`.
    pub(crate) proof_inflight: Option<ProofRequest>,
    /// The last tip whose proof batch verified.
    pub(crate) proved_tip: Digest256,
    /// Servers that served an invalid proof — never asked again (the
    /// client-local complement of the shared penalty/ban machinery).
    pub(crate) bad_servers: BTreeSet<usize>,
}

impl LightState {
    pub(crate) fn new(config: LightConfig, id: usize, rule: Option<DifficultyRule>) -> Self {
        let headers = match rule {
            Some(rule) => HeaderChain::with_rule(rule),
            None => HeaderChain::new(),
        };
        let next_server = if config.servers.is_empty() {
            0
        } else {
            id % config.servers.len()
        };
        Self {
            headers,
            servers: config.servers,
            proof_indices: config.proof_indices,
            request_timeout_ms: config.request_timeout_ms,
            next_server,
            headers_inflight: None,
            proof_inflight: None,
            proved_tip: GENESIS_HASH,
            bad_servers: BTreeSet::new(),
        }
    }

    /// The next server in the rotation, skipping ones that served invalid
    /// proofs (unless every server did — then the client has no better
    /// option than round-robin over all of them). `None` with no servers.
    pub(crate) fn pick_server(&mut self) -> Option<usize> {
        if self.servers.is_empty() {
            return None;
        }
        for _ in 0..self.servers.len() {
            let server = self.servers[self.next_server % self.servers.len()];
            self.next_server = (self.next_server + 1) % self.servers.len();
            if !self.bad_servers.contains(&server) {
                return Some(server);
            }
        }
        let server = self.servers[self.next_server % self.servers.len()];
        self.next_server = (self.next_server + 1) % self.servers.len();
        Some(server)
    }
}

impl<P: PreparedPow + Sync + std::fmt::Debug> Node<P>
where
    P::Scratch: std::fmt::Debug,
{
    /// The light client's slice tick: bootstrap the header sync, re-issue
    /// timed-out header or proof requests to the next server, and keep the
    /// tip's transactions proven. Replaces mining for [`Role::Light`]
    /// nodes.
    pub(crate) fn light_slice(&mut self, now_ms: u64) -> Vec<Outgoing> {
        let Some(light) = self.light.as_mut() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let timeout = light.request_timeout_ms;
        // Header sync: bootstrap once, then re-issue on timeout.
        let headers_stalled = match light.headers_inflight {
            None => light.headers.is_empty(),
            Some((sent_ms, _)) => now_ms.saturating_sub(sent_ms) >= timeout,
        };
        if headers_stalled {
            if light.headers_inflight.take().is_some() {
                self.stats.stalls_detected += 1;
                self.stats.requests_retried += 1;
            }
            if let Some(server) = light.pick_server() {
                let locator = light.headers.locator();
                light.headers_inflight = Some((now_ms, server));
                out.push(Outgoing::To(server, Message::GetHeaders { locator }));
            }
        }
        // Proof of the current tip: request once per new tip, re-issue on
        // timeout.
        let light = self.light.as_mut().expect("checked above");
        if !light.proof_indices.is_empty() {
            let tip = light.headers.tip();
            match &light.proof_inflight {
                Some(req) if now_ms.saturating_sub(req.sent_ms) >= timeout => {
                    light.proof_inflight = None;
                    self.stats.proof_retries += 1;
                    out.extend(self.request_proof(now_ms, tip));
                }
                None if tip != GENESIS_HASH && light.proved_tip != tip => {
                    out.extend(self.request_proof(now_ms, tip));
                }
                _ => {}
            }
        }
        out
    }

    /// Issues a `GetProof` for `block` to the next good server.
    fn request_proof(&mut self, now_ms: u64, block: Digest256) -> Vec<Outgoing> {
        let Some(light) = self.light.as_mut() else {
            return Vec::new();
        };
        let Some(server) = light.pick_server() else {
            return Vec::new();
        };
        let indices = light.proof_indices.clone();
        light.proof_inflight = Some(ProofRequest {
            block,
            sent_ms: now_ms,
            server,
        });
        vec![Outgoing::To(server, Message::GetProof { block, indices })]
    }

    /// Handles a `Headers` response (or a single-header announcement):
    /// digest-check, timestamp-check and accept each header in order,
    /// requesting catch-up or follow-on batches as needed. Full nodes
    /// ignore stray `Headers` traffic.
    pub(crate) fn handle_headers(
        &mut self,
        now_ms: u64,
        from: usize,
        headers: Vec<BlockHeader>,
    ) -> Vec<Outgoing> {
        if self.role != Role::Light || self.light.is_none() {
            return Vec::new();
        }
        let batch_len = headers.len();
        // Only the awaited server's reply clears the in-flight request;
        // stray announcements must not cancel a catch-up.
        if let Some((_, server)) = self.light.as_ref().expect("light role").headers_inflight {
            if server == from {
                self.light.as_mut().expect("light role").headers_inflight = None;
            }
        }
        let mut out = Vec::new();
        let tip_before = self.light.as_ref().expect("light role").headers.tip();
        for header in headers {
            // Hashing a HashCore header runs its widget program anyway, so
            // the verifier-cost observation the cost-aware rule needs comes
            // free with the digest.
            let (digest, cost_ratio) = self.tree.digest_and_cost_of_header(&header);
            self.stats.verify_hash_ops += 1;
            if !self.header_timestamp_plausible(now_ms, &header) {
                self.stats.rejections.timestamp += 1;
                self.penalize(from);
                break;
            }
            let light = self.light.as_mut().expect("light role");
            match light.headers.accept_observed(header, digest, cost_ratio) {
                Ok(HeaderOutcome::AlreadyKnown) => {}
                Ok(HeaderOutcome::TipChanged { .. }) | Ok(HeaderOutcome::SideChain) => {
                    self.stats.headers_accepted += 1;
                    self.stats.verify_cost_ratio_sum += cost_ratio;
                    self.stats.verify_cost_blocks += 1;
                }
                Err(ForkError::UnknownParent { .. }) => {
                    // A gap: catch up from the sender, starting at our
                    // locator. The announced header itself arrives again
                    // in the response.
                    let locator = light.headers.locator();
                    light.headers_inflight = Some((now_ms, from));
                    out.push(Outgoing::To(from, Message::GetHeaders { locator }));
                    break;
                }
                Err(ForkError::InvalidBlock { reason }) => {
                    match reason {
                        InvalidReason::Target => self.stats.rejections.target_policy += 1,
                        _ => self.stats.rejections.pow += 1,
                    }
                    self.penalize(from);
                    break;
                }
            }
        }
        // A full batch means the server had more: stream the next one.
        let light = self.light.as_mut().expect("light role");
        if batch_len == MAX_HEADERS_PER_MSG && light.headers_inflight.is_none() {
            let locator = light.headers.locator();
            light.headers_inflight = Some((now_ms, from));
            out.push(Outgoing::To(from, Message::GetHeaders { locator }));
        }
        // The tip moved: prove its transactions. An in-flight request is
        // never abandoned — its reply must find someone awaiting it, or a
        // fake batch limping in late would count as unsolicited instead
        // of invalid. The newer tip is chased once this round trip ends.
        let tip = light.headers.tip();
        if tip != tip_before
            && !light.proof_indices.is_empty()
            && light.proved_tip != tip
            && light.proof_inflight.is_none()
        {
            out.extend(self.request_proof(now_ms, tip));
        }
        out
    }

    /// Handles a `Proof` response: verify the batch against the Merkle
    /// root committed in the (already PoW-checked) header. A bad batch is
    /// rejected, the server penalised and locally blacklisted, and the
    /// proof re-requested from the next server.
    pub(crate) fn handle_proof(
        &mut self,
        now_ms: u64,
        from: usize,
        block: Digest256,
        leaf_count: u32,
        items: Vec<(u32, Vec<u8>)>,
        nodes: Vec<Digest256>,
    ) -> Vec<Outgoing> {
        let Some(light) = self.light.as_mut() else {
            // Full nodes are never asked for proofs they requested.
            self.stats.rejections.unsolicited_proof += 1;
            return Vec::new();
        };
        // Penalty-free drop for answers nobody awaits: a late reply after
        // a re-request must not smear an honest, merely slow server.
        let solicited = matches!(
            &light.proof_inflight,
            Some(req) if req.block == block && req.server == from
        );
        if !solicited {
            self.stats.rejections.unsolicited_proof += 1;
            return Vec::new();
        }
        light.proof_inflight = None;
        let Some(header) = light.headers.header(&block) else {
            self.stats.rejections.unsolicited_proof += 1;
            return Vec::new();
        };
        let root = header.merkle_root;
        // The served indices must be exactly ones we asked for.
        let requested: BTreeSet<u32> = light.proof_indices.iter().copied().collect();
        let indices_ok = !items.is_empty() && items.iter().all(|(idx, _)| requested.contains(idx));
        let refs: Vec<(usize, &[u8])> = items
            .iter()
            .map(|(idx, tx)| (*idx as usize, tx.as_slice()))
            .collect();
        let proof = BatchProof { leaf_count, nodes };
        self.stats.verify_hash_ops += 1 + refs.len() as u64 + proof.nodes.len() as u64;
        if indices_ok && MerkleTree::verify_batch(root, &refs, &proof) {
            self.stats.proofs_verified += 1;
            self.stats.tx_bytes_proved += items.iter().map(|(_, tx)| tx.len() as u64).sum::<u64>();
            let light = self.light.as_mut().expect("light role");
            light.proved_tip = block;
            Vec::new()
        } else {
            self.stats.rejections.invalid_proof += 1;
            self.penalize(from);
            let light = self.light.as_mut().expect("light role");
            light.bad_servers.insert(from);
            self.stats.proof_retries += 1;
            // Re-request for whatever the tip is *now* — the chain may
            // have moved past `block` during the failed round trip.
            let tip = light.headers.tip();
            self.request_proof(now_ms, tip)
        }
    }

    /// Future-drift plus median-time-past over the light header chain —
    /// the same [`TimestampRule`](super::TimestampRule) full nodes apply,
    /// evaluated against headers instead of blocks.
    fn header_timestamp_plausible(&self, now_ms: u64, header: &BlockHeader) -> bool {
        let Some(rule) = self.timestamp_rule else {
            return true;
        };
        if header.timestamp > now_ms.saturating_add(rule.max_future_drift_ms) {
            return false;
        }
        let light = self.light.as_ref().expect("light role");
        if header.prev_hash != GENESIS_HASH && light.headers.contains(&header.prev_hash) {
            if let Some(mtp) = light
                .headers
                .median_time_past(&header.prev_hash, rule.mtp_window)
            {
                if header.timestamp <= mtp {
                    return false;
                }
            }
        }
        true
    }
}
