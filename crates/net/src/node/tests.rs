use super::*;
use crate::strategy::{FakeProof, PoisonedSync, ProofWithholding, SegmentSpam, SelfishMining};
use crate::strategy::{Honest, Strategy};
use hashcore::Target;
use hashcore_baselines::Sha256dPow;
use hashcore_chain::{Block, BlockHeader, DifficultyRule, GENESIS_HASH};
use hashcore_store::ChainStore;
use std::io;

fn node(id: usize) -> Node<Sha256dPow> {
    Node::new(id, Sha256dPow, Target::from_leading_zero_bits(2), 2)
}

/// An adaptive-difficulty node: EMA rule over the trivial initial
/// target, optionally with the timestamp validity rule.
fn adaptive_node(
    id: usize,
    strategy: Box<dyn Strategy>,
    timestamp_rule: Option<TimestampRule>,
) -> Node<Sha256dPow> {
    let initial = Target::from_leading_zero_bits(2);
    let rule = DifficultyRule::Ema(hashcore_chain::EmaRetarget {
        initial,
        target_block_time: 1_000.0,
        gain: 0.5,
    });
    Node::new(id, Sha256dPow, initial, 2)
        .with_difficulty(rule, timestamp_rule)
        .with_strategy(strategy)
}

/// Mines until `node` finds and announces a block, returning it.
fn mine_one(node: &mut Node<Sha256dPow>, now_ms: u64) -> Block {
    for _ in 0..100_000 {
        let out = node.mine_slice(now_ms, 1_000);
        if let Some(Outgoing::Broadcast(Message::Block(b))) = out.first().cloned() {
            return b;
        }
    }
    panic!("no block found at trivial difficulty");
}

#[test]
fn mining_resumes_across_slices() {
    let mut a = node(0);
    // Tiny slices: the search must carry `next_nonce` across calls and
    // eventually find the same block one big slice would.
    let mut sliced = Vec::new();
    for _ in 0..64 {
        sliced = a.mine_slice(5, 1);
        if !sliced.is_empty() {
            break;
        }
    }
    let mut b = node(0);
    let bulk = b.mine_slice(5, 64);
    assert_eq!(sliced, bulk);
    assert_eq!(a.tip(), b.tip());
    assert_eq!(a.stats().blocks_mined, 1);
}

#[test]
fn gossiped_blocks_are_stored_and_relayed_once() {
    let mut miner = node(0);
    let mut listener = node(1);
    let out = miner.mine_slice(0, 10_000);
    let Some(Outgoing::Broadcast(Message::Block(block))) = out.first().cloned() else {
        panic!("mining broadcasts the block");
    };
    let relays = listener.handle(0, 0, Message::Block(block.clone()));
    assert_eq!(
        relays,
        vec![Outgoing::Gossip(Message::Block(block.clone()))]
    );
    assert_eq!(listener.tip(), miner.tip());
    // Duplicate delivery: no relay storm.
    assert!(listener.handle(0, 0, Message::Block(block)).is_empty());
    assert_eq!(listener.stats().blocks_accepted, 1);
}

#[test]
fn unknown_parent_triggers_segment_sync() {
    let mut miner = node(0);
    let mut fresh = node(1);
    // Mine three blocks; only announce the last to the fresh node.
    let mut announced = None;
    for _ in 0..3 {
        announced = Some(mine_one(&mut miner, 0));
    }
    let tip_block = announced.expect("mined three blocks");
    let request = fresh.handle(0, 0, Message::Block(tip_block));
    let Some(Outgoing::To(0, get @ Message::GetSegment { .. })) = request.first().cloned() else {
        panic!("unknown parent must request a segment, got {request:?}");
    };
    let response = miner.handle(0, 1, get);
    let Some(Outgoing::To(1, segment @ Message::Segment(_))) = response.first().cloned() else {
        panic!("the miner serves the missing segment, got {response:?}");
    };
    fresh.handle(0, 0, segment);
    assert_eq!(fresh.tip(), miner.tip());
    assert_eq!(fresh.stats().segments_synced, 1);
    assert_eq!(fresh.stats().segment_blocks, 3);
}

#[test]
fn selfish_miner_withholds_then_releases_on_competition() {
    let mut selfish = node(0).with_strategy(Box::new(SelfishMining));
    let mut honest = node(1);
    // The selfish miner builds a private lead of two: nothing is
    // broadcast, and it keeps mining on its own withheld tip.
    while selfish.withheld_len() < 2 {
        let out = selfish.mine_slice(0, 1_000);
        assert!(out.is_empty(), "withheld blocks must not be announced");
    }
    assert_eq!(selfish.stats().blocks_withheld, 2);
    assert_eq!(selfish.tip_height(), 2, "mines on its private chain");

    // An honest block arrives at height 1: the lead drops to 1, so the
    // classic rule releases the whole private chain and wins outright
    // (its two blocks out-work the public one).
    let honest_block = mine_one(&mut honest, 7);
    let out = selfish.handle(0, 1, Message::Block(honest_block));
    let released = out
        .iter()
        .filter(|o| matches!(o, Outgoing::Broadcast(Message::Block(_))))
        .count();
    assert_eq!(released, 2, "lead 1 publishes the private chain: {out:?}");
    assert_eq!(selfish.withheld_len(), 0);
    assert_eq!(selfish.stats().blocks_released, 2);
    // The selfish branch stays the local tip (more cumulative work).
    assert_eq!(selfish.tip_height(), 2);
}

#[test]
fn selfish_miner_abandons_a_losing_private_chain() {
    let mut selfish = node(0).with_strategy(Box::new(SelfishMining));
    let mut honest = node(1);
    // One withheld block...
    while selfish.withheld_len() < 1 {
        selfish.mine_slice(0, 1_000);
    }
    // ...but the public chain reaches height 2: the fork tree switches
    // to the public branch and the private block is abandoned.
    let b1 = mine_one(&mut honest, 3);
    let b2 = mine_one(&mut honest, 9);
    selfish.handle(0, 1, Message::Block(b1));
    selfish.handle(0, 1, Message::Block(b2));
    // Depending on the height-1 digest tie-break the private block was
    // either released into the (lost) race or abandoned outright —
    // both end with the private queue empty and the public chain
    // adopted.
    assert_eq!(selfish.withheld_len(), 0);
    assert_eq!(
        selfish.stats().blocks_released + selfish.stats().withheld_abandoned,
        1
    );
    assert_eq!(selfish.tip(), honest.tip(), "adopted the public chain");
}

#[test]
fn spam_strategy_mines_nothing_and_gossips_corrupt_segments() {
    let mut spammer = node(0).with_strategy(Box::new(SegmentSpam::default()));
    let mut honest = node(1);
    // Give the spammer a real block to corrupt.
    let block = mine_one(&mut honest, 0);
    spammer.handle(0, 1, Message::Block(block));
    assert_eq!(spammer.stats().blocks_mined, 0);
    let out = spammer.mine_slice(100, 1_000);
    assert_eq!(out.len(), 1, "one spam gossip per slice");
    let Some(Outgoing::Gossip(Message::Segment(segment))) = out.first().cloned() else {
        panic!("spam must be an unsolicited segment, got {out:?}");
    };
    assert!(!segment.is_empty());
    assert!(spammer.stats().spam_segments_sent >= 1);
}

#[test]
fn poisoned_sync_baits_with_fake_orphans_and_serves_corruption() {
    let mut poisoner = node(0).with_strategy(Box::new(PoisonedSync::default()));
    let mut victim = node(1).with_limits(3, Some(2_000), 3, None);
    // Both sides share two real blocks (gossip in the simulation), so
    // the poisoner has a basis to corrupt and the victim knows the
    // anchor the corrupted segment will claim.
    let mut honest = node(2);
    for now in [0u64, 5] {
        let block = mine_one(&mut honest, now);
        poisoner.handle(0, 2, Message::Block(block.clone()));
        victim.handle(0, 2, Message::Block(block));
    }
    // Bait block: valid PoW over a fabricated parent.
    let bait = loop {
        let out = poisoner.mine_slice(0, 10_000);
        if let Some(Outgoing::Broadcast(Message::Block(b))) = out.first().cloned() {
            break b;
        }
    };
    assert_eq!(poisoner.stats().fake_orphans, 1);
    // The victim sees an orphan and requests the segment.
    let request = victim.handle(0, 0, Message::Block(bait));
    let Some(Outgoing::To(0, get @ Message::GetSegment { .. })) = request.first().cloned() else {
        panic!("bait must trigger a segment request, got {request:?}");
    };
    assert!(
        matches!(request.get(1), Some(Outgoing::Timer { .. })),
        "timeouts enabled: the request must arm a timer"
    );
    // The poisoner answers with a corrupted segment...
    let response = poisoner.handle(0, 1, get);
    let Some(Outgoing::To(1, segment @ Message::Segment(_))) = response.first().cloned() else {
        panic!("poisoner must serve a corrupt segment, got {response:?}");
    };
    // ...which the victim's verifier rejects without storing anything.
    let before = victim.tree().len();
    let out = victim.handle(0, 0, segment);
    assert!(out.is_empty());
    assert_eq!(victim.tree().len(), before);
    assert_eq!(victim.stats().segments_synced, 0);
    assert_eq!(victim.stats().rejections.invalid_segment, 1);
    // No spam digest ever lands in the victim's tree.
    for digest in &poisoner.stats().spam_digests {
        assert!(!victim.tree().contains(digest));
    }
}

#[test]
fn repeated_invalid_traffic_gets_a_peer_banned() {
    let mut victim = node(1).with_limits(3, None, 2, None);
    let mut honest = node(0);
    let block = mine_one(&mut honest, 0);
    // Two forged variants: penalties 1 and 2 → ban at threshold 2.
    for tag in [b"forge-a".to_vec(), b"forge-b".to_vec()] {
        let mut forged = block.clone();
        forged.transactions.push(tag);
        assert!(victim.handle(0, 2, Message::Block(forged)).is_empty());
    }
    assert_eq!(victim.stats().rejections.merkle, 2);
    assert_eq!(victim.stats().peers_banned, 1);
    assert!(victim.banned_peers().contains(&2));
    // Even a valid block from the banned peer is now ignored...
    assert!(victim
        .handle(0, 2, Message::Block(block.clone()))
        .is_empty());
    assert_eq!(victim.stats().rejections.from_banned, 1);
    assert_eq!(victim.tree().len(), 0);
    // ...while the same block from a clean peer is accepted.
    assert!(!victim.handle(0, 0, Message::Block(block)).is_empty());
    assert_eq!(victim.tree().len(), 1);
}

#[test]
fn wrong_target_blocks_are_rejected_by_policy() {
    let mut victim = node(1).with_limits(3, None, 0, None);
    let mut cheap = Node::<Sha256dPow>::new(0, Sha256dPow, Target::from_leading_zero_bits(0), 2);
    let block = mine_one(&mut cheap, 0);
    // Valid PoW at its own (trivial) target — but not the consensus one.
    assert!(victim.handle(0, 0, Message::Block(block)).is_empty());
    assert_eq!(victim.stats().rejections.target_policy, 1);
    assert_eq!(victim.tree().len(), 0);
}

#[test]
fn timeout_reissues_the_request_to_another_peer_then_abandons() {
    let mut fresh = node(1).with_limits(4, Some(1_000), 0, None);
    let mut miner = node(0);
    for _ in 0..2 {
        mine_one(&mut miner, 0);
    }
    let tip_block = miner.tree().tip_block().cloned().expect("mined");
    let out = fresh.handle(0, 0, Message::Block(tip_block));
    assert!(matches!(out.first(), Some(Outgoing::To(0, _))));
    let Some(Outgoing::Timer { token, .. }) = out.get(1).cloned() else {
        panic!("expected a timer, got {out:?}");
    };
    // Fire the timer: peer 0 stalled; the retry must go elsewhere.
    let retry = fresh.on_timer(token);
    let Some(Outgoing::To(peer, Message::GetSegment { .. })) = retry.first() else {
        panic!("expected a re-request, got {retry:?}");
    };
    assert_ne!(*peer, 0, "the stalled peer must be excluded");
    assert_eq!(fresh.stats().stalls_detected, 1);
    assert_eq!(fresh.stats().requests_retried, 1);
    // Exhaust the retries: the request is abandoned, never panics.
    let mut fired = 0;
    loop {
        let out = fresh.on_timer(token);
        fired += 1;
        if out.is_empty() {
            break;
        }
        assert!(fired < 10, "retry budget must be finite");
    }
    assert_eq!(fresh.stats().requests_abandoned, 1);
    assert!(fresh.on_timer(token).is_empty(), "abandoned token is inert");
}

#[test]
fn adaptive_mining_embeds_the_branch_expected_target() {
    use crate::strategy::Honest;
    let mut miner = adaptive_node(0, Box::new(Honest), None);
    let mut listener = adaptive_node(1, Box::new(Honest), None);
    let rule = *miner.tree().rule().expect("adaptive tree has a rule");
    let mut parent: Option<Block> = None;
    // Widely spaced slices keep every expected target cheap to mine.
    for now in [500u64, 4_500, 8_500] {
        let block = mine_one(&mut miner, now);
        let expected = match &parent {
            None => rule.genesis_target(),
            Some(prev) => rule.child_target(
                Target::from_threshold(prev.header.target),
                prev.header.timestamp,
                block.header.timestamp,
            ),
        };
        assert_eq!(
            block.header.target,
            *expected.threshold(),
            "mined blocks must embed the branch's expected target"
        );
        // A fellow adaptive node accepts the rule-consistent block.
        assert!(!listener
            .handle(now, 0, Message::Block(block.clone()))
            .is_empty());
        parent = Some(block);
    }
    assert_eq!(listener.tip(), miner.tip());
}

#[test]
fn future_skewed_blocks_are_rejected_only_under_the_timestamp_rule() {
    use crate::strategy::TimestampSkew;
    let drift = TimestampRule {
        max_future_drift_ms: 5_000,
        mtp_window: 11,
    };
    let mut skewer = adaptive_node(0, Box::new(TimestampSkew { skew_ms: 20_000 }), None);
    let mut lenient = adaptive_node(1, Box::new(Honest), None);
    let mut enforcing = adaptive_node(2, Box::new(Honest), Some(drift));
    let block = mine_one(&mut skewer, 1_000);
    assert!(
        block.header.timestamp >= 21_000,
        "the skewer reports a future time: {}",
        block.header.timestamp
    );
    // Without the rule the skewed header is accepted — the rule-derived
    // easier target makes it fully protocol-consistent.
    assert!(!lenient
        .handle(1_100, 0, Message::Block(block.clone()))
        .is_empty());
    assert_eq!(lenient.tip(), skewer.tip());
    // With the rule it is rejected at the edge: nothing stored, the
    // sender penalised under the timestamp class.
    assert!(enforcing.handle(1_100, 0, Message::Block(block)).is_empty());
    assert_eq!(enforcing.tree().len(), 0);
    assert_eq!(enforcing.stats().rejections.timestamp, 1);
}

#[test]
fn backdated_blocks_fail_the_median_time_past_floor() {
    let rule = TimestampRule {
        max_future_drift_ms: 5_000,
        mtp_window: 3,
    };
    let mut miner = node(0);
    let mut enforcing = node(1).with_difficulty(
        DifficultyRule::Fixed(Target::from_leading_zero_bits(2)),
        Some(rule),
    );
    // An honest history with strictly rising times: accepted as usual.
    for now in [2_000u64, 4_000, 6_000] {
        let block = mine_one(&mut miner, now);
        assert!(!enforcing
            .handle(now + 100, 0, Message::Block(block))
            .is_empty());
    }
    assert_eq!(enforcing.tip_height(), 3);
    // A backdated child of the tip: below the median of the parent
    // window [2000, 4000, 6000] → 4000, so the floor rejects it.
    let backdated = mine_block_at(
        miner.tip(),
        "backdated",
        Target::from_leading_zero_bits(2),
        3_999,
    );
    assert!(enforcing
        .handle(7_000, 0, Message::Block(backdated))
        .is_empty());
    assert_eq!(enforcing.stats().rejections.timestamp, 1);
    assert_eq!(enforcing.tip_height(), 3);
}

/// Mines a block over `prev` with explicit timestamp and target (test
/// helper for hand-crafted headers).
fn mine_block_at(prev: Digest256, tag: &str, target: Target, timestamp: u64) -> Block {
    use hashcore_baselines::PowFunction;
    let txs = vec![tag.as_bytes().to_vec()];
    let mut header = BlockHeader {
        version: 1,
        prev_hash: prev,
        merkle_root: Block::merkle_root(&txs),
        timestamp,
        target: *target.threshold(),
        nonce: 0,
    };
    while !target.is_met_by(&Sha256dPow.pow_hash(&header.bytes())) {
        header.nonce += 1;
    }
    Block {
        header,
        transactions: txs,
    }
}

#[test]
fn implausibly_easy_orphans_buy_no_sync_requests_under_an_adaptive_rule() {
    let mut honest = adaptive_node(0, Box::new(Honest), None);
    let mut victim = adaptive_node(1, Box::new(Honest), None);
    let seed_block = mine_one(&mut honest, 500);
    assert!(!victim.handle(600, 0, Message::Block(seed_block)).is_empty());
    // A valid-PoW orphan at a near-free target: no segment request, a
    // target-policy penalty instead — the spam costs its sender, not
    // the victim's sync machinery.
    let spam = mine_block_at([0xFA; 32], "free-spam", Target::MAX, 700);
    let out = victim.handle(800, 2, Message::Block(spam));
    assert!(out.is_empty(), "spam must not trigger sync: {out:?}");
    assert_eq!(victim.stats().rejections.target_policy, 1);
    // An orphan inside the easing floor (the chain's own initial
    // target) still triggers catch-up sync as before.
    let plausible = mine_block_at(
        [0xAB; 32],
        "plausible",
        Target::from_leading_zero_bits(2),
        900,
    );
    let out = victim.handle(1_000, 0, Message::Block(plausible));
    assert!(
        matches!(
            out.first(),
            Some(Outgoing::To(0, Message::GetSegment { .. }))
        ),
        "a plausible orphan must still be synced: {out:?}"
    );
}

#[test]
fn honest_templates_clamp_above_the_parent_windows_median_time_past() {
    let rule = TimestampRule {
        max_future_drift_ms: 5_000,
        mtp_window: 3,
    };
    use hashcore_baselines::PowFunction;
    let fixed = DifficultyRule::Fixed(Target::from_leading_zero_bits(2));
    let mut miner = node(0).with_difficulty(fixed, Some(rule));
    let mut peer = node(1).with_difficulty(fixed, Some(rule));
    // A chain whose reported times sit legitimately in the receivers'
    // future (inside the drift bound at acceptance time).
    let mut prev = GENESIS_HASH;
    for (i, ts) in [10_000u64, 10_001, 10_002].iter().enumerate() {
        let block = mine_block_at(
            prev,
            &format!("future-{i}"),
            Target::from_leading_zero_bits(2),
            *ts,
        );
        prev = Sha256dPow.pow_hash(&block.header.bytes());
        assert!(!miner
            .handle(6_000, 2, Message::Block(block.clone()))
            .is_empty());
        assert!(!peer.handle(6_000, 2, Message::Block(block)).is_empty());
    }
    // Mining at a real clock behind that window: the template must be
    // clamped to median-time-past + 1, not dated plainly "now" — else
    // every honest peer would reject (and penalise) the honest block.
    let mined = mine_one(&mut miner, 7_000);
    assert_eq!(
        mined.header.timestamp, 10_002,
        "template clamps to the window's mtp + 1"
    );
    assert!(
        !peer.handle(7_100, 0, Message::Block(mined)).is_empty(),
        "a fellow enforcing peer accepts the clamped block"
    );
    assert_eq!(peer.stats().rejections.timestamp, 0);
}

#[test]
fn difficulty_hopper_defects_until_waiting_eases_the_target() {
    use crate::strategy::DifficultyHopping;
    let mut honest = adaptive_node(0, Box::new(Honest), None);
    // Two quick honest blocks re-tighten the branch: the expected
    // next-block target goes well past the hopper's threshold.
    let b1 = mine_one(&mut honest, 1_000);
    let b2 = mine_one(&mut honest, 1_100);
    let mut hopper = adaptive_node(
        1,
        Box::new(DifficultyHopping {
            max_expected_attempts: 4.0,
        }),
        None,
    );
    for block in [b1, b2] {
        hopper.handle(1_200, 0, Message::Block(block));
    }
    assert_eq!(hopper.tip_height(), 2);
    // Right after the fast block the branch is expensive: defect.
    assert!(hopper.mine_slice(1_200, 10_000).is_empty());
    assert_eq!(hopper.stats().blocks_mined, 0);
    // Much later the reported gap has grown, the expected target eased
    // back under the threshold, and the hopper rejoins and mines.
    let mut mined = false;
    for now in [60_000u64, 120_000, 180_000] {
        if !hopper.mine_slice(now, 100_000).is_empty() {
            mined = true;
            break;
        }
    }
    assert!(mined, "an eased branch must pull the hopper back in");
    assert_eq!(hopper.stats().blocks_mined, 1);
}

#[test]
fn crash_restart_recovers_the_exact_tree_and_keeps_persisting() {
    let dir = hashcore_store::TempDir::new("node-crash").unwrap();
    let store = ChainStore::create(dir.path()).unwrap();
    let mut node = node(0).with_persistence(store, 3);
    // Mine locally and accept a peer block: both storage paths persist.
    for now in [100, 200, 300, 400] {
        mine_one(&mut node, now);
    }
    // A peer's genesis child lands as a side branch — the gossip
    // acceptance path must persist it too, or recovery forgets the fork.
    let mut peer = super::tests::node(1);
    let peer_block = mine_one(&mut peer, 500);
    node.handle(550, 1, Message::Block(peer_block));
    assert_eq!(node.tip_height(), 4);
    assert_eq!(node.stats().blocks_accepted, 1);

    let fingerprint = node.tree().fingerprint();
    let tip = node.tip();
    let (report, out) = node.crash_restart().unwrap();
    assert!(report.clean(), "nothing was damaged: {report:?}");
    assert_eq!(node.tree().fingerprint(), fingerprint);
    assert_eq!(node.tip(), tip);
    assert_eq!(node.stats().crash_restarts, 1);
    assert_eq!(node.stats().recoveries_identical, 1);
    assert!(
        matches!(&out[..], [Outgoing::Broadcast(Message::Block(b))]
            if b == node.tree().tip_block().unwrap()),
        "the restarted node announces its recovered tip"
    );

    // The reopened store keeps recording: mine more, crash again.
    mine_one(&mut node, 600);
    let fingerprint = node.tree().fingerprint();
    node.crash_restart().unwrap();
    assert_eq!(node.tree().fingerprint(), fingerprint);
    assert_eq!(node.stats().recoveries_identical, 2);
}

#[test]
fn a_torn_tail_loses_exactly_the_last_appends() {
    let dir = hashcore_store::TempDir::new("node-torn").unwrap();
    let store = ChainStore::create(dir.path()).unwrap();
    let mut node = node(0).with_persistence(store, 0);
    for now in [100, 200, 300] {
        mine_one(&mut node, now);
    }
    let full = node.tree().fingerprint();
    hashcore_store::inject_torn_tail(node.store_dir().unwrap(), 5).unwrap();
    let (report, _) = node.crash_restart().unwrap();
    assert!(report.lost_bytes > 0);
    assert_ne!(node.tree().fingerprint(), full);
    assert_eq!(node.tip_height(), 2, "exactly the torn record is lost");
    assert_eq!(node.stats().recoveries_identical, 0);
    assert_eq!(node.stats().recovery_lost_bytes, report.lost_bytes);
}

#[test]
fn crash_restart_without_a_store_is_an_error() {
    let mut bare = node(0);
    let err = bare.crash_restart().unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
}

/// The snapshot-on-prune policy: pruning commits a snapshot of the
/// pruned tree immediately, so recovery never resurrects an evicted
/// branch and the restored tree stays fingerprint-identical.
#[test]
fn a_pruned_node_still_recovers_its_exact_tree() {
    let dir = hashcore_store::TempDir::new("node-prune").unwrap();
    let store = ChainStore::create(dir.path()).unwrap();
    let mut node = node(0)
        .with_limits(2, None, 0, Some(2))
        .with_persistence(store, 0);
    for now in 1..=6u64 {
        mine_one(&mut node, now * 100);
    }
    assert!(node.stats().blocks_pruned > 0, "the window forced prunes");
    let fingerprint = node.tree().fingerprint();
    let root = node.tree().root();
    node.crash_restart().unwrap();
    assert_eq!(node.tree().fingerprint(), fingerprint);
    assert_eq!(node.tree().root(), root, "the retention root survives");
    assert_eq!(node.stats().recoveries_identical, 1);
}

/// Unwraps a handler's output as exactly one direct send.
fn to_reply(mut out: Vec<Outgoing>) -> (usize, Message) {
    assert_eq!(out.len(), 1, "expected exactly one send, got {out:?}");
    match out.pop().expect("non-empty") {
        Outgoing::To(to, message) => (to, message),
        other => panic!("expected a direct send, got {other:?}"),
    }
}

/// A light client pointed at `servers`, proving leaf 0 of every tip.
fn light_node(id: usize, servers: Vec<usize>) -> Node<Sha256dPow> {
    node(id).with_light_role(LightConfig {
        servers,
        request_timeout_ms: 1_000,
        proof_indices: vec![0],
    })
}

/// The wire layout is part of the determinism contract: bandwidth
/// accounting feeds fingerprints, so every variant's exact byte cost is
/// pinned here. The 116-byte header constant is cross-checked against the
/// real `BlockHeader` serialisation.
#[test]
fn wire_sizes_are_pinned_per_variant() {
    let header = BlockHeader {
        version: 1,
        prev_hash: GENESIS_HASH,
        merkle_root: [0u8; 32],
        timestamp: 7,
        target: [0xFF; 32],
        nonce: 9,
    };
    let mut bytes = Vec::new();
    header.write_bytes(&mut bytes);
    assert_eq!(
        bytes.len(),
        116,
        "the header wire constant must track reality"
    );

    let block = Block {
        header: header.clone(),
        transactions: vec![vec![1, 2, 3], vec![4, 5, 6, 7, 8]],
    };
    // tag + header + tx-list length + (4+3) + (4+5).
    assert_eq!(
        Message::Block(block.clone()).wire_size(),
        1 + 116 + 4 + 7 + 9
    );
    // tag + want digest + locator length + 3 digests.
    let locator = vec![[1u8; 32], [2u8; 32], [3u8; 32]];
    assert_eq!(
        Message::GetSegment {
            want: [9u8; 32],
            locator: locator.clone(),
        }
        .wire_size(),
        1 + 32 + 4 + 96
    );
    // tag + block-list length + two identical blocks.
    assert_eq!(
        Message::Segment(vec![block.clone(), block.clone()]).wire_size(),
        1 + 4 + 2 * (116 + 4 + 7 + 9)
    );
    // tag + locator length + 3 digests.
    assert_eq!(Message::GetHeaders { locator }.wire_size(), 1 + 4 + 96);
    // tag + header-list length + 2 headers.
    assert_eq!(
        Message::Headers(vec![header.clone(), header]).wire_size(),
        1 + 4 + 2 * 116
    );
    // tag + block digest + index-list length + 2 u32 indices.
    assert_eq!(
        Message::GetProof {
            block: [9u8; 32],
            indices: vec![0, 2],
        }
        .wire_size(),
        1 + 32 + 4 + 8
    );
    // tag + digest + leaf_count + item-list length
    //   + (idx + payload-length + 3 bytes) + (idx + payload-length + 1)
    //   + node-list length + 2 digests.
    assert_eq!(
        Message::Proof {
            block: [9u8; 32],
            leaf_count: 4,
            items: vec![(0, vec![1, 2, 3]), (2, vec![4])],
            nodes: vec![[5u8; 32], [6u8; 32]],
        }
        .wire_size(),
        1 + 32 + 4 + 4 + (4 + 4 + 3) + (4 + 4 + 1) + 4 + 64
    );
}

/// The basic light-client round trip: header sync from a full node, then
/// a batched proof of the tip's transactions, verified against the
/// committed Merkle root. The light tip must equal the full tip without
/// the light node ever holding a block body.
#[test]
fn a_light_node_syncs_headers_and_proves_the_tip() {
    let mut full = node(0);
    for now in 1..=3u64 {
        mine_one(&mut full, now * 100);
    }
    let mut light = light_node(1, vec![0]);
    assert_eq!(light.role(), Role::Light);

    // Slice tick bootstraps the header sync.
    let (to, get_headers) = to_reply(light.mine_slice(1_000, 1_000));
    assert_eq!(to, 0);
    let (to, headers) = to_reply(full.handle(1_000, 1, get_headers));
    assert_eq!(to, 1);
    assert_eq!(full.stats().headers_served, 3);

    // Accepting the headers moves the light tip and requests the proof.
    let (to, get_proof) = to_reply(light.handle(1_000, 0, headers));
    assert_eq!(to, 0);
    assert_eq!(light.stats().headers_accepted, 3);
    assert_eq!(light.tip(), full.tip());
    assert_eq!(light.tip_height(), full.tip_height());

    let (to, proof) = to_reply(full.handle(1_000, 1, get_proof));
    assert_eq!(to, 1);
    assert_eq!(full.stats().proofs_served, 1);
    assert!(light.handle(1_000, 0, proof.clone()).is_empty());
    assert_eq!(light.stats().proofs_verified, 1);
    assert!(light.stats().tx_bytes_proved > 0);
    assert_eq!(light.proved_tip(), full.tip());

    // A replay of the same proof answers nothing in flight: counted,
    // dropped, penalty-free.
    assert!(light.handle(1_000, 0, proof).is_empty());
    assert_eq!(light.stats().rejections.unsolicited_proof, 1);
    assert_eq!(light.stats().proofs_verified, 1);
}

/// A fabricated proof cannot survive verification against the PoW-pinned
/// header root: the light client rejects it, penalises and locally
/// blacklists the server, and re-requests from the next one — which
/// serves the genuine batch.
#[test]
fn a_fake_proof_is_rejected_and_rerequested_elsewhere() {
    let mut honest = node(0);
    let mut faker = node(1).with_strategy(Box::new(FakeProof));
    for now in 1..=2u64 {
        let block = mine_one(&mut honest, now * 100);
        faker.handle(now * 100, 0, Message::Block(block));
    }
    assert_eq!(faker.tip(), honest.tip());

    // id 2 over servers [0, 1]: rotation starts at the honest node for
    // headers, so the *proof* request lands on the faker.
    let mut light = light_node(2, vec![0, 1]);
    let (to, get_headers) = to_reply(light.mine_slice(1_000, 1_000));
    assert_eq!(to, 0);
    let headers = honest.handle(1_000, 2, get_headers);
    let (_, headers) = to_reply(headers);
    let (to, get_proof) = to_reply(light.handle(1_000, 0, headers));
    assert_eq!(to, 1, "rotation sends the proof request to the faker");

    let (_, fake) = to_reply(faker.handle(1_000, 2, get_proof));
    assert_eq!(faker.stats().fake_proofs_sent, 1);

    // Rejected, penalised, re-requested from the honest server.
    let (to, retry) = to_reply(light.handle(1_000, 1, fake));
    assert_eq!(light.stats().rejections.invalid_proof, 1);
    assert_eq!(light.stats().proof_retries, 1);
    assert_eq!(to, 0);

    let (_, genuine) = to_reply(honest.handle(1_000, 2, retry));
    assert!(light.handle(1_000, 0, genuine).is_empty());
    assert_eq!(light.stats().proofs_verified, 1);
    assert_eq!(light.proved_tip(), honest.tip());
}

/// A withholding server simply never answers: the light client's request
/// times out on a later slice tick and rotates to the next server.
#[test]
fn a_withheld_proof_times_out_and_rotates_servers() {
    let mut honest = node(0);
    let mut withholder = node(1).with_strategy(Box::new(ProofWithholding));
    let block = mine_one(&mut honest, 100);
    withholder.handle(100, 0, Message::Block(block));

    let mut light = light_node(2, vec![0, 1]);
    let (_, get_headers) = to_reply(light.mine_slice(1_000, 1_000));
    let (_, headers) = to_reply(honest.handle(1_000, 2, get_headers));
    let (to, get_proof) = to_reply(light.handle(1_000, 0, headers));
    assert_eq!(to, 1);
    assert!(withholder.handle(1_000, 2, get_proof).is_empty());
    assert_eq!(withholder.stats().proofs_withheld, 1);

    // The timeout re-issues the request to the next server in rotation.
    let (to, retry) = to_reply(light.mine_slice(2_500, 1_000));
    assert_eq!(light.stats().proof_retries, 1);
    assert_eq!(to, 0);
    let (_, genuine) = to_reply(honest.handle(2_500, 2, retry));
    assert!(light.handle(2_500, 0, genuine).is_empty());
    assert_eq!(light.stats().proofs_verified, 1);
}

/// The per-peer serving quota: beyond it, requests are silently refused
/// and counted, protecting the full node's proof bandwidth.
#[test]
fn the_proof_quota_refuses_requests_beyond_the_cap() {
    let mut full = node(0).with_proof_quota(1);
    mine_one(&mut full, 100);
    let mut light = light_node(1, vec![0]);

    let (_, get_headers) = to_reply(light.mine_slice(1_000, 1_000));
    let (_, headers) = to_reply(full.handle(1_000, 1, get_headers));
    let (_, get_proof) = to_reply(light.handle(1_000, 0, headers));
    let (_, proof) = to_reply(full.handle(1_000, 1, get_proof));
    assert!(light.handle(1_000, 0, proof).is_empty());
    assert_eq!(full.stats().proofs_served, 1);

    // A second tip, a second request — over quota now.
    let next = mine_one(&mut full, 2_000);
    let (_, get_proof) = to_reply(light.handle(2_000, 0, Message::Headers(vec![next.header])));
    assert!(full.handle(2_000, 1, get_proof).is_empty());
    assert_eq!(full.stats().quota_refusals, 1);
    assert_eq!(full.stats().proofs_served, 1);
}

/// A deep catch-up streams in bounded `Headers` batches: a full batch
/// makes the light client immediately request the next one until the tip
/// is reached.
#[test]
fn a_deep_header_catchup_streams_in_bounded_batches() {
    let mut full = node(0);
    let depth = MAX_HEADERS_PER_MSG as u64 + 4;
    for now in 1..=depth {
        mine_one(&mut full, now * 100);
    }
    // Header-only client: no proof requests to interleave.
    let mut light = node(1).with_light_role(LightConfig {
        servers: vec![0],
        request_timeout_ms: 1_000,
        proof_indices: Vec::new(),
    });
    let mut sends = light.mine_slice(100_000, 1_000);
    let mut hops = 0;
    while let Some(Outgoing::To(to, message)) = sends.pop() {
        assert!(sends.is_empty());
        let (back, reply) = to_reply(full.handle(100_000, 1, message));
        assert_eq!((to, back), (0, 1));
        sends = light.handle(100_000, 0, reply);
        hops += 1;
        assert!(hops < 10, "catch-up must terminate");
    }
    assert_eq!(hops, 2, "256 + 4 headers stream in exactly two batches");
    assert_eq!(light.tip(), full.tip());
    assert_eq!(light.tip_height(), depth);
    assert_eq!(light.stats().headers_accepted, depth);
}
