//! Responder paths: serving segments to syncing peers and headers plus
//! batched Merkle proofs to light clients — honestly, stalled, withheld,
//! or corrupted, as the node's strategy dictates.

use crate::strategy::{Corruption, ProofAction, ServeAction};
use hashcore::Target;
use hashcore_baselines::PreparedPow;
use hashcore_chain::Block;
use hashcore_crypto::{Digest256, MerkleTree};

use super::{Message, Node, Outgoing, Role, MAX_HEADERS_PER_MSG};

impl<P: PreparedPow + Sync + std::fmt::Debug> Node<P>
where
    P::Scratch: std::fmt::Debug,
{
    pub(crate) fn handle_get_segment(
        &mut self,
        from: usize,
        want: Digest256,
        locator: &[Digest256],
    ) -> Vec<Outgoing> {
        match self.strategy.serve_segment(from) {
            ServeAction::Honest => self.serve_segment(from, want, locator, None, None),
            ServeAction::Prefix(n) => self.serve_segment(from, want, locator, Some(n), None),
            ServeAction::Delay(ms) => self.serve_segment(from, want, locator, None, Some(ms)),
            ServeAction::Ignore => Vec::new(),
            ServeAction::Corrupt(class) => self.serve_corrupt(from, want, class),
        }
    }

    /// Serves the missing segment (honestly, or truncated/delayed for the
    /// stalling modes). Unknown wants, fully synced requesters and pruned
    /// history all produce no reply — the requester's timeout handles it.
    pub(crate) fn serve_segment(
        &mut self,
        from: usize,
        want: Digest256,
        locator: &[Digest256],
        prefix: Option<usize>,
        delay_ms: Option<u64>,
    ) -> Vec<Outgoing> {
        match self.tree.segment_to(want, locator) {
            Ok(mut segment) if !segment.is_empty() => {
                if let Some(n) = prefix {
                    segment.truncate(n);
                    if segment.is_empty() {
                        return Vec::new();
                    }
                }
                let message = Message::Segment(segment);
                match delay_ms {
                    None => vec![Outgoing::To(from, message)],
                    Some(after_ms) => vec![Outgoing::DelayedTo {
                        to: from,
                        after_ms,
                        message,
                    }],
                }
            }
            _ => Vec::new(),
        }
    }

    /// The chain suffix ending at `want` (at most `n` blocks), oldest
    /// first. Empty when `want` is not stored.
    pub(crate) fn suffix_ending_at(&self, want: Digest256, n: usize) -> Vec<Block> {
        let mut out = Vec::new();
        let mut cursor = want;
        while out.len() < n {
            let Some(block) = self.tree.block(&cursor) else {
                break;
            };
            out.push(block.clone());
            cursor = block.header.prev_hash;
        }
        out.reverse();
        out
    }

    /// Corrupts one block of `segment` in place per `class`, recording the
    /// digests of header-altered blocks in the spam audit list. With
    /// `protect_last` the terminal block is left intact so the receiver's
    /// pending-request match still holds and the segment reaches the
    /// verifier. Returns `false` when the segment is too short to corrupt.
    pub(crate) fn apply_corruption(
        &mut self,
        segment: &mut [Block],
        protect_last: bool,
        class: Corruption,
    ) -> bool {
        let limit = if protect_last {
            segment.len().saturating_sub(1)
        } else {
            segment.len()
        };
        if limit == 0 {
            return false;
        }
        // A broken prev-link on the first block would fail the receiver's
        // anchor check before the verifier ever ran; corrupt later, or fall
        // back to a PoW break when there is no later block.
        let mut class = class;
        let idx = match class {
            Corruption::BrokenPrevLink if limit == 1 => {
                class = Corruption::BadPow;
                0
            }
            Corruption::BrokenPrevLink => (limit / 2).max(1),
            _ => limit / 2,
        };
        match class {
            Corruption::BadPow => loop {
                segment[idx].header.nonce = segment[idx].header.nonce.wrapping_add(1);
                let digest = self.tree.digest_of(&segment[idx]);
                if !Target::from_threshold(segment[idx].header.target).is_met_by(&digest) {
                    self.stats.spam_digests.push(digest);
                    break;
                }
            },
            Corruption::BrokenPrevLink => {
                segment[idx].header.prev_hash = [0xBB; 32];
                let digest = self.tree.digest_of(&segment[idx]);
                self.stats.spam_digests.push(digest);
            }
            Corruption::WrongTarget => {
                segment[idx].header.target = [0xFF; 32];
                let digest = self.tree.digest_of(&segment[idx]);
                self.stats.spam_digests.push(digest);
            }
            Corruption::BadMerkle => {
                // The header — and so the digest — is unchanged; the real
                // block with this digest is valid, so it is not recorded in
                // the spam audit list.
                segment[idx].transactions.push(b"spam".to_vec());
            }
        }
        true
    }

    /// Answers a `GetSegment` with a corrupted segment: real chain suffix
    /// plus (for fabricated wants) the bait orphan, with one block
    /// corrupted mid-segment — engineered to pass the cheap pre-checks and
    /// be rejected by the batched verifier.
    pub(crate) fn serve_corrupt(
        &mut self,
        from: usize,
        want: Digest256,
        class: Corruption,
    ) -> Vec<Outgoing> {
        let mut segment = if let Some(bait) = self.fabricated.get(&want).cloned() {
            let mut basis = self.suffix_ending_at(self.tree.tip(), 2);
            basis.push(bait);
            basis
        } else if self.tree.contains(&want) {
            self.suffix_ending_at(want, 3)
        } else {
            return Vec::new();
        };
        if !self.apply_corruption(&mut segment, true, class) {
            // Too short to corrupt without touching the terminal block:
            // sending it would be an honest (and uncounted) serve.
            return Vec::new();
        }
        self.stats.spam_segments_sent += 1;
        vec![Outgoing::To(from, Message::Segment(segment))]
    }

    /// Answers a `GetHeaders` with the best-chain headers above the
    /// requester's locator, at most [`MAX_HEADERS_PER_MSG`] per reply.
    /// Header serving is *never* strategy-gated: headers are self-proving
    /// (their PoW is checked at the receiver), so lying about them buys an
    /// adversary nothing but a penalty — every strategy serves them
    /// straight. A fully synced requester gets an empty reply so its
    /// in-flight request clears without burning a timeout.
    pub(crate) fn handle_get_headers(
        &mut self,
        from: usize,
        locator: &[Digest256],
    ) -> Vec<Outgoing> {
        if self.role == Role::Light {
            return Vec::new();
        }
        let headers: Vec<_> = match self.tree.segment_to(self.tree.tip(), locator) {
            Ok(segment) => segment
                .into_iter()
                .take(MAX_HEADERS_PER_MSG)
                .map(|block| block.header)
                .collect(),
            Err(_) => Vec::new(),
        };
        self.stats.headers_served += headers.len() as u64;
        vec![Outgoing::To(from, Message::Headers(headers))]
    }

    /// Answers a `GetProof` with the requested transactions and one
    /// batched Merkle proof against the block's committed root — unless
    /// the per-peer serving quota is exhausted (silent refusal; the
    /// requester's timeout rotates it elsewhere) or the strategy withholds
    /// or corrupts the batch.
    pub(crate) fn handle_get_proof(
        &mut self,
        from: usize,
        block: Digest256,
        indices: Vec<u32>,
    ) -> Vec<Outgoing> {
        if self.role == Role::Light {
            return Vec::new();
        }
        if self.proof_quota > 0
            && self.proofs_served_to.get(&from).copied().unwrap_or(0) >= self.proof_quota
        {
            self.stats.quota_refusals += 1;
            return Vec::new();
        }
        let action = self.strategy.serve_proof(from);
        if action == ProofAction::Ignore {
            self.stats.proofs_withheld += 1;
            return Vec::new();
        }
        let Some(stored) = self.tree.block(&block) else {
            return Vec::new();
        };
        let transactions = stored.transactions.clone();
        let leaf_count = transactions.len();
        let mut wanted: Vec<usize> = indices
            .iter()
            .map(|&i| i as usize)
            .filter(|&i| i < leaf_count)
            .collect();
        wanted.sort_unstable();
        wanted.dedup();
        if wanted.is_empty() {
            return Vec::new();
        }
        let tree = MerkleTree::from_items(transactions.iter().map(|tx| tx.as_slice()));
        let Some(proof) = tree.proof_batch(&wanted) else {
            return Vec::new();
        };
        let mut items: Vec<(u32, Vec<u8>)> = wanted
            .iter()
            .map(|&i| (i as u32, transactions[i].clone()))
            .collect();
        if action == ProofAction::Corrupt {
            // A fake proof: flip one payload bit so the batch no longer
            // resolves to the committed root. The header the light client
            // checks against is PoW-pinned, so this *must* be caught.
            match items[0].1.first_mut() {
                Some(byte) => *byte ^= 0x01,
                None => items[0].1.push(0xFF),
            }
            self.stats.fake_proofs_sent += 1;
        }
        self.stats.proofs_served += 1;
        *self.proofs_served_to.entry(from).or_insert(0) += 1;
        vec![Outgoing::To(
            from,
            Message::Proof {
                block,
                leaf_count: proof.leaf_count,
                items,
                nodes: proof.nodes,
            },
        )]
    }

    /// Fabricates one unsolicited corrupted segment from the local chain
    /// suffix (the pure-spam strategy's per-slice payload).
    pub(crate) fn fabricate_unsolicited(&mut self, class: Corruption) -> Option<Message> {
        let mut segment = self.suffix_ending_at(self.tree.tip(), 3);
        if segment.is_empty() || !self.apply_corruption(&mut segment, false, class) {
            return None;
        }
        self.stats.spam_segments_sent += 1;
        Some(Message::Segment(segment))
    }
}
