//! The node state machine: construction, builders, message dispatch,
//! hardening policy (penalties, bans, plausibility floors), pruning and
//! crash-consistent persistence.

use crate::strategy::{Honest, Strategy};
use hashcore::Target;
use hashcore_baselines::PreparedPow;
use hashcore_chain::{ApplyOutcome, Block, DifficultyRule, ForkTree, TreeSnapshot, GENESIS_HASH};
use hashcore_crypto::Digest256;
use hashcore_store::{ChainStore, RecoveryReport};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::io;
use std::path::Path;

use super::light::{LightConfig, LightState};
use super::miner::Miner;
use super::stats::NodeStats;
use super::sync::PendingRequest;
use super::{Message, Outgoing, Role, TimestampRule, ORPHAN_EASING_SLACK};

/// A node's attachment to its on-disk [`ChainStore`]: every newly stored
/// block is appended to the segment log, and a full-tree snapshot is
/// committed every `snapshot_interval` stored blocks (and after every
/// prune, so the durable state never resurrects evicted branches).
#[derive(Debug)]
pub(crate) struct Persistence {
    pub(crate) store: ChainStore,
    /// Stored blocks between periodic snapshots (0 = snapshot only on
    /// prune).
    pub(crate) snapshot_interval: u64,
    /// Blocks appended since the last committed snapshot.
    pub(crate) since_snapshot: u64,
    /// Whether appends fsync per record (restored after a crash-restart).
    pub(crate) sync_appends: bool,
}

/// One simulated full node.
///
/// The node owns a [`ForkTree`] (its view of the block race), a resumable
/// miner, and a [`Strategy`] consulted at every behavioural decision point
/// — the default [`Honest`] strategy reproduces the pre-strategy node byte
/// for byte. All hashing — mining and fork-tree application alike — runs
/// through reusable per-node scratches, the same per-worker discipline as
/// `HashCore::mine_parallel` and `validate_blocks_parallel`.
///
/// # Hardening
///
/// Incoming traffic is filtered before it can cost hash work or state:
/// blocks and segments embedding a non-consensus target are rejected
/// outright, segments that answer no in-flight request are dropped without
/// running the verifier, and every rejection increments a per-peer penalty
/// — a peer crossing the ban threshold is ignored entirely. When request
/// timeouts are enabled, a stalled segment request is re-issued to another
/// peer (deterministic round-robin, excluding peers that already stalled)
/// until it succeeds or the retry budget is spent.
#[derive(Debug)]
pub struct Node<P: PreparedPow>
where
    P: std::fmt::Debug,
    P::Scratch: std::fmt::Debug,
{
    pub(crate) id: usize,
    pub(crate) tree: ForkTree<P>,
    /// The genesis (initial-difficulty) target: what a fixed-difficulty
    /// node mines at throughout, and what fake-orphan bait embeds.
    pub(crate) target: Target,
    /// Timestamp validity policy applied to incoming blocks and segments;
    /// `None` accepts any reported timestamp.
    pub(crate) timestamp_rule: Option<TimestampRule>,
    pub(crate) sync_threads: usize,
    pub(crate) miner: Miner<P::Scratch>,
    pub(crate) strategy: Box<dyn Strategy>,
    /// Orphan digests with a segment request in flight: concurrent
    /// duplicate announcements of the same unknown block must not each
    /// trigger a full segment fetch and re-validation.
    pub(crate) requested: HashMap<Digest256, PendingRequest>,
    /// Digests whose requests were abandoned after every retry: a reply
    /// that limps in afterwards is stale, not unsolicited — it must not
    /// earn its (possibly honest, merely slow) sender a penalty.
    pub(crate) abandoned: HashSet<Digest256>,
    /// Total peers in the simulation (for retry round-robin); 0 disables
    /// re-requests.
    pub(crate) peers: usize,
    /// Simulated milliseconds before an unanswered segment request times
    /// out; `None` disables the timeout machinery entirely.
    pub(crate) request_timeout_ms: Option<u64>,
    /// Rejections from one peer before it is banned; 0 disables banning.
    pub(crate) ban_threshold: u32,
    /// Fork-tree retention window; `None` disables pruning.
    pub(crate) prune_depth: Option<u64>,
    /// Private (withheld) chain suffix, oldest first, with digests.
    pub(crate) withheld: Vec<(Block, Digest256)>,
    /// Work and tip of the best *public* (announced) chain this node knows
    /// — what a withholding strategy races against.
    pub(crate) public_work: f64,
    pub(crate) public_tip: Digest256,
    /// Valid-PoW bait blocks mined over a fabricated parent, by digest.
    pub(crate) fabricated: HashMap<Digest256, Block>,
    /// Rejection count per peer (lookup-only; never iterated, so the map
    /// order cannot leak into behaviour).
    pub(crate) penalties: HashMap<usize, u32>,
    /// Peers whose traffic is ignored (BTree for deterministic iteration).
    pub(crate) banned: BTreeSet<usize>,
    /// On-disk persistence, when enabled; `None` keeps the node purely
    /// in-memory, exactly as before persistence existed.
    pub(crate) persistence: Option<Persistence>,
    /// What the node does on the network; [`Role::Full`] by default.
    pub(crate) role: Role,
    /// Light-client state, present exactly when `role` is [`Role::Light`].
    pub(crate) light: Option<LightState>,
    /// Most proofs this node serves any single peer (0 = unlimited) —
    /// the serving quota that stops one light client from monopolising a
    /// full node's proof bandwidth.
    pub(crate) proof_quota: u64,
    /// Proofs served per requesting peer (lookup-only; never iterated).
    pub(crate) proofs_served_to: HashMap<usize, u64>,
    /// Bytes of deterministic filler appended to every mined block as a
    /// second transaction (0 = the bare tagged template, as always).
    pub(crate) body_bytes: usize,
    pub(crate) stats: NodeStats,
}

impl<P: PreparedPow + Sync + std::fmt::Debug> Node<P>
where
    P::Scratch: std::fmt::Debug,
{
    /// Creates an honest node mining against `target`, validating synced
    /// segments across `sync_threads` workers.
    pub fn new(id: usize, pow: P, target: Target, sync_threads: usize) -> Self {
        Self {
            id,
            tree: ForkTree::with_rule(pow, DifficultyRule::Fixed(target)),
            target,
            timestamp_rule: None,
            sync_threads: sync_threads.max(1),
            miner: Miner::new(),
            strategy: Box::new(Honest),
            requested: HashMap::new(),
            abandoned: HashSet::new(),
            peers: 0,
            request_timeout_ms: None,
            ban_threshold: 0,
            prune_depth: None,
            withheld: Vec::new(),
            public_work: 0.0,
            public_tip: GENESIS_HASH,
            fabricated: HashMap::new(),
            penalties: HashMap::new(),
            banned: BTreeSet::new(),
            persistence: None,
            role: Role::Full,
            light: None,
            proof_quota: 0,
            proofs_served_to: HashMap::new(),
            body_bytes: 0,
            stats: NodeStats::default(),
        }
    }

    /// Turns this node into a header-first light client (builder style).
    /// Must run *after* [`Node::with_difficulty`] so the light header
    /// chain inherits the installed rule. A light node neither mines nor
    /// validates bodies: its slice tick drives header sync and proof
    /// requests against `config.servers` instead.
    pub fn with_light_role(mut self, config: LightConfig) -> Self {
        self.role = Role::Light;
        let rule = self.tree.rule().copied();
        self.light = Some(LightState::new(config, self.id, rule));
        self
    }

    /// Caps the proofs this node serves any single peer (builder style);
    /// 0 (the default) serves without limit. Requests beyond the quota
    /// are silently refused — the requester's timeout rotates it to
    /// another server.
    pub fn with_proof_quota(mut self, quota: u64) -> Self {
        self.proof_quota = quota;
        self
    }

    /// Pads every block this node mines with one deterministic filler
    /// transaction of `bytes` bytes (builder style) — simulated
    /// transaction volume, so bandwidth comparisons between full and
    /// light peers measure something real. 0 (the default) keeps the
    /// bare tagged template, byte for byte.
    pub fn with_body_bytes(mut self, bytes: usize) -> Self {
        self.body_bytes = bytes;
        self
    }

    /// Replaces the node's behaviour strategy (builder style).
    pub fn with_strategy(mut self, strategy: Box<dyn Strategy>) -> Self {
        self.strategy = strategy;
        self
    }

    /// Installs the difficulty rule — mining targets then follow the best
    /// branch's expectation, and the fork tree enforces it per branch —
    /// and the timestamp validity policy (builder style; must run before
    /// any block is mined or applied). The default is
    /// `DifficultyRule::Fixed` at the construction target with no
    /// timestamp rule, which reproduces the fixed-difficulty node exactly.
    pub fn with_difficulty(
        mut self,
        rule: DifficultyRule,
        timestamp_rule: Option<TimestampRule>,
    ) -> Self {
        self.tree.set_rule(rule);
        // Keep the genesis target aligned with the rule: fake-orphan bait
        // and the template fallback must embed what peers' trees expect of
        // a genesis child, not a stale construction-time target.
        self.target = rule.genesis_target();
        self.timestamp_rule = timestamp_rule;
        self
    }

    /// The difficulty rule mining targets derive from — the single copy
    /// the node's fork tree holds and enforces per branch.
    pub(crate) fn rule(&self) -> &DifficultyRule {
        self.tree.rule().expect("nodes always install a rule")
    }

    /// Configures the hardening limits (builder style): total peer count
    /// for retry round-robin, the request timeout (`None` = no timeouts),
    /// the per-peer ban threshold (0 = never ban), and the fork-tree
    /// retention window (`None` = never prune).
    pub fn with_limits(
        mut self,
        peers: usize,
        request_timeout_ms: Option<u64>,
        ban_threshold: u32,
        prune_depth: Option<u64>,
    ) -> Self {
        self.peers = peers;
        self.request_timeout_ms = request_timeout_ms;
        self.ban_threshold = ban_threshold;
        self.prune_depth = prune_depth;
        self
    }

    /// Attaches an on-disk [`ChainStore`] (builder style): every block the
    /// node stores is appended to the segment log, and a full-tree
    /// snapshot is committed every `snapshot_interval` stored blocks
    /// (0 = only after prunes). The store's fsync policy is preserved
    /// across [`Node::crash_restart`].
    pub fn with_persistence(mut self, store: ChainStore, snapshot_interval: u64) -> Self {
        self.persistence = Some(Persistence {
            sync_appends: store.synced_appends(),
            store,
            snapshot_interval,
            since_snapshot: 0,
        });
        self
    }

    /// Directory of the attached chain store, if persistence is enabled.
    pub fn store_dir(&self) -> Option<&Path> {
        self.persistence.as_ref().map(|p| p.store.dir())
    }

    /// Simulates a process crash plus restart from disk: all volatile
    /// state (miner template, in-flight requests, withheld chain, peer
    /// penalties and bans, public-tip tracking) is discarded, the store
    /// directory is reopened through the recovery ladder, and the fork
    /// tree is rebuilt from the newest valid snapshot plus the committed
    /// log suffix. Returns the recovery report and the rejoin sends (a
    /// tip announcement — peers that moved ahead answer the node's
    /// resulting orphan requests through the existing segment sync).
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the node has no attached store; otherwise any
    /// I/O error from reopening, or `InvalidData` when the recovered
    /// snapshot itself fails restore validation (tampering the ladder
    /// could not detect structurally).
    pub fn crash_restart(&mut self) -> io::Result<(RecoveryReport, Vec<Outgoing>)> {
        let Some(old) = self.persistence.take() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "crash_restart requires an attached chain store",
            ));
        };
        let dir = old.store.dir().to_path_buf();
        let snapshot_interval = old.snapshot_interval;
        let sync_appends = old.sync_appends;
        // Close the old file handles before reopening: the crashed
        // process's descriptors are gone.
        drop(old);

        let pre_crash_fingerprint = self.tree.fingerprint();
        let rule = *self.rule();

        // Volatile state dies with the process.
        self.miner.template_valid = false;
        self.requested.clear();
        self.abandoned.clear();
        self.withheld.clear();
        self.fabricated.clear();
        self.penalties.clear();
        self.banned.clear();
        self.public_work = 0.0;
        self.public_tip = GENESIS_HASH;

        let (mut store, recovered) = ChainStore::open(&dir)?;
        store.set_sync(sync_appends);
        let base = recovered.snapshot.unwrap_or(TreeSnapshot {
            root: GENESIS_HASH,
            root_height: 0,
            root_work: 0.0,
            rule: Some(rule),
            blocks: Vec::new(),
        });
        self.tree.restore_from_snapshot(&base).map_err(|error| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("recovered snapshot failed restore: {error}"),
            )
        })?;
        for block in &recovered.replay {
            if self.tree.apply(block.clone()).is_ok() {
                self.stats.blocks_replayed += 1;
            }
        }
        self.persistence = Some(Persistence {
            store,
            snapshot_interval,
            since_snapshot: 0,
            sync_appends,
        });
        self.stats.crash_restarts += 1;
        self.stats.recovery_lost_bytes += recovered.report.lost_bytes;
        if self.tree.fingerprint() == pre_crash_fingerprint {
            self.stats.recoveries_identical += 1;
        }
        // Rejoin handshake: announce the recovered tip so peers learn the
        // node is back; any block mined meanwhile arrives as an orphan and
        // triggers the normal catch-up segment sync.
        let out = match self.tree.tip_block().cloned() {
            Some(tip) => vec![Outgoing::Broadcast(Message::Block(tip))],
            None => Vec::new(),
        };
        Ok((recovered.report, out))
    }

    /// Appends a newly stored block to the segment log and commits a
    /// periodic snapshot when the interval is due. Persistence I/O errors
    /// are fatal: a store that silently stops recording would break the
    /// crash-recovery guarantee the simulation asserts.
    pub(crate) fn persist_block(&mut self, block: &Block) {
        let due = {
            let Some(p) = self.persistence.as_mut() else {
                return;
            };
            p.store
                .append_block(block)
                .expect("segment-log append must succeed while the node runs");
            p.since_snapshot += 1;
            p.snapshot_interval > 0 && p.since_snapshot >= p.snapshot_interval
        };
        if due {
            self.snapshot_to_store();
        }
    }

    /// Commits a full-tree snapshot to the attached store (no-op without
    /// one), resetting the periodic-snapshot counter.
    pub(crate) fn snapshot_to_store(&mut self) {
        let Self {
            tree, persistence, ..
        } = &mut *self;
        if let Some(p) = persistence.as_mut() {
            p.store
                .snapshot_now(&tree.snapshot())
                .expect("snapshot commit must succeed while the node runs");
            p.since_snapshot = 0;
        }
    }

    /// The node's identifier (its index in the simulation).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's current best tip digest — the header-chain tip for a
    /// light node, the fork-tree tip otherwise.
    pub fn tip(&self) -> Digest256 {
        match &self.light {
            Some(light) => light.headers.tip(),
            None => self.tree.tip(),
        }
    }

    /// Height of the node's best chain (header chain for a light node).
    pub fn tip_height(&self) -> u64 {
        match &self.light {
            Some(light) => light.headers.tip_height(),
            None => self.tree.tip_height(),
        }
    }

    /// The node's network role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Digest of the last tip whose transaction proofs verified — genesis
    /// until the first batch lands. Only meaningful for light nodes.
    pub fn proved_tip(&self) -> Digest256 {
        match &self.light {
            Some(light) => light.proved_tip,
            None => GENESIS_HASH,
        }
    }

    /// The node's fork tree.
    pub fn tree(&self) -> &ForkTree<P> {
        &self.tree
    }

    /// The node's counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// `true` when this node runs an adversarial strategy.
    pub fn is_adversarial(&self) -> bool {
        self.strategy.is_adversarial()
    }

    /// The strategy's short name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// The node this node's strategy is trying to eclipse, if any (see
    /// [`Strategy::eclipse_target`]).
    pub fn eclipse_target(&self) -> Option<usize> {
        self.strategy.eclipse_target()
    }

    /// Peers this node has banned.
    pub fn banned_peers(&self) -> &BTreeSet<usize> {
        &self.banned
    }

    /// Blocks currently withheld by the strategy.
    pub fn withheld_len(&self) -> usize {
        self.withheld.len()
    }

    /// Handles one delivered message from `from` at simulated time
    /// `now_ms` (the timestamp-validity rule's clock), returning the
    /// follow-up sends. Traffic from banned peers is dropped unseen.
    pub fn handle(&mut self, now_ms: u64, from: usize, message: Message) -> Vec<Outgoing> {
        if self.banned.contains(&from) {
            self.stats.rejections.from_banned += 1;
            return Vec::new();
        }
        match message {
            // The full-validation paths: a light node ignores body traffic
            // entirely (the scheduler converts announcements to headers).
            Message::Block(block) if self.role == Role::Full => {
                self.handle_block(now_ms, from, block)
            }
            Message::GetSegment { want, locator } if self.role == Role::Full => {
                self.handle_get_segment(from, want, &locator)
            }
            Message::Segment(blocks) if self.role == Role::Full => {
                self.handle_segment(now_ms, from, blocks)
            }
            Message::Block(_) | Message::GetSegment { .. } | Message::Segment(_) => Vec::new(),
            // The light-client protocol: full nodes serve, light nodes
            // consume.
            Message::GetHeaders { locator } => self.handle_get_headers(from, &locator),
            Message::Headers(headers) => self.handle_headers(now_ms, from, headers),
            Message::GetProof { block, indices } => self.handle_get_proof(from, block, indices),
            Message::Proof {
                block,
                leaf_count,
                items,
                nodes,
            } => self.handle_proof(now_ms, from, block, leaf_count, items, nodes),
        }
    }

    /// One rejection against `from`; bans the peer once the threshold is
    /// crossed.
    pub(crate) fn penalize(&mut self, from: usize) {
        let count = self.penalties.entry(from).or_insert(0);
        *count += 1;
        if self.ban_threshold > 0 && *count >= self.ban_threshold && self.banned.insert(from) {
            self.stats.peers_banned += 1;
        }
    }

    /// `true` when an orphan's embedded target is within
    /// [`ORPHAN_EASING_SLACK`] of the local tip's target — the
    /// anti-sync-DoS floor adaptive-rule nodes apply before requesting an
    /// unknown branch's ancestry.
    pub(crate) fn orphan_target_plausible(&self, block: &Block) -> bool {
        let local = match self.tree.tip_block() {
            Some(tip) => Target::from_threshold(tip.header.target),
            None => self.rule().genesis_target(),
        };
        let floor = local.scale(ORPHAN_EASING_SLACK);
        // Bigger threshold = easier target; beyond the eased floor is
        // implausible.
        block.header.target <= *floor.threshold()
    }

    /// Timestamp validity of one gossiped block under the configured
    /// [`TimestampRule`] (`true` when no rule is configured).
    pub(crate) fn block_timestamp_plausible(&self, now_ms: u64, block: &Block) -> bool {
        let Some(rule) = self.timestamp_rule else {
            return true;
        };
        if block.header.timestamp > now_ms.saturating_add(rule.max_future_drift_ms) {
            return false;
        }
        let prev = block.header.prev_hash;
        if prev != GENESIS_HASH {
            if let Some(mtp) = self.tree.median_time_past(&prev, rule.mtp_window) {
                if block.header.timestamp <= mtp {
                    return false;
                }
            }
        }
        true
    }

    /// Timestamp validity of a whole received segment: every block is
    /// drift-bounded against `now_ms` and strictly above the
    /// median-time-past of its own rolling ancestor window, seeded with
    /// the anchor's stored ancestry — the same bound
    /// [`Node::block_timestamp_plausible`] applies per gossiped block.
    pub(crate) fn segment_timestamps_plausible(
        &self,
        now_ms: u64,
        anchor: Digest256,
        blocks: &[Block],
    ) -> bool {
        let Some(rule) = self.timestamp_rule else {
            return true;
        };
        let horizon = now_ms.saturating_add(rule.max_future_drift_ms);
        let mut window: Vec<u64> = if anchor == GENESIS_HASH {
            Vec::new()
        } else {
            self.tree.ancestor_timestamps(&anchor, rule.mtp_window)
        };
        for block in blocks {
            if block.header.timestamp > horizon {
                return false;
            }
            if !window.is_empty() {
                let mut sorted = window.clone();
                sorted.sort_unstable();
                if block.header.timestamp <= sorted[(sorted.len() - 1) / 2] {
                    return false;
                }
            }
            window.push(block.header.timestamp);
            if window.len() > rule.mtp_window {
                window.remove(0);
            }
        }
        true
    }

    /// Notes that a public (announced) block now carries `work`; while the
    /// strategy withholds a private chain, the public chain's advance is
    /// what triggers releases — or abandonment, when the fork tree has
    /// already switched to the public branch.
    pub(crate) fn note_public_work(&mut self, digest: Digest256) -> Vec<Outgoing> {
        let work = self.tree.work_of(&digest);
        if work <= self.public_work {
            return Vec::new();
        }
        self.public_work = work;
        self.public_tip = digest;
        if self.withheld.is_empty() {
            return Vec::new();
        }
        let private_tip = self.withheld.last().expect("non-empty").1;
        if self.tree.tip() != private_tip {
            // The public branch overtook the private chain: abandon it.
            self.stats.withheld_abandoned += self.withheld.len() as u64;
            self.withheld.clear();
            return Vec::new();
        }
        let lead = self.tree.tip_height() as i64 - self.tree.height_of(&self.public_tip) as i64;
        let release = self
            .strategy
            .on_public_advance(lead, self.withheld.len())
            .min(self.withheld.len());
        let mut out = Vec::new();
        for (block, digest) in self.withheld.drain(..release) {
            self.stats.blocks_released += 1;
            // Released blocks are public now.
            let released_work = self.tree.work_of(&digest);
            if released_work > self.public_work {
                self.public_work = released_work;
                self.public_tip = digest;
            }
            out.push(Outgoing::Broadcast(Message::Block(block)));
        }
        out
    }

    /// Books a tip change's reorg depth and enforces the retention window
    /// — called on every path that can advance the tip (mining, gossip;
    /// segment sync prunes once after its apply loop).
    pub(crate) fn record_tip_change(&mut self, outcome: &ApplyOutcome) {
        if let ApplyOutcome::TipChanged { reorg, .. } = outcome {
            if reorg.depth() > 0 {
                self.stats.reorg_depths.push(reorg.depth());
            }
            self.maybe_prune();
        }
    }

    pub(crate) fn maybe_prune(&mut self) {
        if let Some(depth) = self.prune_depth {
            // Amortized batch eviction: `prune` walks every retained entry,
            // so let the window grow to twice the retention depth and evict
            // in chunks instead of paying O(stored blocks) per tip change.
            // Serving is unaffected (extra retained history only widens the
            // locator-safe window) and memory stays bounded by 2x depth.
            let lag = self
                .tree
                .tip_height()
                .saturating_sub(self.tree.root_height());
            if lag > depth.saturating_mul(2) {
                let pruned = self.tree.prune(depth) as u64;
                self.stats.blocks_pruned += pruned;
                // A snapshot right after the eviction keeps the durable
                // state in lock-step with the pruned tree: recovery from
                // (post-prune snapshot + later appends) reproduces the
                // live tree exactly, instead of resurrecting evicted
                // branches from pre-prune logs.
                if pruned > 0 {
                    self.snapshot_to_store();
                }
            }
        }
    }
}
