//! A simulated node: fork tree, resumable miner, gossip and segment sync —
//! with behaviour delegated to a [`Strategy`](crate::strategy::Strategy)
//! and hardened against the adversarial ones.
//!
//! Split by concern: [`core`](self) holds the node state machine, builders
//! and hardening policy; `miner` the resumable nonce-scanning loop; `sync`
//! the orphan/segment request machinery; `serve` the responder paths
//! (segments, headers and batched Merkle proofs); `light` the header-first
//! light-client role; and `stats` the per-node counters every report
//! aggregates.

use hashcore_chain::Block;
use hashcore_crypto::Digest256;

mod core;
mod light;
mod miner;
mod serve;
mod stats;
mod sync;
#[cfg(test)]
mod tests;

pub use self::core::Node;
pub use light::LightConfig;
pub use stats::{NodeStats, RejectionCounts, SyncReorg};

/// Most headers a full node packs into one `Headers` response. A light
/// client receiving a full batch immediately requests the next one, so a
/// deep catch-up streams in bounded messages instead of one unbounded
/// reply.
pub const MAX_HEADERS_PER_MSG: usize = 256;

/// What a node does on the network: full validation or header-first light
/// sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// Mines, validates bodies, serves segments, headers and proofs.
    #[default]
    Full,
    /// Maintains a header chain only: syncs headers first, verifies
    /// transactions of interest against batched Merkle inclusion proofs
    /// served by full nodes, and never executes block bodies.
    Light,
}

/// Re-requests a node attempts after its first segment request stalls
/// before it abandons the orphan.
const MAX_SYNC_RETRIES: u32 = 3;

/// Easiest embedded target an unknown-parent (orphan) announcement may
/// claim, relative to the local tip's target, before an adaptive-rule node
/// refuses to spend sync effort on it: three retarget clamp steps
/// (4³ = 64×). Spam minted at a near-free target fails the floor and is
/// dropped instead of buying a PoW evaluation plus a request/timeout/retry
/// cycle per message. The drop is deliberately *penalty-free*: after a
/// long partition an honest side's branch can legitimately ease beyond
/// the slack, and its re-announcements must not get honest relayers
/// banned — ignoring them is convergence-safe because a heavier
/// (harder-target) competing chain always passes the floor, so the
/// heavier side's chain still propagates and the easier side reorgs onto
/// it. Fixed-rule nodes need no floor: any non-consensus target is
/// rejected outright.
const ORPHAN_EASING_SLACK: f64 = 64.0;

/// Header-timestamp validity rule honest nodes enforce on incoming blocks
/// and segments — the defence that bounds timestamp-skew difficulty
/// manipulation once difficulty is adaptive:
///
/// * **future drift** — a block's reported timestamp may sit at most
///   `max_future_drift_ms` past the receiver's clock at delivery time, and
/// * **median-time-past** — it must be strictly greater than the median of
///   the `mtp_window` reported timestamps ending at its parent, so time
///   (and with it the retarget rule's elapsed observations) cannot be
///   rewound.
///
/// Locally mined blocks are not self-checked — an adversary would not
/// police itself — so a skewing miner's blocks are rejected at every
/// *honest* node's edge instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimestampRule {
    /// Maximum simulated milliseconds a block timestamp may lie in the
    /// receiving node's future.
    pub max_future_drift_ms: u64,
    /// Number of trailing ancestor timestamps the median-time-past lower
    /// bound is computed over.
    pub mtp_window: usize,
}

impl Default for TimestampRule {
    fn default() -> Self {
        Self {
            max_future_drift_ms: 5_000,
            mtp_window: 11,
        }
    }
}

/// A message exchanged between simulated nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A full block, gossiped as it spreads through the network.
    Block(Block),
    /// Request for the segment ending at `want`, carrying the requester's
    /// block locator so the responder ships only the missing suffix.
    GetSegment {
        /// PoW digest of the block whose ancestry the requester is missing.
        want: Digest256,
        /// The requester's best-chain locator (see `ForkTree::locator`).
        locator: Vec<Digest256>,
    },
    /// Response to `GetSegment`: a contiguous segment, ascending height.
    Segment(Vec<Block>),
    /// Light-client request for headers above the requester's locator.
    GetHeaders {
        /// The requester's best-header-chain locator (same shape as
        /// `ForkTree::locator`).
        locator: Vec<Digest256>,
    },
    /// Response to `GetHeaders`: consecutive headers ascending height, at
    /// most [`MAX_HEADERS_PER_MSG`] per message. Also how a block
    /// announcement reaches a light subscriber (a single-header message).
    Headers(Vec<hashcore_chain::BlockHeader>),
    /// Light-client request for a batched Merkle inclusion proof of the
    /// transactions at `indices` in the block with digest `block`.
    GetProof {
        /// PoW digest of the block whose transactions are requested.
        block: Digest256,
        /// Leaf indices of the transactions of interest.
        indices: Vec<u32>,
    },
    /// Response to `GetProof`: the requested transactions with one batched
    /// inclusion proof against the block's committed Merkle root.
    Proof {
        /// PoW digest of the proven block.
        block: Digest256,
        /// Leaf count of the block's transaction tree (fixes the verifier's
        /// traversal shape).
        leaf_count: u32,
        /// The proven `(leaf index, raw transaction)` pairs.
        items: Vec<(u32, Vec<u8>)>,
        /// Shared sibling nodes, deterministic traversal order.
        nodes: Vec<Digest256>,
    },
}

impl Message {
    /// Exact serialized size of this message in bytes, under the canonical
    /// wire layout: a 1-byte variant tag, 4-byte little-endian length
    /// prefixes for every list and payload, 32-byte digests, and the
    /// 116-byte header encoding of `BlockHeader::bytes` (4 version + 32
    /// prev + 32 merkle + 8 timestamp + 32 target + 8 nonce). This is the
    /// substrate for the simulator's per-node bandwidth accounting — what
    /// traffic *costs*, not how many messages it took.
    pub fn wire_size(&self) -> u64 {
        /// Length-prefixed payload: 4-byte length + the bytes themselves.
        fn payload(bytes: &[u8]) -> u64 {
            4 + bytes.len() as u64
        }
        /// One serialized block: header + transaction list.
        fn block(b: &Block) -> u64 {
            HEADER_WIRE_BYTES + 4 + b.transactions.iter().map(|tx| payload(tx)).sum::<u64>()
        }
        const TAG: u64 = 1;
        const DIGEST: u64 = 32;
        const HEADER_WIRE_BYTES: u64 = 116;
        match self {
            Message::Block(b) => TAG + block(b),
            Message::GetSegment { locator, .. } => TAG + DIGEST + 4 + DIGEST * locator.len() as u64,
            Message::Segment(blocks) => TAG + 4 + blocks.iter().map(block).sum::<u64>(),
            Message::GetHeaders { locator } => TAG + 4 + DIGEST * locator.len() as u64,
            Message::Headers(headers) => TAG + 4 + HEADER_WIRE_BYTES * headers.len() as u64,
            Message::GetProof { indices, .. } => TAG + DIGEST + 4 + 4 * indices.len() as u64,
            Message::Proof { items, nodes, .. } => {
                TAG + DIGEST
                    + 4
                    + 4
                    + items.iter().map(|(_, tx)| 4 + payload(tx)).sum::<u64>()
                    + 4
                    + DIGEST * nodes.len() as u64
            }
        }
    }
}

/// A send a node wants performed after handling an event. The scheduler
/// owns the peer list and the RNG, so fan-out sampling happens there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outgoing {
    /// Send to one specific peer (sync requests and responses).
    To(usize, Message),
    /// Relay to a gossip sample of `fan_out` peers.
    Gossip(Message),
    /// Announce to every reachable peer (freshly mined blocks).
    Broadcast(Message),
    /// Send to one peer after an extra delay (a stalling responder).
    DelayedTo {
        /// The destination peer.
        to: usize,
        /// Extra simulated milliseconds before the send leaves the node.
        after_ms: u64,
        /// The delayed message.
        message: Message,
    },
    /// Ask the scheduler to call [`Node::on_timer`] with `token` after
    /// `after_ms` simulated milliseconds — the request-timeout clock.
    Timer {
        /// Opaque token handed back to the node (the awaited digest).
        token: Digest256,
        /// Simulated milliseconds until the timer fires.
        after_ms: u64,
    },
}
