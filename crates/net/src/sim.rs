//! The deterministic event-driven scheduler: seeded latency, gossip
//! fan-out, partitions, and the simulation report.

use crate::node::{Message, Node, Outgoing};
use hashcore::Target;
use hashcore_baselines::PreparedPow;
use hashcore_crypto::Digest256;
use hashcore_gen::WidgetRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt::Write as _;

/// Gossip latency model: every message takes `base_ms` plus a uniformly
/// sampled jitter in `0..=jitter_ms`, drawn from the simulation's seeded
/// RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed propagation delay, milliseconds.
    pub base_ms: u64,
    /// Maximum additional jitter, milliseconds.
    pub jitter_ms: u64,
}

impl LatencyModel {
    fn sample(&self, rng: &mut WidgetRng) -> u64 {
        if self.jitter_ms == 0 {
            self.base_ms
        } else {
            self.base_ms + rng.next_bounded(self.jitter_ms + 1)
        }
    }
}

/// A scheduled network partition: from `start_ms` until `end_ms`, nodes
/// with id below `split` cannot exchange messages with the rest. On heal,
/// every node re-announces its tip — the reconnect handshake that seeds
/// catch-up sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// When the partition begins, milliseconds.
    pub start_ms: u64,
    /// When the partition heals, milliseconds.
    pub end_ms: u64,
    /// Nodes `0..split` form one side, `split..nodes` the other.
    pub split: usize,
}

/// Full configuration of one simulation run. A run is a pure function of
/// this value — see the crate docs for the determinism guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Seed for all randomness (latency jitter, gossip sampling).
    pub seed: u64,
    /// Mining difficulty, in leading zero bits (all nodes mine at this
    /// fixed target; difficulty policy is out of scope for the race model).
    pub difficulty_bits: u32,
    /// Nonces each node evaluates per mining slice.
    pub attempts_per_slice: u64,
    /// Simulated duration of one mining slice, milliseconds.
    pub slice_ms: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Peers a relayed (not freshly mined) block is gossiped to.
    pub fan_out: usize,
    /// Scheduled partitions. Must not overlap in time.
    pub partitions: Vec<Partition>,
    /// Simulated time after which mining stops, milliseconds. In-flight
    /// messages still drain, so the network settles before the report.
    pub duration_ms: u64,
    /// Worker threads handed to `validate_segment_parallel` during sync.
    pub sync_threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            nodes: 5,
            seed: 0x5eed_c0de,
            difficulty_bits: 11,
            attempts_per_slice: 64,
            slice_ms: 100,
            latency: LatencyModel {
                base_ms: 20,
                jitter_ms: 80,
            },
            fan_out: 2,
            partitions: Vec::new(),
            duration_ms: 60_000,
            sync_threads: 4,
        }
    }
}

/// What one event does when it fires.
#[derive(Debug, Clone)]
enum EventKind {
    /// Node runs one mining slice.
    MineSlice { node: usize },
    /// A message arrives.
    Deliver {
        to: usize,
        from: usize,
        message: Message,
    },
    /// A partition begins.
    PartitionStart { index: usize },
    /// A partition heals.
    PartitionEnd { index: usize },
}

/// A queued event, ordered by `(time, seq)` — `seq` is the insertion
/// counter, so ties break deterministically.
#[derive(Debug, Clone)]
struct Scheduled {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Number of nodes simulated.
    pub nodes: usize,
    /// The seed the run used.
    pub seed: u64,
    /// Mining horizon, milliseconds.
    pub duration_ms: u64,
    /// `true` when every node finished on the same non-empty tip.
    pub converged: bool,
    /// Simulated time at which the network last became fully converged
    /// (and stayed so through the end), if it did.
    pub convergence_ms: Option<u64>,
    /// The common tip digest (node 0's tip if not converged).
    pub tip: Digest256,
    /// Height of that tip.
    pub tip_height: u64,
    /// Blocks mined across all nodes.
    pub blocks_mined: u64,
    /// Every non-trivial reorg depth observed by any node, sorted
    /// descending.
    pub reorg_depths: Vec<usize>,
    /// The deepest reorg any node performed.
    pub max_reorg_depth: usize,
    /// Segments validated through `validate_segment_parallel`, all nodes.
    pub segments_synced: u64,
    /// Total blocks across those segments.
    pub segment_blocks: u64,
    /// Messages delivered (or in flight) across the run.
    pub messages_sent: u64,
    /// Messages dropped at partition boundaries.
    pub messages_dropped: u64,
    /// Wall-clock seconds spent inside segment validation, all nodes.
    /// Excluded from [`SimReport::fingerprint`] — it is the one
    /// non-deterministic field.
    pub sync_wall_seconds: f64,
}

impl SimReport {
    /// A canonical rendering of every deterministic field. Two runs with
    /// the same [`SimConfig`] produce identical fingerprints.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "nodes={} seed={} duration={} converged={} convergence={:?} \
             tip={} height={} mined={} reorgs={:?} max_reorg={} \
             segments={} segment_blocks={} sent={} dropped={}",
            self.nodes,
            self.seed,
            self.duration_ms,
            self.converged,
            self.convergence_ms,
            hashcore_crypto::hex::encode(&self.tip),
            self.tip_height,
            self.blocks_mined,
            self.reorg_depths,
            self.max_reorg_depth,
            self.segments_synced,
            self.segment_blocks,
            self.messages_sent,
            self.messages_dropped,
        );
        out
    }

    /// Blocks validated by segment sync per wall-clock second — the sync
    /// throughput figure `BENCH_sync.json` records.
    pub fn sync_blocks_per_sec(&self) -> f64 {
        if self.sync_wall_seconds > 0.0 {
            self.segment_blocks as f64 / self.sync_wall_seconds
        } else {
            0.0
        }
    }
}

/// The event-driven network simulation.
///
/// Build one with [`Simulation::new`], [`Simulation::run`] it to completion,
/// then inspect the [`SimReport`] and the per-node state via
/// [`Simulation::nodes`].
#[derive(Debug)]
pub struct Simulation<P: PreparedPow + std::fmt::Debug>
where
    P::Scratch: std::fmt::Debug,
{
    config: SimConfig,
    nodes: Vec<Node<P>>,
    queue: BinaryHeap<Scheduled>,
    rng: WidgetRng,
    seq: u64,
    now: u64,
    split: Option<usize>,
    converged_at: Option<u64>,
    messages_sent: u64,
    messages_dropped: u64,
}

impl<P: PreparedPow + Sync + std::fmt::Debug> Simulation<P>
where
    P::Scratch: std::fmt::Debug,
{
    /// Creates a simulation; `make_pow` builds each node's PoW instance
    /// (nodes can share a cheap `Clone` or each own a configured one).
    ///
    /// # Panics
    ///
    /// Panics if the config has fewer than two nodes, a zero slice, a
    /// partition with `split` outside `1..nodes`, or partitions that
    /// overlap in time.
    pub fn new(config: SimConfig, mut make_pow: impl FnMut(usize) -> P) -> Self {
        assert!(config.nodes >= 2, "a network needs at least two nodes");
        assert!(config.slice_ms > 0, "mining slices need a positive length");
        for p in &config.partitions {
            assert!(
                p.split >= 1 && p.split < config.nodes,
                "partition split must leave nodes on both sides"
            );
            assert!(
                p.start_ms < p.end_ms,
                "partitions must have positive length"
            );
        }
        // The single active-split state cannot represent concurrent
        // partitions, so reject what it would silently get wrong.
        let mut windows: Vec<(u64, u64)> = config
            .partitions
            .iter()
            .map(|p| (p.start_ms, p.end_ms))
            .collect();
        windows.sort_unstable();
        for pair in windows.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "partitions must not overlap in time"
            );
        }
        let target = Target::from_leading_zero_bits(config.difficulty_bits);
        let nodes = (0..config.nodes)
            .map(|id| Node::new(id, make_pow(id), target, config.sync_threads))
            .collect();
        let mut sim = Self {
            rng: WidgetRng::new(config.seed),
            nodes,
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            split: None,
            converged_at: None,
            messages_sent: 0,
            messages_dropped: 0,
            config,
        };
        for node in 0..sim.config.nodes {
            sim.schedule(sim.config.slice_ms, EventKind::MineSlice { node });
        }
        for index in 0..sim.config.partitions.len() {
            let p = sim.config.partitions[index];
            sim.schedule(p.start_ms, EventKind::PartitionStart { index });
            sim.schedule(p.end_ms, EventKind::PartitionEnd { index });
        }
        sim
    }

    /// The simulated nodes (final state after [`Simulation::run`]).
    pub fn nodes(&self) -> &[Node<P>] {
        &self.nodes
    }

    /// The configuration the simulation runs under.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { time, seq, kind });
    }

    /// `true` when `a` and `b` can currently exchange messages.
    fn connected(&self, a: usize, b: usize) -> bool {
        match self.split {
            None => true,
            Some(split) => (a < split) == (b < split),
        }
    }

    /// Queues a message send, applying partition drops and sampled latency.
    fn send(&mut self, from: usize, to: usize, message: Message) {
        if !self.connected(from, to) {
            self.messages_dropped += 1;
            return;
        }
        self.messages_sent += 1;
        let latency = self.config.latency.sample(&mut self.rng);
        let time = self.now + latency.max(1);
        self.schedule(time, EventKind::Deliver { to, from, message });
    }

    /// Executes a node's outgoing sends: direct, gossip-sampled, or
    /// broadcast.
    fn dispatch(&mut self, from: usize, outgoing: Vec<Outgoing>) {
        for out in outgoing {
            match out {
                Outgoing::To(dest, message) => self.send(from, dest, message),
                Outgoing::Broadcast(message) => {
                    for dest in 0..self.config.nodes {
                        if dest != from {
                            self.send(from, dest, message.clone());
                        }
                    }
                }
                Outgoing::Gossip(message) => {
                    let mut peers: Vec<usize> =
                        (0..self.config.nodes).filter(|&d| d != from).collect();
                    let sample = self.config.fan_out.min(peers.len());
                    for _ in 0..sample {
                        let pick = self.rng.next_bounded(peers.len() as u64) as usize;
                        let dest = peers.swap_remove(pick);
                        self.send(from, dest, message.clone());
                    }
                }
            }
        }
    }

    /// Tracks when the network last became (and stayed) fully converged.
    fn update_convergence(&mut self) {
        let tip = self.nodes[0].tip();
        let all_equal = tip != [0u8; 32] && self.nodes.iter().all(|n| n.tip() == tip);
        if all_equal {
            if self.converged_at.is_none() {
                self.converged_at = Some(self.now);
            }
        } else {
            self.converged_at = None;
        }
    }

    /// Runs the simulation to completion — mining until the horizon, then
    /// draining in-flight traffic — and reports the aggregate outcome.
    pub fn run(&mut self) -> SimReport {
        while let Some(event) = self.queue.pop() {
            self.now = event.time;
            match event.kind {
                EventKind::MineSlice { node } => {
                    let outgoing =
                        self.nodes[node].mine_slice(self.now, self.config.attempts_per_slice);
                    self.dispatch(node, outgoing);
                    let next = self.now + self.config.slice_ms;
                    if next <= self.config.duration_ms {
                        self.schedule(next, EventKind::MineSlice { node });
                    }
                }
                EventKind::Deliver { to, from, message } => {
                    let outgoing = self.nodes[to].handle(from, message);
                    self.dispatch(to, outgoing);
                }
                EventKind::PartitionStart { index } => {
                    self.split = Some(self.config.partitions[index].split);
                }
                EventKind::PartitionEnd { index } => {
                    let _ = index;
                    self.split = None;
                    // Reconnect handshake: every node announces its tip, so
                    // the two sides discover each other's branch even if no
                    // further block is mined.
                    for from in 0..self.config.nodes {
                        if let Some(block) = self.nodes[from].tree().tip_block().cloned() {
                            self.dispatch(from, vec![Outgoing::Broadcast(Message::Block(block))]);
                        }
                    }
                }
            }
            self.update_convergence();
        }
        self.report()
    }

    fn report(&self) -> SimReport {
        let mut reorg_depths: Vec<usize> = self
            .nodes
            .iter()
            .flat_map(|n| n.stats().reorg_depths.iter().copied())
            .collect();
        reorg_depths.sort_unstable_by(|a, b| b.cmp(a));
        let tip = self.nodes[0].tip();
        let converged = tip != [0u8; 32] && self.nodes.iter().all(|n| n.tip() == tip);
        SimReport {
            nodes: self.config.nodes,
            seed: self.config.seed,
            duration_ms: self.config.duration_ms,
            converged,
            convergence_ms: self.converged_at,
            tip,
            tip_height: self.nodes[0].tip_height(),
            blocks_mined: self.nodes.iter().map(|n| n.stats().blocks_mined).sum(),
            max_reorg_depth: reorg_depths.first().copied().unwrap_or(0),
            reorg_depths,
            segments_synced: self.nodes.iter().map(|n| n.stats().segments_synced).sum(),
            segment_blocks: self.nodes.iter().map(|n| n.stats().segment_blocks).sum(),
            messages_sent: self.messages_sent,
            messages_dropped: self.messages_dropped,
            sync_wall_seconds: self.nodes.iter().map(|n| n.stats().sync_wall_seconds).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashcore_baselines::Sha256dPow;

    fn quick_config() -> SimConfig {
        SimConfig {
            nodes: 4,
            seed: 42,
            difficulty_bits: 8,
            attempts_per_slice: 32,
            slice_ms: 100,
            duration_ms: 20_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn a_quiet_network_converges_on_one_chain() {
        let mut sim = Simulation::new(quick_config(), |_| Sha256dPow);
        let report = sim.run();
        assert!(report.converged, "{}", report.fingerprint());
        assert!(report.blocks_mined > 0);
        assert!(report.tip_height > 0);
        assert!(report.convergence_ms.is_some());
        // Every node's best chain revalidates.
        for node in sim.nodes() {
            node.tree().validate_best_chain().expect("honest chain");
        }
    }

    #[test]
    fn same_seed_same_fingerprint() {
        let a = Simulation::new(quick_config(), |_| Sha256dPow).run();
        let b = Simulation::new(quick_config(), |_| Sha256dPow).run();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Simulation::new(
            SimConfig {
                seed: 43,
                ..quick_config()
            },
            |_| Sha256dPow,
        )
        .run();
        assert!(c.converged);
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "different seed, different race"
        );
    }

    #[test]
    fn a_partition_forces_a_reorg_and_heals() {
        let config = SimConfig {
            nodes: 5,
            seed: 7,
            difficulty_bits: 9,
            attempts_per_slice: 64,
            slice_ms: 100,
            duration_ms: 40_000,
            partitions: vec![Partition {
                start_ms: 5_000,
                end_ms: 25_000,
                split: 2,
            }],
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config, |_| Sha256dPow);
        let report = sim.run();
        assert!(report.converged, "{}", report.fingerprint());
        assert!(report.messages_dropped > 0, "the partition must bite");
        assert!(
            report.max_reorg_depth >= 1,
            "healing must reorganise the losing side: {}",
            report.fingerprint()
        );
        assert!(report.segments_synced >= 1, "{}", report.fingerprint());
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_partitions_are_rejected() {
        let _ = Simulation::new(
            SimConfig {
                partitions: vec![
                    Partition {
                        start_ms: 1_000,
                        end_ms: 5_000,
                        split: 2,
                    },
                    Partition {
                        start_ms: 3_000,
                        end_ms: 10_000,
                        split: 3,
                    },
                ],
                ..SimConfig::default()
            },
            |_| Sha256dPow,
        );
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_networks_are_rejected() {
        let _ = Simulation::new(
            SimConfig {
                nodes: 1,
                ..SimConfig::default()
            },
            |_| Sha256dPow,
        );
    }
}
