//! The deterministic event-driven scheduler: seeded latency, gossip
//! fan-out, partitions, request timeouts, and the simulation report.

use crate::node::{LightConfig, Message, Node, Outgoing, RejectionCounts, Role, TimestampRule};
use crate::sched::{Scheduled, ShardedQueue};
use crate::strategy::{Honest, Strategy};
use crate::topology::{Overlay, TopologyConfig};
use hashcore::Target;
use hashcore_baselines::PreparedPow;
use hashcore_chain::{CostAwareRetarget, DifficultyRule, EmaRetarget, GENESIS_HASH};
use hashcore_crypto::Digest256;
use hashcore_gen::WidgetRng;
use hashcore_store::ChainStore;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Gossip latency model: every message takes `base_ms` plus a uniformly
/// sampled jitter in `0..=jitter_ms`, drawn from the simulation's seeded
/// RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed propagation delay, milliseconds.
    pub base_ms: u64,
    /// Maximum additional jitter, milliseconds.
    pub jitter_ms: u64,
}

impl LatencyModel {
    fn sample(&self, rng: &mut WidgetRng) -> u64 {
        if self.jitter_ms == 0 {
            self.base_ms
        } else {
            self.base_ms + rng.next_bounded(self.jitter_ms + 1)
        }
    }
}

/// A scheduled network partition: from `start_ms` until `end_ms`, nodes
/// with id below `split` cannot exchange messages with the rest. On heal,
/// every node re-announces its tip — the reconnect handshake that seeds
/// catch-up sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// When the partition begins, milliseconds.
    pub start_ms: u64,
    /// When the partition heals, milliseconds.
    pub end_ms: u64,
    /// Nodes `0..split` form one side, `split..nodes` the other.
    pub split: usize,
}

/// Per-branch EMA difficulty retargeting for the simulation: the
/// [`DifficultyRule::Ema`] rule, seeded at the run's `difficulty_bits` and
/// evaluated in simulated milliseconds. Every node derives its mining
/// target from its current best branch, and every fork tree enforces the
/// rule's expectation along each branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetargetConfig {
    /// Desired simulated milliseconds between blocks.
    pub target_block_time_ms: f64,
    /// Exponential-moving-average weight of the retarget step (see
    /// [`EmaRetarget::gain`]).
    pub gain: f64,
}

/// Verifier-cost feedback layered on top of [`SimConfig::retarget`]: the
/// run installs [`DifficultyRule::CostAware`] instead of the plain EMA
/// rule, so every header carries a quantized cost-EMA commitment in its
/// version word, branch targets harden when recent blocks trend
/// expensive-to-verify, and the per-block admission bound taxes expensive
/// seeds — the defence the cost-steering adversary is measured against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPolicyConfig {
    /// EMA weight of each block's observed cost ratio in the committed
    /// cost average (see [`CostAwareRetarget::cost_gain`]).
    pub cost_gain: f64,
    /// Exponent shaping how hard targets and admission react to the cost
    /// signal (see [`CostAwareRetarget::response`]).
    pub response: f64,
}

/// Per-node on-disk persistence for a simulation run: each node gets a
/// fresh [`ChainStore`] in `dir/node-<id>/` and appends every stored block
/// to its segment log (see [`crate::Node::with_persistence`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceConfig {
    /// Directory under which each node's store lives (`node-<id>/`
    /// subdirectories are created; pre-existing store files are an error —
    /// a run never silently extends an older run's history).
    pub dir: PathBuf,
    /// Snapshot every N stored blocks (0 = snapshot only after prunes).
    pub snapshot_interval: u64,
    /// Whether every append fsyncs before returning.
    pub sync_appends: bool,
}

/// Light-client population for a simulation run: nodes `first_light..`
/// take [`Role::Light`] and sync headers (plus batched Merkle proofs of
/// the transactions at `proof_indices`) from the full nodes
/// `0..first_light`, which serve at most `proof_quota` proofs per
/// requesting peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LightSimConfig {
    /// First light node id; nodes `0..first_light` stay full and act as
    /// the light population's servers. Must be in `1..nodes`.
    pub first_light: usize,
    /// Simulated milliseconds before a light client re-issues an
    /// unanswered header or proof request to its next server.
    pub request_timeout_ms: u64,
    /// Transaction leaf indices every light client proves per new tip;
    /// empty runs header-only clients.
    pub proof_indices: Vec<u32>,
    /// Most proofs a full node serves any single peer (0 = unlimited).
    pub proof_quota: u64,
    /// Deterministic filler bytes every mined block carries as a second
    /// transaction — simulated transaction volume, so the full-vs-light
    /// bandwidth comparison measures something real (0 = bare template).
    pub body_bytes: usize,
}

/// A scheduled crash-restart: `node` goes dark at `at_ms` (drops all
/// traffic, mines nothing), then restarts at `at_ms + down_ms` from its
/// on-disk store — recovery ladder, tip re-announcement, and catch-up via
/// the existing segment sync. Requires [`SimConfig::persistence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRestart {
    /// The node that crashes.
    pub node: usize,
    /// Simulated time of the crash, milliseconds.
    pub at_ms: u64,
    /// Downtime before the restart, milliseconds (must be positive).
    pub down_ms: u64,
    /// Bytes sheared off the node's active segment log at restart —
    /// deterministic torn-tail injection modelling appends that never
    /// became durable (0 = the disk kept everything).
    pub torn_tail_bytes: u64,
}

/// Full configuration of one simulation run. A run is a pure function of
/// this value (plus the strategy assignment) — see the crate docs for the
/// determinism guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Seed for all randomness (latency jitter, gossip sampling).
    pub seed: u64,
    /// Mining difficulty, in leading zero bits (all nodes mine at this
    /// fixed target; difficulty policy is out of scope for the race model).
    pub difficulty_bits: u32,
    /// Nonces each node evaluates per mining slice.
    pub attempts_per_slice: u64,
    /// Per-node overrides of `attempts_per_slice` — how adversary hash
    /// power fractions are configured. Empty by default.
    pub node_attempts: Vec<(usize, u64)>,
    /// Simulated duration of one mining slice, milliseconds.
    pub slice_ms: u64,
    /// Message latency model.
    pub latency: LatencyModel,
    /// Peers a relayed (not freshly mined) block is gossiped to.
    pub fan_out: usize,
    /// Scheduled partitions. Must not overlap in time.
    pub partitions: Vec<Partition>,
    /// Simulated time after which mining stops, milliseconds. In-flight
    /// messages still drain, so the network settles before the report.
    pub duration_ms: u64,
    /// Worker threads handed to `validate_segment_parallel` during sync.
    pub sync_threads: usize,
    /// Simulated milliseconds before an unanswered segment request is
    /// re-issued to another peer. `None` (the default) disables timeouts —
    /// and keeps all-honest runs byte-identical to the pre-timeout node.
    pub request_timeout_ms: Option<u64>,
    /// Rejections from one peer before a node bans it (0 = never ban).
    /// Honest peers never accumulate penalties, so the default of 3 does
    /// not affect honest runs.
    pub ban_threshold: u32,
    /// Fork-tree retention window (blocks below the tip); `None` (the
    /// default) keeps every branch forever, as before pruning existed.
    pub prune_depth: Option<u64>,
    /// Per-branch adaptive difficulty; `None` (the default) mines the
    /// whole run at the fixed `difficulty_bits` target, exactly as before
    /// adaptive difficulty existed.
    pub retarget: Option<RetargetConfig>,
    /// Verifier-cost feedback on top of `retarget`: `Some` upgrades the
    /// EMA rule to [`DifficultyRule::CostAware`] (requires `retarget`);
    /// `None` (the default) leaves every existing rule byte-identical.
    pub cost_policy: Option<CostPolicyConfig>,
    /// Header-timestamp validity rule nodes enforce on incoming blocks and
    /// segments; `None` (the default) accepts any reported timestamp —
    /// which is what makes the timestamp-skew attack land, and what this
    /// knob exists to demonstrate turning off.
    pub timestamp_rule: Option<TimestampRule>,
    /// Per-node on-disk persistence; `None` (the default) keeps every node
    /// purely in-memory, exactly as before persistence existed. Building
    /// the simulation creates the stores (and panics on I/O failure).
    pub persistence: Option<PersistenceConfig>,
    /// Scheduled crash-restarts; requires `persistence`. Windows for the
    /// same node must not overlap.
    pub crashes: Vec<CrashRestart>,
    /// Worker threads the scheduler fans node-local events (mining
    /// slices, deliveries, timer checks) across. Any value produces a
    /// byte-identical report — the sharded-scheduler proptest pins N
    /// threads against 1 — so this is purely a wall-clock knob. Default 1.
    pub threads: usize,
    /// First-class peer topology: bounded peer tables, scored gossip and
    /// the eclipse-attack surface (see [`TopologyConfig`]). `None` (the
    /// default) keeps the full-mesh broadcast and uniform gossip sampling
    /// of the pre-topology simulation, byte for byte.
    pub topology: Option<TopologyConfig>,
    /// Light-client population; `None` (the default) runs every node as a
    /// full node, exactly as before light roles existed. Mutually
    /// exclusive with `topology` (light servers assume the full mesh).
    pub light: Option<LightSimConfig>,
}

impl SimConfig {
    /// Nonces `node` evaluates per slice, honouring `node_attempts`.
    pub fn attempts_for(&self, node: usize) -> u64 {
        self.node_attempts
            .iter()
            .find(|(id, _)| *id == node)
            .map_or(self.attempts_per_slice, |(_, attempts)| *attempts)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            nodes: 5,
            seed: 0x5eed_c0de,
            difficulty_bits: 11,
            attempts_per_slice: 64,
            node_attempts: Vec::new(),
            slice_ms: 100,
            latency: LatencyModel {
                base_ms: 20,
                jitter_ms: 80,
            },
            fan_out: 2,
            partitions: Vec::new(),
            duration_ms: 60_000,
            sync_threads: 4,
            request_timeout_ms: None,
            ban_threshold: 3,
            prune_depth: None,
            retarget: None,
            cost_policy: None,
            timestamp_rule: None,
            persistence: None,
            crashes: Vec::new(),
            threads: 1,
            topology: None,
            light: None,
        }
    }
}

/// What one event does when it fires.
#[derive(Debug, Clone)]
enum EventKind {
    /// Node runs one mining slice.
    MineSlice { node: usize },
    /// A message arrives.
    Deliver {
        to: usize,
        from: usize,
        message: Message,
    },
    /// A node's request-timeout clock fires.
    Timeout { node: usize, token: Digest256 },
    /// A partition begins.
    PartitionStart { index: usize },
    /// A partition heals.
    PartitionEnd { index: usize },
    /// A node crashes (goes dark until its restart).
    Crash { index: usize },
    /// A crashed node restarts from its on-disk store.
    Restart { index: usize },
    /// The periodic topology maintenance tick: score decay plus one
    /// anchor rotation per honest node.
    TopologyTick,
}

impl EventKind {
    /// The node shard this event belongs to. `None` marks a *barrier*
    /// event: it touches global scheduler state (the partition split, the
    /// down flags, the topology overlay) and must execute alone, never
    /// concurrently with node-local work.
    fn shard(&self) -> Option<usize> {
        match self {
            EventKind::MineSlice { node } | EventKind::Timeout { node, .. } => Some(*node),
            EventKind::Deliver { to, .. } => Some(*to),
            EventKind::PartitionStart { .. }
            | EventKind::PartitionEnd { .. }
            | EventKind::Crash { .. }
            | EventKind::Restart { .. }
            | EventKind::TopologyTick => None,
        }
    }
}

/// A node-local handler invocation, extracted from an [`EventKind`] during
/// batch preparation.
#[derive(Debug)]
enum NodeAction {
    /// Run one mining slice of `attempts` nonces.
    Mine { attempts: u64 },
    /// Handle an arriving message.
    Deliver { from: usize, message: Message },
    /// Fire a request-timeout check.
    Timeout { token: Digest256 },
}

/// One unit of node-local work, tagged with the event's global `seq` so
/// results merge back in the exact sequential order.
#[derive(Debug)]
struct NodeEvent {
    seq: u64,
    action: NodeAction,
}

/// What one node-local event produced, captured on the worker thread and
/// merged back sequentially in `seq` order. Everything the sequential
/// post-handler code needs — outgoing sends, the node's tip after the
/// event, the facts feeding topology scoring — is here, so the merge
/// phase consumes the RNG in exactly the sequential order.
#[derive(Debug)]
struct EventOutcome {
    seq: u64,
    node: usize,
    /// Sends the handler produced (empty for events skipped while down).
    outgoing: Vec<Outgoing>,
    /// The node's tip after this event — replayed into the per-event
    /// convergence tracking.
    tip: Digest256,
    /// For deliveries: the peer that sent the message, credited when the
    /// handler accepted a new block.
    relayer: Option<usize>,
    /// The handler accepted at least one new block into its fork tree.
    useful: bool,
    /// Mining-slice events reschedule the slice clock afterwards.
    mine: bool,
}

/// Aggregated outcome of one simulation run.
///
/// Convergence, tip and safety figures are computed over the *honest*
/// (non-adversarial) nodes — a withholding miner's private tip or a silent
/// spammer's stale tree must not mask honest agreement. In all-honest runs
/// this is every node, exactly as before the adversary framework.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Number of nodes simulated.
    pub nodes: usize,
    /// The seed the run used.
    pub seed: u64,
    /// Mining horizon, milliseconds.
    pub duration_ms: u64,
    /// `true` when every honest node finished on the same non-empty tip.
    pub converged: bool,
    /// Simulated time at which the honest nodes last became fully
    /// converged (and stayed so through the end), if they did.
    pub convergence_ms: Option<u64>,
    /// The common tip digest (the first honest node's tip if not
    /// converged).
    pub tip: Digest256,
    /// Height of that tip.
    pub tip_height: u64,
    /// Blocks mined across all nodes.
    pub blocks_mined: u64,
    /// Every non-trivial reorg depth observed by any node, sorted
    /// descending.
    pub reorg_depths: Vec<usize>,
    /// The deepest reorg any node performed.
    pub max_reorg_depth: usize,
    /// Segments validated through `validate_segment_parallel`, all nodes.
    pub segments_synced: u64,
    /// Total blocks across those segments.
    pub segment_blocks: u64,
    /// Messages delivered (or in flight) across the run.
    pub messages_sent: u64,
    /// Messages dropped at partition boundaries.
    pub messages_dropped: u64,
    /// Wall-clock seconds spent inside segment validation, all nodes.
    /// Excluded from [`SimReport::fingerprint`] — it is the one
    /// non-deterministic field.
    pub sync_wall_seconds: f64,
    /// Corrupted segments fabricated by adversarial nodes.
    pub spam_segments_sent: u64,
    /// Spam blocks (fabricated or header-corrupted) found in any honest
    /// node's fork tree at the end of the run. The acceptance gate is 0.
    pub spam_accepted: u64,
    /// Valid-PoW bait orphans mined over fabricated parents.
    pub fake_orphans: u64,
    /// Rejected incoming messages across all nodes, by class.
    pub rejections: RejectionCounts,
    /// Sync-request timeouts observed across all nodes.
    pub stalls_detected: u64,
    /// Timed-out requests re-issued to another peer.
    pub requests_retried: u64,
    /// Requests abandoned after exhausting retries.
    pub requests_abandoned: u64,
    /// Ban events across all nodes.
    pub peers_banned: u64,
    /// Blocks withheld by selfish strategies (total ever).
    pub blocks_withheld: u64,
    /// Withheld blocks later released.
    pub blocks_released: u64,
    /// Withheld blocks abandoned to a winning public chain.
    pub withheld_abandoned: u64,
    /// Blocks evicted by fork-tree pruning, all nodes.
    pub blocks_pruned: u64,
    /// Minimum over honest nodes of `tip height − best side-branch
    /// height`: how far the closest runner-up branch sits below each
    /// honest tip. Large margins mean adversarial branches never came
    /// close.
    pub honest_tip_safety_margin: u64,
    /// Crash-restarts performed across all nodes.
    pub crash_restarts: u64,
    /// Crash-restarts whose recovered tree was fingerprint-identical to
    /// the pre-crash tree (always, unless torn-tail bytes were injected).
    pub recoveries_identical: u64,
    /// Log records re-applied on top of recovered snapshots, all nodes.
    pub blocks_replayed: u64,
    /// Torn/corrupt log bytes recovery discarded, all nodes.
    pub recovery_lost_bytes: u64,
    /// Messages dropped because the sender or receiver was crashed.
    pub messages_lost_to_crashes: u64,
    /// Scheduler events processed across the whole run — identical for
    /// every thread count, so `events / run_wall_seconds` measures pure
    /// scheduling throughput.
    pub events_processed: u64,
    /// Eclipse-style connection attempts adversaries made against peer
    /// tables (0 on topology-less runs).
    pub connect_attempts: u64,
    /// Peer-table links evicted by connection pressure.
    pub peer_evictions: u64,
    /// Anchor rotations honest nodes performed at topology ticks.
    pub anchor_rotations: u64,
    /// Light-client nodes in the run (0 without [`SimConfig::light`]).
    pub light_nodes: u64,
    /// `true` when every light client's header tip equals the honest full
    /// tip at the end of the run (vacuously `true` with no light nodes).
    pub light_converged: bool,
    /// Serialized bytes sent across the whole network.
    pub bytes_sent: u64,
    /// Serialized bytes received by the light nodes — the light-client
    /// bandwidth footprint the header-first protocol exists to shrink.
    pub light_bytes_received: u64,
    /// Headers full nodes served to `GetHeaders` requests.
    pub headers_served: u64,
    /// Headers light clients accepted into their header chains.
    pub headers_accepted: u64,
    /// Proof batches full nodes served (honest and fake alike).
    pub proofs_served: u64,
    /// Proof batches light clients verified against committed roots.
    pub proofs_verified: u64,
    /// Proof requests re-issued after a timeout or a rejection.
    pub proof_retries: u64,
    /// Proof requests adversarial servers deliberately ignored.
    pub proofs_withheld: u64,
    /// Fabricated proof batches adversarial servers sent. The acceptance
    /// gate demands `rejections.invalid_proof` equals this — every fake
    /// caught, none accepted.
    pub fake_proofs_sent: u64,
    /// Proof requests full nodes refused over the per-peer quota.
    pub quota_refusals: u64,
    /// Hash evaluations light clients spent verifying (header digests
    /// plus batch leaves and nodes) — the verify-CPU account.
    pub verify_hash_ops: u64,
    /// Transaction bytes light clients accepted under verified proofs.
    pub tx_bytes_proved: u64,
    /// PoW-winning seeds strategies discarded for verifying too cheaply —
    /// the cost-steering adversary's grinding bill.
    pub seeds_discarded: u64,
    /// PoW-winning seeds the cost-aware admission bound rejected at the
    /// miner before a block was built.
    pub seeds_inadmissible: u64,
    /// Mean observed verifier-cost ratio (actual over nominal) along the
    /// first honest node's best chain — the per-block verification bill
    /// the cost-steering adversary inflates and the cost-aware rule
    /// restores (`1.0` while the chain is empty).
    pub tip_mean_cost_ratio: f64,
    /// Wall-clock seconds the whole run took. Excluded from the
    /// fingerprints, like [`SimReport::sync_wall_seconds`].
    pub run_wall_seconds: f64,
}

impl SimReport {
    /// A canonical rendering of the deterministic fields every run has had
    /// since the honest-only simulation. Two runs with the same
    /// [`SimConfig`] and strategies produce identical fingerprints. This
    /// string is pinned by the strategy-refactor regression gate, so it
    /// deliberately excludes the adversary-era fields — see
    /// [`SimReport::fingerprint_extended`].
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "nodes={} seed={} duration={} converged={} convergence={:?} \
             tip={} height={} mined={} reorgs={:?} max_reorg={} \
             segments={} segment_blocks={} sent={} dropped={}",
            self.nodes,
            self.seed,
            self.duration_ms,
            self.converged,
            self.convergence_ms,
            hashcore_crypto::hex::encode(&self.tip),
            self.tip_height,
            self.blocks_mined,
            self.reorg_depths,
            self.max_reorg_depth,
            self.segments_synced,
            self.segment_blocks,
            self.messages_sent,
            self.messages_dropped,
        );
        out
    }

    /// [`SimReport::fingerprint`] plus every deterministic adversary-era
    /// field — what the adversary bench compares across runs.
    pub fn fingerprint_extended(&self) -> String {
        let mut out = self.fingerprint();
        let _ = write!(
            out,
            " spam_sent={} spam_accepted={} fake_orphans={} rejections={:?} \
             stalls={} retried={} abandoned={} banned={} withheld={} \
             released={} abandoned_private={} pruned={} safety_margin={} \
             crashes={} recovered_identical={} replayed={} lost_bytes={} \
             crash_dropped={}",
            self.spam_segments_sent,
            self.spam_accepted,
            self.fake_orphans,
            self.rejections,
            self.stalls_detected,
            self.requests_retried,
            self.requests_abandoned,
            self.peers_banned,
            self.blocks_withheld,
            self.blocks_released,
            self.withheld_abandoned,
            self.blocks_pruned,
            self.honest_tip_safety_margin,
            self.crash_restarts,
            self.recoveries_identical,
            self.blocks_replayed,
            self.recovery_lost_bytes,
            self.messages_lost_to_crashes,
        );
        let _ = write!(
            out,
            " events={} connects={} evictions={} rotations={}",
            self.events_processed,
            self.connect_attempts,
            self.peer_evictions,
            self.anchor_rotations,
        );
        let _ = write!(
            out,
            " lights={} light_converged={} bytes={} light_bytes={} \
             headers_served={} headers_accepted={} proofs_served={} \
             proofs_verified={} proof_retries={} proofs_withheld={} \
             fake_proofs={} quota_refusals={} verify_ops={} tx_proved={}",
            self.light_nodes,
            self.light_converged,
            self.bytes_sent,
            self.light_bytes_received,
            self.headers_served,
            self.headers_accepted,
            self.proofs_served,
            self.proofs_verified,
            self.proof_retries,
            self.proofs_withheld,
            self.fake_proofs_sent,
            self.quota_refusals,
            self.verify_hash_ops,
            self.tx_bytes_proved,
        );
        let _ = write!(
            out,
            " seeds_discarded={} seeds_inadmissible={} tip_cost={:.4}",
            self.seeds_discarded, self.seeds_inadmissible, self.tip_mean_cost_ratio,
        );
        out
    }

    /// Proof batches served per wall-clock second — the light bench's
    /// serving-throughput figure (`BENCH_light.json`).
    pub fn served_proofs_per_sec(&self) -> f64 {
        if self.run_wall_seconds > 0.0 {
            self.proofs_served as f64 / self.run_wall_seconds
        } else {
            0.0
        }
    }

    /// Average serialized bytes each light peer received — what a light
    /// client's bandwidth bill looks like next to a full node's.
    pub fn bytes_per_light_peer(&self) -> f64 {
        if self.light_nodes > 0 {
            self.light_bytes_received as f64 / self.light_nodes as f64
        } else {
            0.0
        }
    }

    /// Blocks validated by segment sync per wall-clock second — the sync
    /// throughput figure `BENCH_sync.json` records.
    pub fn sync_blocks_per_sec(&self) -> f64 {
        if self.sync_wall_seconds > 0.0 {
            self.segment_blocks as f64 / self.sync_wall_seconds
        } else {
            0.0
        }
    }

    /// Scheduler events processed per wall-clock second — the scale
    /// bench's throughput figure (`BENCH_scale.json`).
    pub fn events_per_sec(&self) -> f64 {
        if self.run_wall_seconds > 0.0 {
            self.events_processed as f64 / self.run_wall_seconds
        } else {
            0.0
        }
    }
}

/// The event-driven network simulation.
///
/// Build one with [`Simulation::new`] (all-honest) or
/// [`Simulation::with_strategies`] (per-node behaviour), [`Simulation::run`]
/// it to completion, then inspect the [`SimReport`] and the per-node state
/// via [`Simulation::nodes`].
///
/// # RNG isolation
///
/// Sends originating from adversarial nodes draw latency and gossip
/// samples from a *separate* seeded stream. Honest traffic therefore
/// consumes exactly the same random sequence whether an adversary is
/// present or replaced by [`crate::Silent`] — the property that lets the
/// adversary proptests compare honest fork choice against a baseline run.
#[derive(Debug)]
pub struct Simulation<P: PreparedPow + std::fmt::Debug>
where
    P::Scratch: std::fmt::Debug,
{
    config: SimConfig,
    nodes: Vec<Node<P>>,
    /// Indices of the non-adversarial nodes (all nodes when every strategy
    /// is adversarial, so reports never divide by zero).
    honest: Vec<usize>,
    queue: ShardedQueue<EventKind>,
    rng: WidgetRng,
    adversary_rng: WidgetRng,
    seq: u64,
    now: u64,
    split: Option<usize>,
    converged_at: Option<u64>,
    messages_sent: u64,
    messages_dropped: u64,
    /// Per-node crashed flag: a down node mines nothing and all its
    /// traffic (both directions) is dropped until its restart.
    down: Vec<bool>,
    messages_lost_to_crashes: u64,
    /// The peer-topology overlay, when [`SimConfig::topology`] is set.
    overlay: Option<Overlay>,
    /// Per-node tip cache, updated after every node-local event — the
    /// state convergence tracking replays in global `seq` order even when
    /// the handlers themselves ran on worker threads.
    tips: Vec<Digest256>,
    events_processed: u64,
    connect_attempts: u64,
    run_wall_seconds: f64,
}

impl<P: PreparedPow + Send + Sync + std::fmt::Debug> Simulation<P>
where
    P::Scratch: std::fmt::Debug,
{
    /// Creates an all-honest simulation; `make_pow` builds each node's PoW
    /// instance (nodes can share a cheap `Clone` or each own a configured
    /// one).
    ///
    /// # Panics
    ///
    /// Panics if the config has fewer than two nodes, a zero slice, a
    /// partition with `split` outside `1..nodes`, or partitions that
    /// overlap in time.
    pub fn new(config: SimConfig, make_pow: impl FnMut(usize) -> P) -> Self {
        Self::with_strategies(config, make_pow, |_| Box::new(Honest))
    }

    /// Creates a simulation with a per-node behaviour strategy.
    ///
    /// # Panics
    ///
    /// As [`Simulation::new`].
    pub fn with_strategies(
        config: SimConfig,
        mut make_pow: impl FnMut(usize) -> P,
        mut make_strategy: impl FnMut(usize) -> Box<dyn Strategy>,
    ) -> Self {
        assert!(config.nodes >= 2, "a network needs at least two nodes");
        assert!(config.slice_ms > 0, "mining slices need a positive length");
        assert!(
            config.threads >= 1,
            "the scheduler needs at least one thread"
        );
        for p in &config.partitions {
            assert!(
                p.split >= 1 && p.split < config.nodes,
                "partition split must leave nodes on both sides"
            );
            assert!(
                p.start_ms < p.end_ms,
                "partitions must have positive length"
            );
        }
        // A timeout shorter than a round trip would make honest nodes
        // mistake in-flight replies for stalls (and, worse, late honest
        // replies for unsolicited spam), so demand headroom for two
        // worst-case latency samples.
        if let Some(timeout) = config.request_timeout_ms {
            assert!(
                timeout >= 2 * (config.latency.base_ms + config.latency.jitter_ms),
                "request_timeout_ms must cover a worst-case round trip"
            );
        }
        // Pruned peers answer out-of-window requests with silence; without
        // the timeout machinery that silence would strand the pending
        // request forever, so the combination is rejected up front.
        assert!(
            config.prune_depth.is_none() || config.request_timeout_ms.is_some(),
            "prune_depth requires request_timeout_ms (a pruned peer's \
             silent non-answer must be recoverable)"
        );
        // The single active-split state cannot represent concurrent
        // partitions, so reject what it would silently get wrong.
        let mut windows: Vec<(u64, u64)> = config
            .partitions
            .iter()
            .map(|p| (p.start_ms, p.end_ms))
            .collect();
        windows.sort_unstable();
        for pair in windows.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "partitions must not overlap in time"
            );
        }
        // Crash-restarts only make sense for nodes that can come back
        // with their chain: demand persistence and non-degenerate,
        // per-node non-overlapping downtime windows.
        if !config.crashes.is_empty() {
            assert!(
                config.persistence.is_some(),
                "crash-restart events require persistence"
            );
        }
        for c in &config.crashes {
            assert!(c.node < config.nodes, "crash node out of range");
            assert!(c.down_ms > 0, "downtime must be positive");
        }
        for (i, a) in config.crashes.iter().enumerate() {
            for b in &config.crashes[i + 1..] {
                assert!(
                    a.node != b.node
                        || a.at_ms + a.down_ms <= b.at_ms
                        || b.at_ms + b.down_ms <= a.at_ms,
                    "crash windows for one node must not overlap"
                );
            }
        }
        if let Some(light) = &config.light {
            assert!(
                light.first_light >= 1 && light.first_light < config.nodes,
                "light clients need at least one full node to serve them"
            );
            assert!(
                config.topology.is_none(),
                "light roles assume the full mesh; combine with topology later"
            );
            // Same round-trip headroom rationale as segment-request
            // timeouts: a light client must not mistake an in-flight
            // reply for a withholding server.
            assert!(
                light.request_timeout_ms >= 2 * (config.latency.base_ms + config.latency.jitter_ms),
                "light request_timeout_ms must cover a worst-case round trip"
            );
        }
        assert!(
            config.cost_policy.is_none() || config.retarget.is_some(),
            "cost_policy layers on the EMA rule and requires retarget"
        );
        let target = Target::from_leading_zero_bits(config.difficulty_bits);
        let rule = match config.retarget {
            None => DifficultyRule::Fixed(target),
            Some(retarget) => {
                let ema = EmaRetarget {
                    initial: target,
                    target_block_time: retarget.target_block_time_ms,
                    gain: retarget.gain,
                };
                match config.cost_policy {
                    None => DifficultyRule::Ema(ema),
                    Some(policy) => DifficultyRule::CostAware(CostAwareRetarget::new(
                        ema,
                        policy.cost_gain,
                        policy.response,
                    )),
                }
            }
        };
        let nodes: Vec<Node<P>> = (0..config.nodes)
            .map(|id| {
                let mut node = Node::new(id, make_pow(id), target, config.sync_threads)
                    .with_difficulty(rule, config.timestamp_rule)
                    .with_strategy(make_strategy(id))
                    .with_limits(
                        config.nodes,
                        config.request_timeout_ms,
                        config.ban_threshold,
                        config.prune_depth,
                    );
                if let Some(p) = &config.persistence {
                    let dir = p.dir.join(format!("node-{id}"));
                    let mut store = ChainStore::create(&dir)
                        .expect("each node's store directory must be creatable and empty");
                    store.set_sync(p.sync_appends);
                    node = node.with_persistence(store, p.snapshot_interval);
                }
                if let Some(light) = &config.light {
                    if id >= light.first_light {
                        node = node.with_light_role(LightConfig {
                            servers: (0..light.first_light).collect(),
                            request_timeout_ms: light.request_timeout_ms,
                            proof_indices: light.proof_indices.clone(),
                        });
                    } else {
                        node = node
                            .with_proof_quota(light.proof_quota)
                            .with_body_bytes(light.body_bytes);
                    }
                }
                node
            })
            .collect();
        let mut honest: Vec<usize> = (0..config.nodes)
            .filter(|&id| !nodes[id].is_adversarial())
            .collect();
        if honest.is_empty() {
            honest = (0..config.nodes).collect();
        }
        // The overlay's initial random links draw from the main RNG
        // *before* any event fires; with `topology: None` no draw happens
        // and the stream is byte-identical to the pre-topology scheduler.
        let mut rng = WidgetRng::new(config.seed);
        let overlay = config
            .topology
            .map(|topology| Overlay::new(config.nodes, topology, &mut rng));
        let tips = nodes.iter().map(Node::tip).collect();
        let mut sim = Self {
            rng,
            adversary_rng: WidgetRng::new(config.seed ^ 0xADAD_F0F0_1234_5678),
            down: vec![false; config.nodes],
            queue: ShardedQueue::new(config.nodes),
            nodes,
            honest,
            seq: 0,
            now: 0,
            split: None,
            converged_at: None,
            messages_sent: 0,
            messages_dropped: 0,
            messages_lost_to_crashes: 0,
            overlay,
            tips,
            events_processed: 0,
            connect_attempts: 0,
            run_wall_seconds: 0.0,
            config,
        };
        for node in 0..sim.config.nodes {
            sim.schedule(sim.config.slice_ms, EventKind::MineSlice { node });
        }
        for index in 0..sim.config.partitions.len() {
            let p = sim.config.partitions[index];
            sim.schedule(p.start_ms, EventKind::PartitionStart { index });
            sim.schedule(p.end_ms, EventKind::PartitionEnd { index });
        }
        for index in 0..sim.config.crashes.len() {
            let c = sim.config.crashes[index];
            sim.schedule(c.at_ms, EventKind::Crash { index });
            sim.schedule(c.at_ms + c.down_ms, EventKind::Restart { index });
        }
        if let Some(interval) = sim
            .config
            .topology
            .and_then(|topology| topology.rotation_interval_ms)
        {
            sim.schedule(interval, EventKind::TopologyTick);
        }
        sim
    }

    /// The simulated nodes (final state after [`Simulation::run`]).
    pub fn nodes(&self) -> &[Node<P>] {
        &self.nodes
    }

    /// The configuration the simulation runs under.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Peer ids currently in `node`'s table, in connection order — empty
    /// on topology-less runs.
    pub fn peer_table(&self, node: usize) -> Vec<usize> {
        self.overlay
            .as_ref()
            .map_or_else(Vec::new, |overlay| overlay.peers_of(node))
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let shard = kind.shard();
        self.queue.push(shard, Scheduled { time, seq, kind });
    }

    /// The RNG stream `from`'s traffic draws on — the isolation that keeps
    /// honest randomness byte-identical whether an adversary acts or sits
    /// silent. Every latency/gossip sample must come through here.
    fn rng_for(&mut self, from: usize) -> &mut WidgetRng {
        if self.nodes[from].is_adversarial() {
            &mut self.adversary_rng
        } else {
            &mut self.rng
        }
    }

    /// `true` when `a` and `b` can currently exchange messages.
    fn connected(&self, a: usize, b: usize) -> bool {
        match self.split {
            None => true,
            Some(split) => (a < split) == (b < split),
        }
    }

    /// Queues a message send, applying partition drops and sampled latency.
    /// `extra_ms` models a sender that sits on the message before sending.
    fn send(&mut self, from: usize, to: usize, message: Message, extra_ms: u64) {
        // A crashed endpoint drops traffic before any RNG is consumed —
        // mirroring the partition path, so crash-free runs stay
        // byte-identical.
        if self.down[from] || self.down[to] {
            self.messages_lost_to_crashes += 1;
            return;
        }
        if !self.connected(from, to) {
            self.messages_dropped += 1;
            return;
        }
        // On topology runs a message only travels over an existing link;
        // a send into an evicted link is dropped before any RNG is
        // consumed, mirroring the partition path.
        if let Some(overlay) = &self.overlay {
            if !overlay.linked(from, to) {
                self.messages_dropped += 1;
                return;
            }
        }
        // A light subscriber gets the header, not the body: the scheduler
        // owns the conversion so full nodes gossip exactly as before and
        // the bandwidth accounting below prices what actually travels.
        let message = match (&message, self.nodes[to].role()) {
            (Message::Block(block), Role::Light) => Message::Headers(vec![block.header.clone()]),
            _ => message,
        };
        // Bandwidth is priced in real serialized bytes, not message
        // counts — what the light-client protocol exists to shrink.
        let bytes = message.wire_size();
        self.nodes[from].stats.bytes_sent += bytes;
        self.nodes[to].stats.bytes_received += bytes;
        self.messages_sent += 1;
        let latency_model = self.config.latency;
        let latency = latency_model.sample(self.rng_for(from));
        let time = self.now + extra_ms + latency.max(1);
        self.schedule(time, EventKind::Deliver { to, from, message });
    }

    /// Executes a node's outgoing sends: direct, gossip-sampled, broadcast,
    /// delayed, or timer arming.
    fn dispatch(&mut self, from: usize, outgoing: Vec<Outgoing>) {
        for out in outgoing {
            match out {
                Outgoing::To(dest, message) => self.send(from, dest, message, 0),
                Outgoing::DelayedTo {
                    to,
                    after_ms,
                    message,
                } => self.send(from, to, message, after_ms),
                Outgoing::Broadcast(message) => {
                    // With topology on, "everyone" is the node's peer
                    // table; without, the legacy full mesh.
                    let table = self.overlay.as_ref().map(|o| o.peers_of(from));
                    match table {
                        Some(peers) => {
                            for dest in peers {
                                self.send(from, dest, message.clone(), 0);
                            }
                        }
                        None => {
                            for dest in 0..self.config.nodes {
                                if dest != from {
                                    self.send(from, dest, message.clone(), 0);
                                }
                            }
                        }
                    }
                }
                Outgoing::Gossip(message) => {
                    if self.overlay.is_some() {
                        // Score-weighted sampling over the peer table:
                        // peers that relayed useful blocks dominate.
                        let adversarial = self.nodes[from].is_adversarial();
                        let mut targets = Vec::new();
                        {
                            let Self {
                                overlay,
                                rng,
                                adversary_rng,
                                config,
                                ..
                            } = &mut *self;
                            let rng = if adversarial { adversary_rng } else { rng };
                            overlay.as_ref().expect("topology run").gossip_targets(
                                from,
                                config.fan_out,
                                rng,
                                &mut targets,
                            );
                        }
                        for dest in targets {
                            self.send(from, dest, message.clone(), 0);
                        }
                    } else {
                        let mut peers: Vec<usize> =
                            (0..self.config.nodes).filter(|&d| d != from).collect();
                        let sample = self.config.fan_out.min(peers.len());
                        for _ in 0..sample {
                            let pick = self.rng_for(from).next_bounded(peers.len() as u64) as usize;
                            let dest = peers.swap_remove(pick);
                            self.send(from, dest, message.clone(), 0);
                        }
                    }
                }
                Outgoing::Timer { token, after_ms } => {
                    self.schedule(
                        self.now + after_ms.max(1),
                        EventKind::Timeout { node: from, token },
                    );
                }
            }
        }
    }

    /// Tracks when the honest nodes last became (and stayed) converged.
    ///
    /// Reads the per-event [`Simulation::tips`] cache rather than the
    /// nodes directly, so the parallel scheduler can replay convergence
    /// transitions event by event in global `seq` order — a tip can flip
    /// convergence on and off *within* one timestamp batch, and the
    /// sequential scheduler observed every such transition.
    fn update_convergence(&mut self) {
        let tip = self.tips[self.honest[0]];
        let all_equal = tip != [0u8; 32] && self.honest.iter().all(|&id| self.tips[id] == tip);
        if all_equal {
            if self.converged_at.is_none() {
                self.converged_at = Some(self.now);
            }
        } else {
            self.converged_at = None;
        }
    }

    /// Runs the simulation to completion — mining until the horizon, then
    /// draining in-flight traffic — and reports the aggregate outcome.
    ///
    /// # The sharded parallel scheduler
    ///
    /// Every scheduling path lands strictly after `now` (latency floors
    /// at 1 ms, timers floor at 1 ms, slice clocks add `slice_ms`), so
    /// when the earliest queued timestamp is reached, *every* event at
    /// that timestamp is already queued. The loop therefore pops whole
    /// timestamp batches ([`ShardedQueue::pop_time_batch`]) and splits
    /// each batch at *barrier* events (partitions, crashes, topology
    /// ticks — anything touching global state). The node-local runs in
    /// between fan out across `thread::scope` workers, one lane per
    /// node: handlers only touch their own node and draw no RNG, so
    /// executing them concurrently and then replaying their outcomes —
    /// sends, scoring credits, slice reschedules, convergence updates —
    /// sequentially in global `seq` order consumes the seeded RNG in
    /// exactly the order the single-threaded scheduler did. N-thread
    /// runs are byte-identical to 1-thread runs; the sharded-scheduler
    /// proptest and the pinned honest fingerprint both gate this.
    pub fn run(&mut self) -> SimReport {
        let started = Instant::now();
        let mut batch: Vec<Scheduled<EventKind>> = Vec::new();
        let mut group: Vec<Scheduled<EventKind>> = Vec::new();
        loop {
            self.queue.pop_time_batch(&mut batch);
            if batch.is_empty() {
                break;
            }
            self.now = batch[0].time;
            self.events_processed += batch.len() as u64;
            // Walk the batch in seq order, splitting at barriers: maximal
            // runs of node-local events execute (potentially) in
            // parallel, barriers execute alone.
            batch.reverse();
            while let Some(event) = batch.pop() {
                if event.kind.shard().is_none() {
                    self.run_barrier(event.kind);
                    self.update_convergence();
                } else {
                    group.clear();
                    group.push(event);
                    while batch.last().is_some_and(|next| next.kind.shard().is_some()) {
                        group.push(batch.pop().expect("peeked event pops"));
                    }
                    self.run_node_events(&mut group);
                }
            }
        }
        self.run_wall_seconds = started.elapsed().as_secs_f64();
        self.report()
    }

    /// Executes one barrier event — global state only fires here.
    fn run_barrier(&mut self, kind: EventKind) {
        match kind {
            EventKind::PartitionStart { index } => {
                self.split = Some(self.config.partitions[index].split);
            }
            EventKind::PartitionEnd { index } => {
                let _ = index;
                self.split = None;
                // Reconnect handshake: every node announces its tip, so
                // the two sides discover each other's branch even if no
                // further block is mined.
                for from in 0..self.config.nodes {
                    if let Some(block) = self.nodes[from].tree().tip_block().cloned() {
                        self.dispatch(from, vec![Outgoing::Broadcast(Message::Block(block))]);
                    }
                }
            }
            EventKind::Crash { index } => {
                self.down[self.config.crashes[index].node] = true;
            }
            EventKind::Restart { index } => {
                let crash = self.config.crashes[index];
                // Deterministic torn-tail injection: the configured
                // byte count of the active log never became durable.
                if crash.torn_tail_bytes > 0 {
                    let dir = self.nodes[crash.node]
                        .store_dir()
                        .expect("crash-restart nodes have a store")
                        .to_path_buf();
                    hashcore_store::inject_torn_tail(&dir, crash.torn_tail_bytes)
                        .expect("torn-tail injection targets an existing log");
                }
                self.down[crash.node] = false;
                let (_report, out) = self.nodes[crash.node]
                    .crash_restart()
                    .expect("a crashed node restarts from its store");
                self.tips[crash.node] = self.nodes[crash.node].tip();
                self.dispatch(crash.node, out);
            }
            EventKind::TopologyTick => {
                // Decay first — the ranking measures recent usefulness —
                // then every live honest node dials one fresh anchor.
                // Rotation draws from the main RNG (honest protocol
                // behaviour); the tip-exchange handshake on each new link
                // is what re-seeds convergence after a table was
                // monopolised. Adversaries neither rotate nor hand their
                // tip over: a real eclipse attacker controls its own
                // protocol messages.
                let mut handshakes: Vec<(usize, usize)> = Vec::new();
                {
                    let Self {
                        overlay,
                        rng,
                        nodes,
                        down,
                        ..
                    } = &mut *self;
                    if let Some(overlay) = overlay.as_mut() {
                        overlay.decay();
                        for node in 0..nodes.len() {
                            if !down[node] && !nodes[node].is_adversarial() {
                                if let Some(peer) = overlay.rotate(node, rng) {
                                    handshakes.push((node, peer));
                                }
                            }
                        }
                    }
                }
                for (node, peer) in handshakes {
                    for (a, b) in [(node, peer), (peer, node)] {
                        if self.nodes[a].is_adversarial() {
                            continue;
                        }
                        if let Some(block) = self.nodes[a].tree().tip_block().cloned() {
                            self.send(a, b, Message::Block(block), 0);
                        }
                    }
                }
                let interval = self
                    .config
                    .topology
                    .and_then(|topology| topology.rotation_interval_ms)
                    .expect("a topology tick implies a rotation interval");
                let next = self.now + interval;
                if next <= self.config.duration_ms {
                    self.schedule(next, EventKind::TopologyTick);
                }
            }
            EventKind::MineSlice { .. } | EventKind::Deliver { .. } | EventKind::Timeout { .. } => {
                unreachable!("node-local events execute through run_node_events")
            }
        }
    }

    /// Executes a barrier-free run of node-local events sharing one
    /// timestamp: prepare per-node lanes in seq order, execute the lanes
    /// (in parallel when configured), then merge every outcome back
    /// strictly in seq order — sends, topology bookkeeping, slice
    /// reschedules and convergence updates all replay sequentially.
    fn run_node_events(&mut self, group: &mut Vec<Scheduled<EventKind>>) {
        let mut outcomes: Vec<EventOutcome> = Vec::with_capacity(group.len());
        let mut work: Vec<(usize, Vec<NodeEvent>)> = Vec::new();
        let queue_work =
            |work: &mut Vec<(usize, Vec<NodeEvent>)>, node: usize, ev: NodeEvent| match work
                .iter_mut()
                .find(|(id, _)| *id == node)
            {
                Some((_, events)) => events.push(ev),
                None => work.push((node, vec![ev])),
            };
        for event in group.drain(..) {
            let seq = event.seq;
            match event.kind {
                EventKind::MineSlice { node } => {
                    if self.down[node] {
                        // A crashed node mines nothing, but the slice
                        // clock keeps ticking so mining resumes after the
                        // restart.
                        outcomes.push(EventOutcome {
                            seq,
                            node,
                            outgoing: Vec::new(),
                            tip: self.tips[node],
                            relayer: None,
                            useful: false,
                            mine: true,
                        });
                    } else {
                        let attempts = self.config.attempts_for(node);
                        queue_work(
                            &mut work,
                            node,
                            NodeEvent {
                                seq,
                                action: NodeAction::Mine { attempts },
                            },
                        );
                    }
                }
                EventKind::Deliver { to, from, message } => {
                    if self.down[to] {
                        // In-flight messages sent before the crash arrive
                        // at a dead socket.
                        self.messages_lost_to_crashes += 1;
                        outcomes.push(EventOutcome {
                            seq,
                            node: to,
                            outgoing: Vec::new(),
                            tip: self.tips[to],
                            relayer: None,
                            useful: false,
                            mine: false,
                        });
                    } else {
                        queue_work(
                            &mut work,
                            to,
                            NodeEvent {
                                seq,
                                action: NodeAction::Deliver { from, message },
                            },
                        );
                    }
                }
                EventKind::Timeout { node, token } => {
                    if self.down[node] {
                        outcomes.push(EventOutcome {
                            seq,
                            node,
                            outgoing: Vec::new(),
                            tip: self.tips[node],
                            relayer: None,
                            useful: false,
                            mine: false,
                        });
                    } else {
                        queue_work(
                            &mut work,
                            node,
                            NodeEvent {
                                seq,
                                action: NodeAction::Timeout { token },
                            },
                        );
                    }
                }
                _ => unreachable!("barriers never enter a node-event group"),
            }
        }
        let now = self.now;
        let threads = self.config.threads.min(work.len()).max(1);
        if threads <= 1 {
            for (node, events) in work {
                Self::execute_lane(now, node, &mut self.nodes[node], events, &mut outcomes);
            }
        } else {
            // One lane per node with work; disjoint `&mut Node` handles
            // fan out across scoped workers, chunked evenly — the same
            // shape as `validate_blocks_parallel`.
            let mut slots: Vec<Option<Vec<NodeEvent>>> =
                (0..self.config.nodes).map(|_| None).collect();
            for (node, events) in work {
                slots[node] = Some(events);
            }
            type Lane<'n, P> = (usize, &'n mut Node<P>, Vec<NodeEvent>, Vec<EventOutcome>);
            let mut lanes: Vec<Lane<'_, P>> = Vec::new();
            for (node, node_ref) in self.nodes.iter_mut().enumerate() {
                if let Some(events) = slots[node].take() {
                    lanes.push((node, node_ref, events, Vec::new()));
                }
            }
            let chunk = lanes.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for piece in lanes.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for (node, node_ref, events, outs) in piece.iter_mut() {
                            Self::execute_lane(now, *node, node_ref, std::mem::take(events), outs);
                        }
                    });
                }
            });
            for (_, _, _, mut outs) in lanes {
                outcomes.append(&mut outs);
            }
        }
        // Merge strictly in global seq order: this is where all RNG draws
        // and global-state mutations happen, reproducing the sequential
        // scheduler exactly.
        outcomes.sort_unstable_by_key(|outcome| outcome.seq);
        for outcome in outcomes {
            let EventOutcome {
                node,
                outgoing,
                tip,
                relayer,
                useful,
                mine,
                ..
            } = outcome;
            if mine && !self.down[node] {
                // Eclipse pressure: a sybil's mining slice is one
                // connection attempt against its victim's peer table.
                if let (Some(victim), Some(overlay)) =
                    (self.nodes[node].eclipse_target(), self.overlay.as_mut())
                {
                    self.connect_attempts += 1;
                    overlay.connect(node, victim, false);
                }
            }
            if useful {
                // The relayer of an accepted block earns usefulness
                // credit — the signal that keeps honest links scored
                // above freshly connected sybils.
                if let (Some(from), Some(overlay)) = (relayer, self.overlay.as_mut()) {
                    overlay.credit(node, from);
                }
            }
            self.dispatch(node, outgoing);
            if mine {
                let next = self.now + self.config.slice_ms;
                if next <= self.config.duration_ms {
                    self.schedule(next, EventKind::MineSlice { node });
                }
            }
            self.tips[node] = tip;
            self.update_convergence();
        }
    }

    /// Runs one node's events for the current timestamp, in seq order,
    /// capturing each event's outcome. Touches nothing but the node
    /// itself — the property that makes lanes safe to run concurrently.
    fn execute_lane(
        now: u64,
        node_id: usize,
        node: &mut Node<P>,
        events: Vec<NodeEvent>,
        outcomes: &mut Vec<EventOutcome>,
    ) {
        for event in events {
            let before = node.stats().blocks_accepted;
            let (outgoing, mine, relayer) = match event.action {
                NodeAction::Mine { attempts } => (node.mine_slice(now, attempts), true, None),
                NodeAction::Deliver { from, message } => {
                    (node.handle(now, from, message), false, Some(from))
                }
                NodeAction::Timeout { token } => (node.on_timer(token), false, None),
            };
            outcomes.push(EventOutcome {
                seq: event.seq,
                node: node_id,
                outgoing,
                tip: node.tip(),
                relayer,
                useful: node.stats().blocks_accepted > before,
                mine,
            });
        }
    }

    fn report(&self) -> SimReport {
        let mut reorg_depths: Vec<usize> = self
            .nodes
            .iter()
            .flat_map(|n| n.stats().reorg_depths.iter().copied())
            .collect();
        reorg_depths.sort_unstable_by(|a, b| b.cmp(a));
        let first_honest = &self.nodes[self.honest[0]];
        let tip = first_honest.tip();
        let converged =
            tip != [0u8; 32] && self.honest.iter().all(|&id| self.nodes[id].tip() == tip);
        // Audit every honest fork tree against the spam lists.
        let spam_digests: Vec<Digest256> = self
            .nodes
            .iter()
            .flat_map(|n| n.stats().spam_digests.iter().copied())
            .collect();
        let spam_accepted: u64 = self
            .honest
            .iter()
            .map(|&id| {
                spam_digests
                    .iter()
                    .filter(|d| self.nodes[id].tree().contains(d))
                    .count() as u64
            })
            .sum();
        let honest_tip_safety_margin = self
            .honest
            .iter()
            .map(|&id| {
                let node = &self.nodes[id];
                node.tip_height()
                    .saturating_sub(node.tree().max_side_branch_height())
            })
            .min()
            .unwrap_or(0);
        let mut rejections = RejectionCounts::default();
        for node in &self.nodes {
            rejections += node.stats().rejections;
        }
        let sum = |f: &dyn Fn(&crate::node::NodeStats) -> u64| -> u64 {
            self.nodes.iter().map(|n| f(n.stats())).sum()
        };
        let lights: Vec<&Node<P>> = self
            .nodes
            .iter()
            .filter(|n| n.role() == Role::Light)
            .collect();
        let light_converged =
            lights.is_empty() || (tip != [0u8; 32] && lights.iter().all(|n| n.tip() == tip));
        // The per-block verification bill of the honest canonical chain:
        // walk the first honest node's best branch tip-to-root over the
        // cached cost observations (pure header facts, so every honest
        // node agrees on the figure once converged).
        let tip_mean_cost_ratio = {
            let tree = first_honest.tree();
            let mut digest = tree.tip();
            let mut sum = 0.0;
            let mut count = 0u64;
            while digest != GENESIS_HASH {
                let Some(block) = tree.block(&digest) else {
                    break;
                };
                sum += tree.cost_ratio_of(&digest);
                count += 1;
                digest = block.header.prev_hash;
            }
            if count > 0 {
                sum / count as f64
            } else {
                1.0
            }
        };
        SimReport {
            light_nodes: lights.len() as u64,
            light_converged,
            light_bytes_received: lights.iter().map(|n| n.stats().bytes_received).sum(),
            bytes_sent: sum(&|s| s.bytes_sent),
            headers_served: sum(&|s| s.headers_served),
            headers_accepted: sum(&|s| s.headers_accepted),
            proofs_served: sum(&|s| s.proofs_served),
            proofs_verified: sum(&|s| s.proofs_verified),
            proof_retries: sum(&|s| s.proof_retries),
            proofs_withheld: sum(&|s| s.proofs_withheld),
            fake_proofs_sent: sum(&|s| s.fake_proofs_sent),
            quota_refusals: sum(&|s| s.quota_refusals),
            verify_hash_ops: sum(&|s| s.verify_hash_ops),
            tx_bytes_proved: sum(&|s| s.tx_bytes_proved),
            seeds_discarded: sum(&|s| s.seeds_discarded),
            seeds_inadmissible: sum(&|s| s.seeds_inadmissible),
            tip_mean_cost_ratio,
            nodes: self.config.nodes,
            seed: self.config.seed,
            duration_ms: self.config.duration_ms,
            converged,
            convergence_ms: self.converged_at,
            tip,
            tip_height: first_honest.tip_height(),
            blocks_mined: sum(&|s| s.blocks_mined),
            max_reorg_depth: reorg_depths.first().copied().unwrap_or(0),
            reorg_depths,
            segments_synced: sum(&|s| s.segments_synced),
            segment_blocks: sum(&|s| s.segment_blocks),
            messages_sent: self.messages_sent,
            messages_dropped: self.messages_dropped,
            sync_wall_seconds: self.nodes.iter().map(|n| n.stats().sync_wall_seconds).sum(),
            spam_segments_sent: sum(&|s| s.spam_segments_sent),
            spam_accepted,
            fake_orphans: sum(&|s| s.fake_orphans),
            rejections,
            stalls_detected: sum(&|s| s.stalls_detected),
            requests_retried: sum(&|s| s.requests_retried),
            requests_abandoned: sum(&|s| s.requests_abandoned),
            peers_banned: sum(&|s| s.peers_banned),
            blocks_withheld: sum(&|s| s.blocks_withheld),
            blocks_released: sum(&|s| s.blocks_released),
            withheld_abandoned: sum(&|s| s.withheld_abandoned),
            blocks_pruned: sum(&|s| s.blocks_pruned),
            honest_tip_safety_margin,
            crash_restarts: sum(&|s| s.crash_restarts),
            recoveries_identical: sum(&|s| s.recoveries_identical),
            blocks_replayed: sum(&|s| s.blocks_replayed),
            recovery_lost_bytes: sum(&|s| s.recovery_lost_bytes),
            messages_lost_to_crashes: self.messages_lost_to_crashes,
            events_processed: self.events_processed,
            connect_attempts: self.connect_attempts,
            peer_evictions: self.overlay.as_ref().map_or(0, Overlay::evictions),
            anchor_rotations: self.overlay.as_ref().map_or(0, Overlay::rotations),
            run_wall_seconds: self.run_wall_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{SegmentSpam, SegmentStalling, SelfishMining, Silent, StallMode};
    use hashcore_baselines::Sha256dPow;

    fn quick_config() -> SimConfig {
        SimConfig {
            nodes: 4,
            seed: 42,
            difficulty_bits: 8,
            attempts_per_slice: 32,
            slice_ms: 100,
            duration_ms: 20_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn a_quiet_network_converges_on_one_chain() {
        let mut sim = Simulation::new(quick_config(), |_| Sha256dPow);
        let report = sim.run();
        assert!(report.converged, "{}", report.fingerprint());
        assert!(report.blocks_mined > 0);
        assert!(report.tip_height > 0);
        assert!(report.convergence_ms.is_some());
        // Every node's best chain revalidates.
        for node in sim.nodes() {
            node.tree().validate_best_chain().expect("honest chain");
        }
    }

    #[test]
    fn same_seed_same_fingerprint() {
        let a = Simulation::new(quick_config(), |_| Sha256dPow).run();
        let b = Simulation::new(quick_config(), |_| Sha256dPow).run();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint_extended(), b.fingerprint_extended());
        let c = Simulation::new(
            SimConfig {
                seed: 43,
                ..quick_config()
            },
            |_| Sha256dPow,
        )
        .run();
        assert!(c.converged);
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "different seed, different race"
        );
    }

    /// The Strategy-refactor regression gate: an all-honest simulation must
    /// keep producing exactly the fingerprint the pre-strategy node code
    /// produced. The literal below was captured from the honest-only
    /// implementation; if this test fails, the honest code path changed
    /// behaviour, not just shape.
    #[test]
    fn honest_fingerprint_is_byte_identical_to_the_pre_strategy_node() {
        let report = Simulation::new(
            SimConfig {
                nodes: 4,
                seed: 0xfee1_600d,
                difficulty_bits: 8,
                attempts_per_slice: 32,
                slice_ms: 100,
                duration_ms: 15_000,
                partitions: vec![Partition {
                    start_ms: 4_000,
                    end_ms: 9_000,
                    split: 2,
                }],
                ..SimConfig::default()
            },
            |_| Sha256dPow,
        )
        .run();
        assert_eq!(
            report.fingerprint(),
            "nodes=4 seed=4276183053 duration=15000 converged=true \
             convergence=Some(14883) \
             tip=00619b00757512f1d17fb4741258d7829a415f0eff630530b58d0f8f785ed7d1 \
             height=56 mined=80 \
             reorgs=[11, 11, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1] \
             max_reorg=11 segments=4 segment_blocks=68 sent=543 dropped=93"
        );
    }

    #[test]
    fn a_partition_forces_a_reorg_and_heals() {
        let config = SimConfig {
            nodes: 5,
            seed: 7,
            difficulty_bits: 9,
            attempts_per_slice: 64,
            slice_ms: 100,
            duration_ms: 40_000,
            partitions: vec![Partition {
                start_ms: 5_000,
                end_ms: 25_000,
                split: 2,
            }],
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config, |_| Sha256dPow);
        let report = sim.run();
        assert!(report.converged, "{}", report.fingerprint());
        assert!(report.messages_dropped > 0, "the partition must bite");
        assert!(
            report.max_reorg_depth >= 1,
            "healing must reorganise the losing side: {}",
            report.fingerprint()
        );
        assert!(report.segments_synced >= 1, "{}", report.fingerprint());
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_partitions_are_rejected() {
        let _ = Simulation::new(
            SimConfig {
                partitions: vec![
                    Partition {
                        start_ms: 1_000,
                        end_ms: 5_000,
                        split: 2,
                    },
                    Partition {
                        start_ms: 3_000,
                        end_ms: 10_000,
                        split: 3,
                    },
                ],
                ..SimConfig::default()
            },
            |_| Sha256dPow,
        );
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_networks_are_rejected() {
        let _ = Simulation::new(
            SimConfig {
                nodes: 1,
                ..SimConfig::default()
            },
            |_| Sha256dPow,
        );
    }

    /// RNG isolation: replacing a [`Silent`] node with a spammer must not
    /// change honest traffic at all — the honest fingerprint (tip, reorg
    /// distribution, convergence time) is identical; only the adversary
    /// counters differ.
    #[test]
    fn spam_does_not_perturb_honest_traffic() {
        let config = SimConfig {
            request_timeout_ms: Some(2_000),
            ..quick_config()
        };
        let baseline = Simulation::with_strategies(
            config.clone(),
            |_| Sha256dPow,
            |id| {
                if id == 0 {
                    Box::new(Silent)
                } else {
                    Box::new(Honest)
                }
            },
        )
        .run();
        let spammed = Simulation::with_strategies(
            config,
            |_| Sha256dPow,
            |id| {
                if id == 0 {
                    Box::new(SegmentSpam::default())
                } else {
                    Box::new(Honest)
                }
            },
        )
        .run();
        assert_eq!(baseline.tip, spammed.tip);
        assert_eq!(baseline.tip_height, spammed.tip_height);
        assert_eq!(baseline.convergence_ms, spammed.convergence_ms);
        assert_eq!(baseline.reorg_depths, spammed.reorg_depths);
        assert!(spammed.spam_segments_sent > 0, "the spammer must spam");
        assert_eq!(spammed.spam_accepted, 0, "no spam in any honest tree");
        assert!(spammed.rejections.unsolicited_segment > 0);
    }

    /// A stalling adversary cannot stop convergence: honest peers time
    /// out, exclude it, and sync from each other.
    #[test]
    fn stalling_is_survived_through_timeouts_and_rerequests() {
        for mode in [
            StallMode::Ignore,
            StallMode::Prefix(1),
            StallMode::Delay(30_000),
        ] {
            let config = SimConfig {
                nodes: 5,
                seed: 99,
                difficulty_bits: 9,
                attempts_per_slice: 64,
                duration_ms: 40_000,
                request_timeout_ms: Some(1_500),
                partitions: vec![Partition {
                    start_ms: 5_000,
                    end_ms: 20_000,
                    split: 2,
                }],
                ..SimConfig::default()
            };
            let mut sim = Simulation::with_strategies(
                config,
                |_| Sha256dPow,
                move |id| {
                    if id == 2 {
                        Box::new(SegmentStalling { mode })
                    } else {
                        Box::new(Honest)
                    }
                },
            );
            let report = sim.run();
            assert!(
                report.converged,
                "honest nodes must converge despite {mode:?}: {}",
                report.fingerprint_extended()
            );
            for node in sim.nodes() {
                node.tree().validate_best_chain().expect("valid chain");
            }
        }
    }

    /// An adaptive-difficulty network still converges, still replays
    /// byte-identically from its seed, and actually moves difficulty: the
    /// final chain embeds more than one distinct target.
    #[test]
    fn adaptive_difficulty_runs_converge_and_replay_identically() {
        let config = SimConfig {
            nodes: 4,
            seed: 77,
            difficulty_bits: 9,
            attempts_per_slice: 32,
            slice_ms: 100,
            duration_ms: 30_000,
            retarget: Some(RetargetConfig {
                target_block_time_ms: 1_000.0,
                gain: 0.5,
            }),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(config.clone(), |_| Sha256dPow);
        let a = sim.run();
        let b = Simulation::new(config, |_| Sha256dPow).run();
        assert_eq!(a.fingerprint_extended(), b.fingerprint_extended());
        assert!(a.converged, "{}", a.fingerprint());
        assert!(a.tip_height > 0);
        let chain = sim.nodes()[0].tree().best_chain();
        let distinct_targets: std::collections::HashSet<[u8; 32]> =
            chain.iter().map(|block| block.header.target).collect();
        assert!(
            distinct_targets.len() > 1,
            "difficulty must actually retarget along the chain"
        );
        for node in sim.nodes() {
            node.tree().validate_best_chain().expect("adaptive chain");
        }
    }

    /// With the timestamp rule enforced, a skewing miner's future-dated
    /// blocks are rejected at every honest edge; the honest network still
    /// converges and the rejections land in the new class.
    #[test]
    fn timestamp_skew_is_neutralised_by_the_validity_rule() {
        let config = SimConfig {
            nodes: 5,
            seed: 31,
            difficulty_bits: 9,
            attempts_per_slice: 32,
            slice_ms: 100,
            duration_ms: 30_000,
            retarget: Some(RetargetConfig {
                target_block_time_ms: 1_000.0,
                gain: 0.5,
            }),
            timestamp_rule: Some(crate::node::TimestampRule {
                max_future_drift_ms: 4_000,
                mtp_window: 11,
            }),
            ban_threshold: 0,
            ..SimConfig::default()
        };
        let mut sim = Simulation::with_strategies(
            config,
            |_| Sha256dPow,
            |id| {
                if id == 0 {
                    Box::new(crate::strategy::TimestampSkew { skew_ms: 20_000 })
                } else {
                    Box::new(Honest)
                }
            },
        );
        let report = sim.run();
        assert!(report.converged, "{}", report.fingerprint_extended());
        assert!(
            report.rejections.timestamp > 0,
            "skewed headers must be rejected: {}",
            report.fingerprint_extended()
        );
        // No honest chain carries a timestamp past the drift bound at the
        // time it could have been mined (the horizon of the whole run).
        for node in sim.nodes().iter().filter(|n| !n.is_adversarial()) {
            for block in node.tree().best_chain() {
                assert!(
                    block.header.timestamp <= report.duration_ms + 4_000,
                    "honest chains stay drift-bounded"
                );
            }
        }
    }

    /// Selfish mining with majority-ish hash power ends up owning more of
    /// the final chain than its fair share, and the accounting fields
    /// observe the withhold/release cycle.
    #[test]
    fn selfish_mining_withholds_and_releases_deterministically() {
        let config = SimConfig {
            nodes: 4,
            seed: 1234,
            difficulty_bits: 8,
            attempts_per_slice: 32,
            // Node 0 holds ~45% of total hash power.
            node_attempts: vec![(0, 80)],
            duration_ms: 30_000,
            ..SimConfig::default()
        };
        let run = |cfg: SimConfig| {
            Simulation::with_strategies(
                cfg,
                |_| Sha256dPow,
                |id| {
                    if id == 0 {
                        Box::new(SelfishMining)
                    } else {
                        Box::new(Honest)
                    }
                },
            )
            .run()
        };
        let a = run(config.clone());
        let b = run(config);
        assert_eq!(a.fingerprint_extended(), b.fingerprint_extended());
        assert!(a.blocks_withheld > 0, "{}", a.fingerprint_extended());
        assert!(
            a.blocks_released > 0 || a.withheld_abandoned > 0,
            "withheld blocks must eventually be released or abandoned: {}",
            a.fingerprint_extended()
        );
        assert!(a.converged, "honest nodes still converge");
    }

    /// A persistence run builds each node's store under its own scratch
    /// directory (each run needs a fresh one: `ChainStore::create` refuses
    /// a directory that already holds store files).
    fn persistent_run(
        dir: &hashcore_store::TempDir,
        crashes: Vec<CrashRestart>,
        snapshot_interval: u64,
    ) -> SimReport {
        let config = SimConfig {
            persistence: Some(PersistenceConfig {
                dir: dir.path().to_path_buf(),
                snapshot_interval,
                sync_appends: false,
            }),
            crashes,
            ..quick_config()
        };
        Simulation::new(config, |_| Sha256dPow).run()
    }

    #[test]
    fn a_crashed_node_recovers_from_disk_and_reconverges() {
        let run = |label: &str| {
            let dir = hashcore_store::TempDir::new(label).unwrap();
            persistent_run(
                &dir,
                vec![CrashRestart {
                    node: 1,
                    at_ms: 6_000,
                    down_ms: 4_000,
                    torn_tail_bytes: 0,
                }],
                4,
            )
        };
        let a = run("sim-crash-a");
        assert!(a.converged, "{}", a.fingerprint_extended());
        assert_eq!(a.crash_restarts, 1);
        assert_eq!(
            a.recoveries_identical,
            1,
            "a clean crash restores the exact pre-crash tree: {}",
            a.fingerprint_extended()
        );
        assert!(
            a.messages_lost_to_crashes > 0,
            "a down node drops its traffic"
        );
        // The whole crash/recovery cycle is deterministic.
        let b = run("sim-crash-b");
        assert_eq!(a.fingerprint_extended(), b.fingerprint_extended());
    }

    #[test]
    fn a_torn_tail_is_truncated_and_segment_sync_heals_the_gap() {
        let dir = hashcore_store::TempDir::new("sim-torn").unwrap();
        let report = persistent_run(
            &dir,
            vec![CrashRestart {
                node: 2,
                at_ms: 8_000,
                down_ms: 3_000,
                torn_tail_bytes: 7,
            }],
            0,
        );
        assert_eq!(report.crash_restarts, 1);
        assert!(
            report.recovery_lost_bytes > 0,
            "the sheared tail must be detected and truncated: {}",
            report.fingerprint_extended()
        );
        assert!(
            report.converged,
            "the restarted node catches back up over segment sync: {}",
            report.fingerprint_extended()
        );
    }

    #[test]
    fn persistence_without_crashes_leaves_the_race_untouched() {
        let dir = hashcore_store::TempDir::new("sim-quiet").unwrap();
        let persisted = persistent_run(&dir, Vec::new(), 8);
        let volatile = Simulation::new(quick_config(), |_| Sha256dPow).run();
        assert_eq!(persisted.fingerprint(), volatile.fingerprint());
    }

    /// The tentpole guarantee: the sharded parallel scheduler is
    /// byte-identical to the single-threaded one, with and without a
    /// partition and a topology in play.
    #[test]
    fn thread_count_never_changes_the_fingerprint() {
        let configs = [
            SimConfig {
                partitions: vec![Partition {
                    start_ms: 4_000,
                    end_ms: 9_000,
                    split: 2,
                }],
                ..quick_config()
            },
            SimConfig {
                nodes: 8,
                topology: Some(TopologyConfig::defended()),
                request_timeout_ms: Some(1_500),
                ..quick_config()
            },
        ];
        for config in configs {
            let sequential = Simulation::new(config.clone(), |_| Sha256dPow).run();
            for threads in [2, 4, 7] {
                let parallel = Simulation::new(
                    SimConfig {
                        threads,
                        ..config.clone()
                    },
                    |_| Sha256dPow,
                )
                .run();
                assert_eq!(
                    sequential.fingerprint_extended(),
                    parallel.fingerprint_extended(),
                    "threads={threads} must replay the 1-thread run byte for byte"
                );
            }
        }
    }

    /// Bounded peer tables with scored gossip still converge, replay
    /// identically, and actually exercise the overlay machinery.
    #[test]
    fn a_topology_network_converges_and_replays_identically() {
        let config = SimConfig {
            nodes: 8,
            topology: Some(TopologyConfig::defended()),
            request_timeout_ms: Some(1_500),
            ..quick_config()
        };
        let a = Simulation::new(config.clone(), |_| Sha256dPow).run();
        let b = Simulation::new(config, |_| Sha256dPow).run();
        assert_eq!(a.fingerprint_extended(), b.fingerprint_extended());
        assert!(a.converged, "{}", a.fingerprint_extended());
        assert!(a.anchor_rotations > 0, "rotation must tick");
    }

    fn eclipse_config(topology: TopologyConfig) -> SimConfig {
        SimConfig {
            nodes: 12,
            seed: 2024,
            difficulty_bits: 8,
            attempts_per_slice: 32,
            slice_ms: 100,
            duration_ms: 20_000,
            // Fan-out covering the whole table makes honest relay
            // reliable, so any end-of-run disagreement is the eclipse
            // doing its work, not a last-block gossip miss.
            fan_out: 4,
            // Timeouts let honest nodes route around requests that died
            // on an evicted link; the victim's retries still drop — every
            // slot of its table holds a sybil.
            request_timeout_ms: Some(1_500),
            topology: Some(topology),
            ..SimConfig::default()
        }
    }

    /// Six sybils dialling every slice against a 4-slot undefended table
    /// (no scoring, no anchors, no rotation): the victim's honest links
    /// are evicted oldest-first and it mines on a stale tip while the
    /// remaining honest nodes converge without it.
    #[test]
    fn eclipse_isolates_a_victim_on_an_undefended_topology() {
        let sybils = 6..12;
        let mut sim = Simulation::with_strategies(
            eclipse_config(TopologyConfig {
                max_peers: 4,
                extra_links: 1,
                ..TopologyConfig::undefended()
            }),
            |_| Sha256dPow,
            |id| {
                if (6..12).contains(&id) {
                    Box::new(crate::strategy::Eclipse { victim: 0 })
                } else {
                    Box::new(Honest)
                }
            },
        );
        let report = sim.run();
        assert!(report.connect_attempts > 0, "sybils must dial");
        assert!(report.peer_evictions > 0, "pressure must evict");
        // The monopoly: every slot of the victim's table holds a sybil.
        let table = sim.peer_table(0);
        assert!(
            !table.is_empty() && table.iter().all(|peer| sybils.contains(peer)),
            "the victim's table must hold only sybils: {table:?}"
        );
        // The victim mines on its own stale chain while the other honest
        // nodes agree with each other.
        let honest_tip = sim.nodes()[1].tip();
        for id in 2..6 {
            assert_eq!(sim.nodes()[id].tip(), honest_tip, "non-victims agree");
        }
        assert_ne!(sim.nodes()[0].tip(), honest_tip, "the victim is eclipsed");
        assert!(!report.converged, "{}", report.fingerprint_extended());
    }

    /// The same attack against the defended overlay: scored honest links
    /// survive connection pressure, anchors are immune, and anchor
    /// rotation keeps re-establishing honest connectivity — the victim
    /// stays on the honest chain.
    #[test]
    fn scoring_anchors_and_rotation_defeat_the_eclipse() {
        let mut sim = Simulation::with_strategies(
            eclipse_config(TopologyConfig {
                max_peers: 4,
                anchors: 1,
                extra_links: 1,
                rotation_interval_ms: Some(2_000),
                credit: 16,
            }),
            |_| Sha256dPow,
            |id| {
                if (6..12).contains(&id) {
                    Box::new(crate::strategy::Eclipse { victim: 0 })
                } else {
                    Box::new(Honest)
                }
            },
        );
        let report = sim.run();
        assert!(report.connect_attempts > 0, "sybils must dial");
        assert!(
            report.converged,
            "the defences must keep the victim on the honest chain: {}",
            report.fingerprint_extended()
        );
        assert!(report.anchor_rotations > 0, "rotation must tick");
    }

    /// A light-client population tracks the full nodes' tip through
    /// header-first sync alone, proving each tip's transactions with
    /// batched Merkle proofs — and pays for it in far fewer bytes than
    /// the body-gossip mesh moves.
    #[test]
    fn light_clients_track_the_full_tip_and_prove_it() {
        let mut config = quick_config();
        config.nodes = 7;
        config.light = Some(LightSimConfig {
            first_light: 3,
            request_timeout_ms: 1_000,
            proof_indices: vec![0],
            proof_quota: 0,
            body_bytes: 512,
        });
        let mut sim = Simulation::new(config, |_| Sha256dPow);
        let report = sim.run();
        assert!(
            report.light_converged,
            "light tips must equal the full tip: {}",
            report.fingerprint_extended()
        );
        assert_eq!(report.light_nodes, 4);
        assert!(report.headers_accepted > 0);
        assert!(
            report.proofs_verified > 0,
            "{}",
            report.fingerprint_extended()
        );
        assert!(report.tx_bytes_proved > 0);
        assert!(report.verify_hash_ops > 0);
        assert_eq!(report.rejections.invalid_proof, 0, "honest servers only");
        // Light nodes hold no bodies: segments never flow to them, and
        // their entire bandwidth bill is headers plus proof batches.
        let full_avg: f64 = sim.nodes()[..3]
            .iter()
            .map(|n| n.stats().bytes_received as f64)
            .sum::<f64>()
            / 3.0;
        assert!(
            report.bytes_per_light_peer() < full_avg,
            "a light peer must cost less than a full node: {} vs {full_avg}",
            report.bytes_per_light_peer()
        );
        // Every light node ends header-synced to the reported height.
        for node in &sim.nodes()[3..] {
            assert_eq!(node.tip_height(), report.tip_height);
        }
    }

    /// Two identical light runs — same config, same seed — produce
    /// byte-identical extended fingerprints: the light protocol draws no
    /// randomness and rotates servers deterministically.
    #[test]
    fn light_runs_are_deterministic() {
        let config = || {
            let mut config = quick_config();
            config.nodes = 6;
            config.light = Some(LightSimConfig {
                first_light: 2,
                request_timeout_ms: 1_000,
                proof_indices: vec![0],
                proof_quota: 0,
                body_bytes: 0,
            });
            config
        };
        let a = Simulation::new(config(), |_| Sha256dPow).run();
        let b = Simulation::new(config(), |_| Sha256dPow).run();
        assert_eq!(a.fingerprint_extended(), b.fingerprint_extended());
        assert!(a.light_converged);
    }

    /// A proof-serving adversary that fabricates batches: every fake is
    /// caught against the PoW-pinned header root — the run ends with
    /// `invalid_proof` rejections exactly equal to the fakes sent, and
    /// the light population converged regardless.
    #[test]
    fn fake_proofs_are_all_caught_and_lights_still_converge() {
        let mut config = quick_config();
        config.nodes = 8;
        config.light = Some(LightSimConfig {
            first_light: 3,
            request_timeout_ms: 1_000,
            proof_indices: vec![0],
            proof_quota: 0,
            body_bytes: 0,
        });
        let mut sim = Simulation::with_strategies(
            config,
            |_| Sha256dPow,
            |id| {
                if id == 2 {
                    Box::new(crate::strategy::FakeProof)
                } else {
                    Box::new(Honest)
                }
            },
        );
        let report = sim.run();
        assert!(
            report.fake_proofs_sent > 0,
            "the faker must get asked at least once: {}",
            report.fingerprint_extended()
        );
        assert_eq!(
            report.rejections.invalid_proof,
            report.fake_proofs_sent,
            "every fake must be caught: {}",
            report.fingerprint_extended()
        );
        assert!(report.light_converged, "{}", report.fingerprint_extended());
        assert!(report.proofs_verified > 0);
        assert!(report.proof_retries >= report.fake_proofs_sent);
    }

    /// A withholding proof server never answers: requests time out,
    /// rotate to honest servers, and the population still proves its
    /// tips.
    #[test]
    fn withheld_proofs_time_out_and_rotate_to_honest_servers() {
        let mut config = quick_config();
        config.nodes = 8;
        config.light = Some(LightSimConfig {
            first_light: 3,
            request_timeout_ms: 1_000,
            proof_indices: vec![0],
            proof_quota: 0,
            body_bytes: 0,
        });
        let mut sim = Simulation::with_strategies(
            config,
            |_| Sha256dPow,
            |id| {
                if id == 2 {
                    Box::new(crate::strategy::ProofWithholding)
                } else {
                    Box::new(Honest)
                }
            },
        );
        let report = sim.run();
        assert!(
            report.proofs_withheld > 0,
            "the withholder must get asked: {}",
            report.fingerprint_extended()
        );
        assert!(report.light_converged, "{}", report.fingerprint_extended());
        assert!(report.proofs_verified > 0);
        assert_eq!(report.rejections.invalid_proof, 0);
    }
}
